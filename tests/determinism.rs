//! Determinism suite for the parallel execution layer.
//!
//! Every path wired onto `crates/par` must produce *bit-identical* output
//! at any worker count: each parallel task is a pure function of its input,
//! results are collected in input index order, and every cross-task float
//! reduction happens in that fixed order. These tests pin the contract for
//! the three wired layers — VCG leave-one-out payments, the federated
//! training round, and the multi-seed simulation sweep — by running each
//! serially and on a 4-worker pool across 3 seeds and comparing outputs
//! with exact (`==`) float equality.
//!
//! The 4-worker runs really do cross threads (the pool spawns workers
//! whenever `threads > 1`), so this holds on single-core machines too:
//! determinism comes from the collection order, not from scheduling luck.

use bench::random_bids;
use par::Pool;

const SEEDS: [u64; 3] = [0xA11CE, 0xB0B, 0xC0FFEE];

fn pools() -> (Pool, Pool) {
    (Pool::serial(), Pool::with_threads(4))
}

/// Exact float equality on award lists — `assert_eq!` on the outcome would
/// also work (`AuctionOutcome: PartialEq`), but spelling out the bit
/// comparison makes the guarantee this suite enforces unmistakable.
fn assert_outcomes_bit_identical(
    a: &auction::outcome::AuctionOutcome,
    b: &auction::outcome::AuctionOutcome,
    context: &str,
) {
    assert_eq!(
        a.virtual_welfare.to_bits(),
        b.virtual_welfare.to_bits(),
        "{context}: welfare differs"
    );
    assert_eq!(a.winners.len(), b.winners.len(), "{context}: winner count");
    for (x, y) in a.winners.iter().zip(&b.winners) {
        assert_eq!(x.bidder, y.bidder, "{context}: winner set");
        assert_eq!(
            x.payment.to_bits(),
            y.payment.to_bits(),
            "{context}: payment of bidder {}",
            x.bidder
        );
        assert_eq!(x.value.to_bits(), y.value.to_bits(), "{context}: value");
        assert_eq!(x.cost.to_bits(), y.cost.to_bits(), "{context}: cost");
    }
}

/// VCG with budgeted leave-one-out pivots: the knapsack dispatch (n > 25)
/// and the exhaustive dispatch (n ≤ 25) both produce identical payments on
/// 1 worker and 4 workers.
#[test]
fn vcg_payments_parallel_is_bit_identical() {
    use auction::vcg::{VcgAuction, VcgConfig};
    use auction::wdp::SolverKind;
    let valuation = auction::Valuation::default();
    let (serial, parallel) = pools();
    for &seed in &SEEDS {
        for n in [16usize, 40] {
            let bids = random_bids(n, seed);
            let auction = VcgAuction::new(VcgConfig {
                value_weight: 50.0,
                cost_weight: 5.0,
                max_winners: None,
                ..VcgConfig::default()
            });
            let budget = 0.4 * bids.iter().map(|b| b.cost).sum::<f64>();
            let a =
                auction.run_with_budget_on(&bids, &valuation, budget, SolverKind::Exact, serial);
            let b =
                auction.run_with_budget_on(&bids, &valuation, budget, SolverKind::Exact, parallel);
            assert!(
                !a.winners.is_empty(),
                "degenerate instance, seed {seed} n {n}"
            );
            assert_outcomes_bit_identical(&a, &b, &format!("vcg seed {seed} n {n}"));
        }
    }
}

/// The sharded pipeline nests two fan-out levels (shards × pivot merges)
/// on a split pool: budgeted sharded rounds must still be bit-identical on
/// 1 worker and 4 workers.
#[test]
fn sharded_rounds_parallel_is_bit_identical() {
    use auction::shard::MarketTopology;
    use auction::vcg::{VcgAuction, VcgConfig};
    use auction::wdp::SolverKind;
    let valuation = auction::Valuation::default();
    let (serial, parallel) = pools();
    for &seed in &SEEDS {
        let bids = random_bids(600, seed);
        let auction = VcgAuction::new(VcgConfig {
            value_weight: 50.0,
            cost_weight: 5.0,
            topology: MarketTopology::Sharded { count: 8 },
            ..VcgConfig::default()
        });
        let budget = 0.03 * bids.iter().map(|b| b.cost).sum::<f64>();
        let kind = SolverKind::Knapsack { grid: 512 };
        let a = auction.run_with_budget_on(&bids, &valuation, budget, kind, serial);
        let b = auction.run_with_budget_on(&bids, &valuation, budget, kind, parallel);
        assert!(
            !a.winners.is_empty(),
            "degenerate sharded instance, seed {seed}"
        );
        assert_outcomes_bit_identical(&a, &b, &format!("sharded vcg seed {seed}"));
    }
}

fn fl_setup(seed: u64) -> fedsim::training::FederatedRun<fedsim::model::LogisticRegression> {
    use fedsim::data::partition::{partition, PartitionStrategy};
    use fedsim::data::synth::{gaussian_blobs, BlobSpec};
    use fedsim::training::RunConfig;
    let ds = gaussian_blobs(&BlobSpec::new(3, 6, 80), seed);
    let parts = partition(&ds, 8, PartitionStrategy::Iid, seed);
    let model = fedsim::model::LogisticRegression::new(6, 3);
    let config = RunConfig {
        local: fedsim::client::LocalTrainerConfig {
            local_epochs: 2,
            batch_size: 16,
            ..fedsim::client::LocalTrainerConfig::default()
        },
        seed,
    };
    fedsim::training::FederatedRun::new(model, parts, ds, config)
}

/// A federated round trains the selected clients in parallel and aggregates
/// in participant order: the global model after several rounds is
/// bit-identical on 1 worker and 4 workers.
#[test]
fn fl_round_parallel_is_bit_identical() {
    use fedsim::model::Model;
    let (serial, parallel) = pools();
    for &seed in &SEEDS {
        let mut a = fl_setup(seed);
        let mut b = fl_setup(seed);
        for round in 0..3 {
            let participants: Vec<usize> = (0..8).filter(|c| (c + round) % 2 == 0).collect();
            let ra = a.round_on(&participants, serial);
            let rb = b.round_on(&participants, parallel);
            assert_eq!(ra, rb, "round report diverged, seed {seed} round {round}");
        }
        let pa = a.model().params();
        let pb = b.model().params();
        assert!(
            pa.iter().any(|&w| w != 0.0),
            "model never trained, seed {seed}"
        );
        assert_eq!(
            pa.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            pb.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            "global model diverged, seed {seed}"
        );
    }
}

/// Helper comparing two streamed runs bit for bit: outcomes (winners,
/// payments, welfares), queue trajectory, and ingestion stats.
fn assert_streams_bit_identical(
    a: &lovm_core::streaming::StreamResult,
    b: &lovm_core::streaming::StreamResult,
    context: &str,
) {
    assert_eq!(
        a.result.outcomes.len(),
        b.result.outcomes.len(),
        "{context}: round count"
    );
    for (round, (oa, ob)) in a.result.outcomes.iter().zip(&b.result.outcomes).enumerate() {
        assert_outcomes_bit_identical(oa, ob, &format!("{context} round {round}"));
    }
    let qa = a.result.series.get("backlog").expect("backlog recorded");
    let qb = b.result.series.get("backlog").expect("backlog recorded");
    assert_eq!(
        qa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        qb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "{context}: queue trajectory"
    );
    assert_eq!(a.ingest, b.ingest, "{context}: ingestion stats");
    assert_eq!(a.totals, b.totals, "{context}: ingestion totals");
    assert_eq!(a.result.ledger, b.result.ledger, "{context}: ledger");
}

/// The streaming entry point on the virtual-time driver: a seeded arrival
/// stream through `run_stream_on` is bit-identical on a serial pool and a
/// 4-worker pool — payments, welfares, queue trajectory, and the
/// per-round ingestion stats.
#[test]
fn streamed_rounds_parallel_is_bit_identical() {
    use ingest::{IngestConfig, LateBidPolicy};
    use lovm_core::lovm::{Lovm, LovmConfig};
    use workload::Scenario;
    let scenario = Scenario::small();
    let cfg = IngestConfig {
        deadline: 0.7,
        late_policy: LateBidPolicy::DeferToNext,
        ..IngestConfig::default()
    };
    let (serial, parallel) = pools();
    for &seed in &SEEDS {
        let mut ma = Lovm::new(LovmConfig::for_scenario(&scenario, 20.0));
        let mut mb = Lovm::new(LovmConfig::for_scenario(&scenario, 20.0));
        let a = ma.run_stream_on(&scenario, seed, &cfg, serial);
        let b = mb.run_stream_on(&scenario, seed, &cfg, parallel);
        assert!(
            a.result.ledger.total_payment() > 0.0,
            "degenerate stream, seed {seed}"
        );
        assert_streams_bit_identical(&a, &b, &format!("stream seed {seed}"));
    }
}

/// Sharding the streamed round loop cannot change an output bit either:
/// LOVM rounds are top-K winner determinations, where the champion
/// reconciliation is exact at any shard count.
#[test]
fn streamed_rounds_sharded_is_bit_identical() {
    use auction::shard::MarketTopology;
    use ingest::{IngestConfig, LateBidPolicy};
    use lovm_core::lovm::{Lovm, LovmConfig};
    use workload::Scenario;
    let scenario = Scenario::small();
    let cfg = IngestConfig {
        deadline: 0.6,
        late_policy: LateBidPolicy::GraceWindow { grace: 0.2 },
        ..IngestConfig::default()
    };
    let (serial, parallel) = pools();
    for &seed in &SEEDS {
        let base = LovmConfig::for_scenario(&scenario, 20.0);
        let mut mono = Lovm::new(base.with_topology(MarketTopology::Sharded { count: 1 }));
        let mut sharded = Lovm::new(base.with_topology(MarketTopology::Sharded { count: 8 }));
        let a = mono.run_stream_on(&scenario, seed, &cfg, serial);
        let b = sharded.run_stream_on(&scenario, seed, &cfg, parallel);
        assert_streams_bit_identical(&a, &b, &format!("sharded stream seed {seed}"));
    }
}

/// With a deadline admitting every arrival, the streamed loop reproduces
/// the batch `Lovm` round loop bit-exactly: same sealed bid vectors, same
/// outcomes, same queue trajectory, same ledger.
#[test]
fn streamed_full_deadline_reproduces_batch_rounds() {
    use ingest::IngestConfig;
    use lovm_core::lovm::{Lovm, LovmConfig};
    use lovm_core::simulate;
    use workload::Scenario;
    let scenario = Scenario::small();
    let (serial, _) = pools();
    for &seed in &SEEDS {
        let mut batch_mech = Lovm::new(LovmConfig::for_scenario(&scenario, 20.0));
        let batch = simulate(&mut batch_mech, &scenario, seed);
        let mut stream_mech = Lovm::new(LovmConfig::for_scenario(&scenario, 20.0));
        let streamed = stream_mech.run_stream_on(&scenario, seed, &IngestConfig::default(), serial);
        assert_eq!(
            batch.bids_per_round, streamed.result.bids_per_round,
            "sealed rounds diverged from batch bid vectors, seed {seed}"
        );
        for (round, (oa, ob)) in batch
            .outcomes
            .iter()
            .zip(&streamed.result.outcomes)
            .enumerate()
        {
            assert_outcomes_bit_identical(
                oa,
                ob,
                &format!("batch-vs-stream seed {seed} round {round}"),
            );
        }
        let qa = batch.series.get("backlog").unwrap();
        let qb = streamed.result.series.get("backlog").unwrap();
        assert_eq!(
            qa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            qb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "queue trajectory diverged from batch, seed {seed}"
        );
        assert_eq!(batch.ledger, streamed.result.ledger, "seed {seed}");
    }
}

/// A multi-seed scenario sweep fans independent simulations across workers:
/// ledgers, outcomes, and welfare trajectories are bit-identical on 1
/// worker and 4 workers, in seed order.
#[test]
fn simulation_sweep_parallel_is_bit_identical() {
    use lovm_core::lovm::{Lovm, LovmConfig};
    use lovm_core::simulate_seeds_on;
    use workload::Scenario;
    let scenario = Scenario::small();
    let (serial, parallel) = pools();
    let factory = || -> Box<dyn lovm_core::Mechanism> {
        Box::new(Lovm::new(LovmConfig::for_scenario(
            &Scenario::small(),
            20.0,
        )))
    };
    let a = simulate_seeds_on(factory, &scenario, &SEEDS, serial);
    let b = simulate_seeds_on(factory, &scenario, &SEEDS, parallel);
    assert_eq!(a.len(), SEEDS.len());
    for ((ra, rb), &seed) in a.iter().zip(&b).zip(&SEEDS) {
        assert_eq!(ra.ledger, rb.ledger, "ledger diverged, seed {seed}");
        assert_eq!(ra.outcomes, rb.outcomes, "outcomes diverged, seed {seed}");
        assert_eq!(
            ra.bids_per_round, rb.bids_per_round,
            "bid streams diverged, seed {seed}"
        );
        let wa = ra.cumulative_welfare();
        let wb = rb.cumulative_welfare();
        assert_eq!(
            wa.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            wb.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            "welfare trajectory diverged, seed {seed}"
        );
        assert!(
            ra.ledger.total_payment() > 0.0,
            "degenerate run, seed {seed}"
        );
    }
    // Sweep results must also arrive in seed order, not completion order:
    // distinct seeds produce distinct bid streams.
    assert_ne!(a[0].bids_per_round, a[1].bids_per_round);
}
