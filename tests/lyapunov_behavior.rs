//! Integration checks of the Lyapunov claims (E2/E3 shapes) on the real
//! mechanism, not the toy controller.

use sustainable_fl::prelude::*;

fn scenario() -> Scenario {
    let mut s = Scenario::small();
    s.horizon = 600;
    s.total_budget = 1200.0;
    s
}

fn run(v: f64, seed: u64) -> (f64, f64, f64) {
    let s = scenario();
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, v));
    let result = simulate(&mut lovm, &s, seed);
    let welfare = result.ledger.social_welfare();
    let backlog = result.series.get("backlog").unwrap();
    let peak = backlog.iter().cloned().fold(0.0, f64::max);
    let avg_spend = *result.average_spend().last().unwrap();
    (welfare, peak, avg_spend)
}

#[test]
fn time_average_spend_meets_rate_for_all_v() {
    let s = scenario();
    for v in [5.0, 20.0, 80.0] {
        let (_, _, avg) = run(v, 2);
        assert!(
            avg <= s.budget_per_round() * 1.08,
            "V={v}: avg spend {avg} vs rate {}",
            s.budget_per_round()
        );
    }
}

#[test]
fn backlog_grows_with_v() {
    let (_, peak_small, _) = run(2.0, 3);
    let (_, peak_large, _) = run(200.0, 3);
    assert!(
        peak_large > peak_small,
        "peak backlog should grow with V: {peak_small} vs {peak_large}"
    );
}

#[test]
fn welfare_weakly_improves_with_v() {
    let (w_small, _, _) = run(2.0, 4);
    let (w_large, _, _) = run(100.0, 4);
    assert!(
        w_large >= w_small * 0.95,
        "welfare should not collapse with V: {w_small} -> {w_large}"
    );
}

#[test]
fn queue_drains_after_transient() {
    // The backlog must not grow linearly over the horizon (stability).
    let s = scenario();
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, 30.0));
    let result = simulate(&mut lovm, &s, 5);
    let backlog = result.series.get("backlog").unwrap();
    let mid = backlog[backlog.len() / 2];
    let end = *backlog.last().unwrap();
    // End backlog within a constant factor of the mid backlog (no linear
    // growth between mid and end).
    assert!(
        end <= mid.max(10.0) * 2.0,
        "backlog still growing: mid {mid}, end {end}"
    );
}

#[test]
fn theoretical_bounds_are_consistent_with_measurement() {
    use sustainable_fl::lyapunov::analysis::{backlog_bound, lyapunov_b_constant};
    let s = scenario();
    let v = 30.0;
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, v));
    let result = simulate(&mut lovm, &s, 6);

    // Empirical max per-round spend bounds the Lyapunov B constant.
    let spend = result.series.get("spend").unwrap();
    let spend_max = spend.iter().cloned().fold(0.0, f64::max);
    let b = lyapunov_b_constant(spend_max, s.budget_per_round());

    // The drift-plus-penalty argument's penalty range is the per-round
    // platform *value* (what V multiplies), not realized welfare.
    let value = result.series.get("value").unwrap();
    let value_max = value.iter().cloned().fold(0.0, f64::max);

    // Slater: spending nothing under-spends by ρ each round.
    let eps = s.budget_per_round();
    // One extra spend_max absorbs the final overshoot step of the queue.
    let bound = backlog_bound(b, v, value_max, eps) + spend_max;

    let backlog = result.series.get("backlog").unwrap();
    let peak = backlog.iter().cloned().fold(0.0, f64::max);
    assert!(
        peak <= bound,
        "measured peak backlog {peak} exceeds theoretical bound {bound}"
    );
}
