//! Cross-crate integration: the full LOVM pipeline against every baseline
//! on a shared scenario, checking the paper's qualitative claims hold on
//! fixed seeds.

use sustainable_fl::core::offline::competitive_ratio;
use sustainable_fl::prelude::*;

fn scenario() -> Scenario {
    // Small enough for debug-mode CI, large enough for steady state.
    let mut s = Scenario::small();
    s.horizon = 400;
    s.total_budget = 800.0;
    s
}

#[test]
fn lovm_beats_value_blind_baselines_on_welfare() {
    let s = scenario();
    let valuation = Valuation::default();
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, 30.0));
    let mut fixed = FixedPrice::new(1.2, valuation, None);
    let mut random = RandomK::new(2, valuation, 9);

    let w_lovm = simulate(&mut lovm, &s, 9).ledger.social_welfare();
    let w_fixed = simulate(&mut fixed, &s, 9).ledger.social_welfare();
    let w_random = simulate(&mut random, &s, 9).ledger.social_welfare();

    assert!(
        w_lovm > w_fixed,
        "LOVM {w_lovm} should beat FixedPrice {w_fixed}"
    );
    assert!(
        w_lovm > w_random,
        "LOVM {w_lovm} should beat RandomK {w_random}"
    );
}

#[test]
fn lovm_close_to_offline_oracle() {
    let s = scenario();
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, 30.0));
    let result = simulate(&mut lovm, &s, 11);
    let oracle = offline_benchmark(
        &result.bids_per_round,
        &Valuation::default(),
        s.total_budget,
    );
    let ratio = competitive_ratio(result.ledger.social_welfare(), &oracle);
    assert!(
        ratio > 0.5,
        "competitive ratio {ratio} too low (welfare {} vs oracle {})",
        result.ledger.social_welfare(),
        oracle.welfare
    );
    assert!(
        ratio <= 1.0 + 1e-9,
        "online welfare cannot exceed the oracle: ratio {ratio}"
    );
}

#[test]
fn budget_feasible_mechanisms_respect_budget() {
    let s = scenario();
    let valuation = Valuation::default();
    let slack = 1.10; // O(V)/R transient allowance
    let runs: Vec<(String, f64)> = {
        let mut out = Vec::new();
        let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, 20.0));
        out.push((
            "lovm".into(),
            simulate(&mut lovm, &s, 3).ledger.total_payment(),
        ));
        let mut greedy = BudgetSplitGreedy::new(valuation, None);
        out.push((
            "greedy".into(),
            simulate(&mut greedy, &s, 3).ledger.total_payment(),
        ));
        let mut fixed = FixedPrice::new(1.0, valuation, None);
        out.push((
            "fixed".into(),
            simulate(&mut fixed, &s, 3).ledger.total_payment(),
        ));
        out
    };
    for (name, spend) in runs {
        assert!(
            spend <= s.total_budget * slack,
            "{name} overspent: {spend} vs budget {}",
            s.total_budget
        );
    }
}

#[test]
fn all_mechanisms_are_individually_rational_at_reports() {
    let s = scenario();
    let valuation = Valuation::default();
    let mut mechs: Vec<Box<dyn Mechanism>> = vec![
        Box::new(Lovm::new(LovmConfig::for_scenario(&s, 25.0))),
        Box::new(BudgetSplitGreedy::new(valuation, Some(5))),
        Box::new(FixedPrice::new(1.3, valuation, None)),
        Box::new(RandomK::new(3, valuation, 4)),
        Box::new(AllAvailable::new(valuation)),
    ];
    for mech in &mut mechs {
        let result = simulate(mech.as_mut(), &s, 5);
        for outcome in &result.outcomes {
            for w in &outcome.winners {
                assert!(
                    w.payment >= w.cost - 1e-6,
                    "{}: winner {} paid {} below cost {}",
                    result.mechanism,
                    w.bidder,
                    w.payment,
                    w.cost
                );
            }
        }
    }
}

#[test]
fn simulation_is_deterministic_across_mechanism_instances() {
    let s = scenario();
    let mut a = Lovm::new(LovmConfig::for_scenario(&s, 30.0));
    let mut b = Lovm::new(LovmConfig::for_scenario(&s, 30.0));
    let ra = simulate(&mut a, &s, 77);
    let rb = simulate(&mut b, &s, 77);
    assert_eq!(ra.ledger, rb.ledger);
    assert_eq!(ra.outcomes, rb.outcomes);
}

#[test]
fn ledger_matches_outcome_stream() {
    let s = scenario();
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, 30.0));
    let result = simulate(&mut lovm, &s, 13);
    let total_payment: f64 = result.outcomes.iter().map(|o| o.total_payment()).sum();
    assert!((total_payment - result.ledger.total_payment()).abs() < 1e-6);
    let total_value: f64 = result.outcomes.iter().map(|o| o.total_value()).sum();
    assert!((total_value - result.ledger.total_value()).abs() < 1e-6);
    result.ledger.check_invariants().unwrap();
}

#[test]
fn misreporting_client_cannot_gain_under_lovm_full_horizon() {
    // Long-run truthfulness: a client misreporting in *every* round of the
    // whole simulation does not increase its realized utility.
    let s = scenario();
    let target = 7usize;
    let utility_with_factor = |factor: f64| -> f64 {
        let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, 30.0));
        let market = sustainable_fl::core::simulation::Market::new(&s, 21);
        let market = if (factor - 1.0).abs() > 1e-12 {
            market.with_misreport(target, factor)
        } else {
            market
        };
        let result = sustainable_fl::core::simulation::simulate_market(&mut lovm, &s, market);
        let acct = result.ledger.accounts().get(&target);
        acct.map_or(0.0, |a| a.utility())
    };
    let truthful = utility_with_factor(1.0);
    for factor in [0.5, 0.8, 1.2, 2.0] {
        let lied = utility_with_factor(factor);
        // Allow a small tolerance: misreports perturb the queue trajectory,
        // which can shift utility either way by a little; systematic gains
        // would be large.
        assert!(
            lied <= truthful * 1.05 + 1.0,
            "factor {factor}: lied utility {lied} vs truthful {truthful}"
        );
    }
}
