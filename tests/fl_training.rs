//! Integration of the mechanism with real federated training (E6 shape).

use fedsim::data::partition::{partition, PartitionStrategy};
use fedsim::data::synth::{gaussian_blobs, BlobSpec};
use fedsim::data::Dataset;
use fedsim::model::LogisticRegression;
use fedsim::training::{FederatedRun, RunConfig};
use sustainable_fl::core::orchestrator::run_fl;
use sustainable_fl::prelude::*;
use workload::population::{CostDistribution, PopulationConfig};
use workload::AvailabilityKind;

fn fl_scenario(n: usize, horizon: usize) -> Scenario {
    Scenario {
        name: "fl-test".into(),
        population: PopulationConfig {
            num_clients: n,
            cost: CostDistribution::Uniform { lo: 0.5, hi: 1.5 },
            data_size: (10, 10), // overwritten by shard alignment
            quality: (0.7, 1.0),
            energy_groups: Vec::new(),
        },
        availability: AvailabilityKind::Bernoulli { p: 0.8 },
        horizon,
        total_budget: 2.5 * horizon as f64,
        training_energy: 1.0,
        valuation: auction::valuation::Valuation::default(),
    }
}

fn federation(n: usize, seed: u64) -> (FederatedRun<LogisticRegression>, Dataset) {
    let ds = gaussian_blobs(&BlobSpec::new(4, 8, 90), seed);
    let (train, test) = ds.split_at(280);
    let parts = partition(&train, n, PartitionStrategy::Dirichlet { alpha: 0.8 }, seed);
    let run = FederatedRun::new(
        LogisticRegression::new(8, 4),
        parts,
        train,
        RunConfig {
            seed,
            ..RunConfig::default()
        },
    );
    (run, test)
}

#[test]
fn lovm_fl_run_learns_under_budget() {
    let n = 12;
    let s = fl_scenario(n, 60);
    let (mut run, test) = federation(n, 1);
    let before = run.evaluate(&test);
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, 20.0));
    let result = run_fl(&mut lovm, &mut run, &test, &s, 15, 1);
    let after = result.final_accuracy();
    assert!(after > before + 0.25, "accuracy {before} -> {after}");
    // Steady-state budget satisfied.
    let spend = result.series.get("spend").unwrap();
    let late = &spend[30..];
    let avg = late.iter().sum::<f64>() / late.len() as f64;
    assert!(avg <= s.budget_per_round() * 1.15, "late avg spend {avg}");
}

#[test]
fn mechanism_choice_changes_participation_but_all_learn() {
    let n = 10;
    let s = fl_scenario(n, 50);
    let valuation = Valuation::default();

    let (mut run_a, test) = federation(n, 2);
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, 20.0));
    let res_lovm = run_fl(&mut lovm, &mut run_a, &test, &s, 50, 2);

    let (mut run_b, _) = federation(n, 2);
    let mut rand_k = RandomK::new(3, valuation, 2);
    let res_rand = run_fl(&mut rand_k, &mut run_b, &test, &s, 50, 2);

    assert!(res_lovm.final_accuracy() > 0.5);
    assert!(res_rand.final_accuracy() > 0.5);
    // Different winner trajectories.
    assert_ne!(
        res_lovm.series.get("winners").unwrap(),
        res_rand.series.get("winners").unwrap()
    );
}

#[test]
fn energy_constrained_fl_trains_without_violating_batteries() {
    // With energy groups, winners must always have had battery charge; the
    // Market enforces it with a debug assertion, so simply completing the
    // run in a consistent state is the check — plus participation shows the
    // expected stratification by harvest rate.
    let n = 12;
    let mut s = fl_scenario(n, 80);
    s.population.energy_groups = vec![
        workload::population::EnergyGroup {
            harvester: energy::harvest::HarvesterKind::Constant { rate: 1.0 },
            battery_capacity: 2.0,
        },
        workload::population::EnergyGroup {
            harvester: energy::harvest::HarvesterKind::Constant { rate: 0.125 },
            battery_capacity: 2.0,
        },
    ];
    s.training_energy = 1.0;
    let (mut run, test) = federation(n, 3);
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, 20.0));
    let result = run_fl(&mut lovm, &mut run, &test, &s, 20, 3);

    // Group 0 (rate 1.0, cycle 1) can win every round; group 1 (rate 0.125,
    // cycle 8) at most ~1/8 of rounds + initial charge.
    let wins = result.ledger.win_counts(n);
    let fast: f64 = wins.iter().step_by(2).sum();
    let slow: f64 = wins.iter().skip(1).step_by(2).sum();
    assert!(
        fast > slow,
        "fast harvesters should win more: fast {fast} vs slow {slow}"
    );
    // Slow group physically bounded: 6 clients × (80/8 + 2 initial).
    assert!(slow <= 6.0 * 12.0 + 1e-9, "slow wins {slow} impossible");
}

#[test]
fn accuracy_curve_is_monotonic_in_round_samples() {
    // Not strictly monotone (SGD noise), but the last sample should beat
    // the first and the samples should be ordered by round.
    let n = 8;
    let s = fl_scenario(n, 40);
    let (mut run, test) = federation(n, 4);
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, 20.0));
    let result = run_fl(&mut lovm, &mut run, &test, &s, 10, 4);
    let rounds: Vec<usize> = result.accuracy.iter().map(|&(r, _)| r).collect();
    assert_eq!(rounds, vec![10, 20, 30, 40]);
    assert!(result.accuracy.last().unwrap().1 >= result.accuracy[0].1 - 0.05);
}
