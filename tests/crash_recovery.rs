//! The crash-recovery contract, adversarially: truncate a recorded
//! market journal at *every* byte offset of its tail and require that
//! recovery always lands on the last fully-sealed round the prefix
//! commits — digest and backlog bit-identical to an uninterrupted
//! reference at that round — and that the recovered session then
//! continues bit-identically. Run once without snapshots (pure replay)
//! and once with a snapshot cadence whose snapshot file is *ahead* of
//! most truncation points, forcing the fall-back-to-full-replay path.
//!
//! The oracle for "what the prefix commits" is computed here from the
//! raw bytes (complete `outcome` lines), independently of the journal
//! crate's own scanner.

use auction::bid::Bid;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use sustainable_fl::core::serve::{MarketSession, SealedOutcome, SessionConfig};
use sustainable_fl::core::LovmConfig;

const ROUNDS: usize = 4;
const BIDDERS: usize = 4;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "lovm-crash-recovery-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn session_cfg(dir: &Path, snapshot_every: usize) -> SessionConfig {
    let mut cfg = SessionConfig::new(dir.join("market.jsonl"));
    cfg.snapshot = Some(dir.join("market.snapshot.json"));
    cfg.snapshot_every = snapshot_every;
    cfg.lovm = LovmConfig {
        v: 20.0,
        budget_per_round: 2.0,
        max_winners: Some(3),
        ..LovmConfig::default()
    };
    cfg
}

/// Deterministic offers for round `r`: enough variety that every round
/// has winners, losers, and distinct payments.
fn offers_for_round(r: usize) -> Vec<(f64, Bid)> {
    (0..BIDDERS)
        .map(|i| {
            let at = r as f64 + (i as f64 + 0.5) / (BIDDERS as f64 + 1.0);
            let cost = 0.7 + ((r * 5 + i * 3) % 7) as f64 * 0.23;
            let data = 90 + ((r * 17 + i * 41) % 250);
            let quality = 0.6 + ((r + 2 * i) % 4) as f64 * 0.1;
            (at, Bid::new(i, cost, data, quality))
        })
        .collect()
}

fn drive(session: &mut MarketSession, rounds: std::ops::Range<usize>) -> Vec<SealedOutcome> {
    rounds
        .map(|r| {
            for (at, bid) in offers_for_round(r) {
                session.offer(at, bid).unwrap();
            }
            session.seal().unwrap()
        })
        .collect()
}

fn torn_write_property(snapshot_every: usize, tag: &str) {
    // Record the reference: ROUNDS sealed rounds plus one more round's
    // arrivals journaled but never sealed, so the torn region spans
    // uncommitted arrivals as well as mid-line cuts.
    let ref_dir = temp_dir(&format!("{tag}-ref"));
    let mut reference = MarketSession::open(session_cfg(&ref_dir, snapshot_every)).unwrap();
    let ref_outcomes = drive(&mut reference, 0..ROUNDS);
    for (at, bid) in offers_for_round(ROUNDS) {
        reference.offer(at, bid).unwrap();
    }
    drop(reference);
    let journal_bytes = std::fs::read(ref_dir.join("market.jsonl")).unwrap();
    let snapshot_bytes = std::fs::read(ref_dir.join("market.snapshot.json")).ok();
    assert_eq!(
        snapshot_bytes.is_some(),
        snapshot_every > 0,
        "snapshot presence must follow the cadence"
    );

    // Independent oracle: a round is committed iff its outcome line's
    // trailing newline survives the cut.
    let mut outcome_line_ends = Vec::new();
    let mut offset = 0usize;
    for line in journal_bytes.split_inclusive(|&b| b == b'\n') {
        offset += line.len();
        if line.starts_with(br#"{"event":"outcome""#) && line.ends_with(b"\n") {
            outcome_line_ends.push(offset);
        }
    }
    assert_eq!(outcome_line_ends.len(), ROUNDS);
    let expected_rounds = |cut: usize| outcome_line_ends.iter().filter(|&&end| end <= cut).count();

    let crash_dir = temp_dir(&format!("{tag}-crash"));
    let journal_path = crash_dir.join("market.jsonl");
    let snapshot_path = crash_dir.join("market.snapshot.json");
    let mut continued: HashSet<usize> = HashSet::new();
    for cut in 0..=journal_bytes.len() {
        std::fs::write(&journal_path, &journal_bytes[..cut]).unwrap();
        // The snapshot survives the crash in full (its write is atomic);
        // at most cuts it now points past the truncated journal.
        match &snapshot_bytes {
            Some(bytes) => std::fs::write(&snapshot_path, bytes).unwrap(),
            None => {
                std::fs::remove_file(&snapshot_path).ok();
            }
        }
        let mut recovered = MarketSession::open(session_cfg(&crash_dir, snapshot_every))
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let rounds = expected_rounds(cut);
        assert_eq!(
            recovered.recovered_rounds(),
            rounds,
            "cut at byte {cut} must land on the last fully-sealed round"
        );
        let (want_digest, want_backlog) = if rounds == 0 {
            (journal::Digest::new().value(), 0.0)
        } else {
            (
                ref_outcomes[rounds - 1].digest,
                ref_outcomes[rounds - 1].backlog,
            )
        };
        assert_eq!(recovered.digest(), want_digest, "digest at cut {cut}");
        assert_eq!(
            recovered.backlog().to_bits(),
            want_backlog.to_bits(),
            "backlog bits at cut {cut}"
        );
        // Once per distinct landing round: the recovered session must
        // continue bit-identically with the reference (the client
        // re-sends whatever the truncation discarded).
        if continued.insert(rounds) {
            let tail = drive(&mut recovered, rounds..ROUNDS);
            assert_eq!(
                tail,
                ref_outcomes[rounds..].to_vec(),
                "continuation after recovery at cut {cut} diverged"
            );
        }
    }
    // Every landing round occurred, so the sweep really covered the
    // whole spectrum from empty journal to fully committed.
    assert_eq!(continued.len(), ROUNDS + 1);
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

#[test]
fn torn_journal_always_recovers_the_last_sealed_round() {
    torn_write_property(0, "plain");
}

/// Same sweep with snapshots on: for cuts before the snapshot's
/// boundary the snapshot is ahead of the journal and recovery must
/// ignore it and fall back to full replay; for cuts after, it
/// fast-forwards — either way landing bit-identically.
#[test]
fn torn_journal_recovers_despite_a_snapshot_from_the_future() {
    torn_write_property(2, "snap");
}

/// The sweep again over a *compacted* journal: the file begins with a
/// compaction header whose embedded snapshot stands in for the dropped
/// prefix. Truncation at every tail byte offset must land exactly where
/// the raw bytes dictate — a cut inside the header falls all the way
/// back to an empty market (the header commits or it doesn't), a cut in
/// the suffix lands on the last committed outcome past the base — and
/// every landing continues bit-identically.
#[test]
fn torn_compacted_journal_always_recovers() {
    let ref_dir = temp_dir("compacted-ref");
    let mut cfg = session_cfg(&ref_dir, 2);
    cfg.compact_every = 3;
    let mut reference = MarketSession::open(cfg).unwrap();
    let ref_outcomes = drive(&mut reference, 0..ROUNDS);
    for (at, bid) in offers_for_round(ROUNDS) {
        reference.offer(at, bid).unwrap();
    }
    drop(reference);
    let journal_bytes = std::fs::read(ref_dir.join("market.jsonl")).unwrap();
    let snapshot_bytes = std::fs::read(ref_dir.join("market.snapshot.json")).unwrap();

    // Independent oracle from the raw bytes: the sealed rounds the
    // (complete) header's embedded snapshot covers, plus every complete
    // outcome line at or before the cut.
    let header_line = journal_bytes
        .split_inclusive(|&b| b == b'\n')
        .next()
        .unwrap();
    assert!(
        header_line.starts_with(br#"{"event":"compact""#) && header_line.ends_with(b"\n"),
        "compaction must have rewritten the journal behind a header"
    );
    let header_end = header_line.len();
    let header =
        metrics::json::JsonValue::parse(std::str::from_utf8(header_line).unwrap().trim()).unwrap();
    let base_rounds = header
        .get("snapshot")
        .and_then(|s| s.get("collector"))
        .and_then(|c| c.get("next_round"))
        .and_then(|r| r.as_usize())
        .unwrap();
    assert!(
        base_rounds > 0 && base_rounds < ROUNDS,
        "the sweep needs sealed rounds on both sides of the base, got base {base_rounds}"
    );
    let mut outcome_line_ends = Vec::new();
    let mut offset = 0usize;
    for line in journal_bytes.split_inclusive(|&b| b == b'\n') {
        offset += line.len();
        if line.starts_with(br#"{"event":"outcome""#) && line.ends_with(b"\n") {
            outcome_line_ends.push(offset);
        }
    }
    assert_eq!(outcome_line_ends.len(), ROUNDS - base_rounds);
    let expected_rounds = |cut: usize| {
        if cut < header_end {
            0
        } else {
            base_rounds + outcome_line_ends.iter().filter(|&&end| end <= cut).count()
        }
    };

    let crash_dir = temp_dir("compacted-crash");
    let journal_path = crash_dir.join("market.jsonl");
    let snapshot_path = crash_dir.join("market.snapshot.json");
    let mut continued: HashSet<usize> = HashSet::new();
    for cut in 0..=journal_bytes.len() {
        std::fs::write(&journal_path, &journal_bytes[..cut]).unwrap();
        // The snapshot file survives every crash in full (atomic write);
        // at most cuts it is now *ahead* of the truncated journal and
        // must be ignored in favour of the header's base.
        std::fs::write(&snapshot_path, &snapshot_bytes).unwrap();
        let mut crash_cfg = session_cfg(&crash_dir, 2);
        crash_cfg.compact_every = 3;
        let mut recovered = MarketSession::open(crash_cfg)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let rounds = expected_rounds(cut);
        assert_eq!(
            recovered.recovered_rounds(),
            rounds,
            "cut at byte {cut} must land on the last committed round"
        );
        let (want_digest, want_backlog) = if rounds == 0 {
            (journal::Digest::new().value(), 0.0)
        } else {
            (
                ref_outcomes[rounds - 1].digest,
                ref_outcomes[rounds - 1].backlog,
            )
        };
        assert_eq!(recovered.digest(), want_digest, "digest at cut {cut}");
        assert_eq!(
            recovered.backlog().to_bits(),
            want_backlog.to_bits(),
            "backlog bits at cut {cut}"
        );
        if continued.insert(rounds) {
            let tail = drive(&mut recovered, rounds..ROUNDS);
            assert_eq!(
                tail,
                ref_outcomes[rounds..].to_vec(),
                "continuation after recovery at cut {cut} diverged"
            );
        }
    }
    // Landing rounds: the empty market (mid-header cuts), the base, and
    // every suffix round — rounds the compaction dropped cannot recur.
    let want: HashSet<usize> = std::iter::once(0).chain(base_rounds..=ROUNDS).collect();
    assert_eq!(continued, want);
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}
