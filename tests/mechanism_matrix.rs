//! Matrix test: every mechanism × every scenario preset completes a run
//! with the universal invariants intact (IR at reports, consistent ledger,
//! non-negative payments, winners drawn from bidders, determinism).

use sustainable_fl::core::simulation::SimulationResult;
use sustainable_fl::core::{MultiLovm, MultiLovmConfig};
use sustainable_fl::prelude::*;

fn scenarios() -> Vec<Scenario> {
    let shrink = |mut s: Scenario, h: usize| {
        s.total_budget *= h as f64 / s.horizon as f64;
        s.horizon = h;
        s
    };
    vec![
        shrink(Scenario::small(), 80),
        shrink(Scenario::standard(), 80),
        shrink(Scenario::energy_heterogeneous(), 80),
        shrink(Scenario::solar_fleet(), 80),
    ]
}

fn mechanisms(scenario: &Scenario, seed: u64) -> Vec<Box<dyn Mechanism>> {
    let valuation = scenario.valuation;
    vec![
        Box::new(Lovm::new(LovmConfig::for_scenario(scenario, 20.0))),
        Box::new(MultiLovm::new(MultiLovmConfig {
            v: 20.0,
            budget_per_round: scenario.budget_per_round(),
            constraints: vec![sustainable_fl::core::Constraint {
                name: "energy".into(),
                rate: 8.0,
                usage: sustainable_fl::core::ResourceUsage::EnergyAffine {
                    base: 0.2,
                    per_data: 0.004,
                },
            }],
            max_winners: Some(8),
            min_cost_weight: 1.0,
            valuation,
        })),
        Box::new(MyopicVcg::new(valuation, None)),
        Box::new(BudgetSplitGreedy::new(valuation, Some(6))),
        Box::new(ProportionalShare::new(valuation)),
        Box::new(FixedPrice::new(1.2, valuation, None)),
        Box::new(RandomK::new(3, valuation, seed)),
        Box::new(AllAvailable::new(valuation)),
    ]
}

fn check_invariants(result: &SimulationResult, scenario: &Scenario) {
    result
        .ledger
        .check_invariants()
        .unwrap_or_else(|e| panic!("{} / {}: {e}", result.mechanism, scenario.name));
    let n = scenario.population.num_clients;
    for (round, (outcome, bids)) in result
        .outcomes
        .iter()
        .zip(&result.bids_per_round)
        .enumerate()
    {
        let bidders: std::collections::HashSet<usize> = bids.iter().map(|b| b.bidder).collect();
        for w in &outcome.winners {
            assert!(
                bidders.contains(&w.bidder),
                "{} round {round}: winner {} did not bid",
                result.mechanism,
                w.bidder
            );
            assert!(w.bidder < n, "winner id out of range");
            assert!(
                w.payment >= w.cost - 1e-6,
                "{} round {round}: IR violated ({} < {})",
                result.mechanism,
                w.payment,
                w.cost
            );
            assert!(w.payment.is_finite() && w.payment >= 0.0);
            assert!(w.value.is_finite());
        }
        // No duplicate winners within a round.
        let ids = outcome.winner_ids();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(
            ids, dedup,
            "{} round {round}: duplicate winners",
            result.mechanism
        );
    }
}

#[test]
fn all_mechanisms_on_all_scenarios_hold_invariants() {
    for scenario in scenarios() {
        for mech in &mut mechanisms(&scenario, 5) {
            let result = simulate(mech.as_mut(), &scenario, 5);
            assert_eq!(result.outcomes.len(), scenario.horizon);
            check_invariants(&result, &scenario);
        }
    }
}

#[test]
fn all_mechanisms_deterministic_per_seed() {
    let scenario = {
        let mut s = Scenario::small();
        s.horizon = 50;
        s.total_budget = 100.0;
        s
    };
    for (a, b) in mechanisms(&scenario, 9)
        .iter_mut()
        .zip(mechanisms(&scenario, 9).iter_mut())
    {
        let ra = simulate(a.as_mut(), &scenario, 9);
        let rb = simulate(b.as_mut(), &scenario, 9);
        assert_eq!(ra.ledger, rb.ledger, "{} not deterministic", ra.mechanism);
        assert_eq!(ra.outcomes, rb.outcomes);
    }
}

#[test]
fn cost_shader_regret_non_negative_on_all_wdp_combos_vs_brute_force_oracle() {
    // Strategy-regret row for the adversary simulator: a CostShader focal
    // client must never profit from understating cost, under every WDP
    // constraint combo {cardinality cap on/off} × {budget-capped instance
    // on/off}, with subset enumeration (`SolverKind::Exhaustive` +
    // `PaymentStrategy::Naive`) as the brute-force oracle. The budgeted
    // combos use a slack budget: a *binding* cost knapsack makes the
    // feasible set report-dependent, which is outside the DSIC theorem's
    // scope (same regime note as e16 and the full-horizon probe below).
    use simrng::rngs::StdRng;
    use simrng::{RngExt, SeedableRng};
    use sustainable_fl::advsim::{single_round_regret, Strategy};
    use sustainable_fl::auction::{
        AuctionOutcome, Bid, ClientValue, PaymentStrategy, SolverKind, Valuation, VcgAuction,
        VcgConfig,
    };

    let valuation = Valuation::Linear(ClientValue {
        value_per_unit: 1.0,
        base_value: 0.0,
    });
    let slack_budget = 1e3; // far above any subset's total cost below
    let combos: [(&str, Option<usize>, bool); 4] = [
        ("uncapped/unbudgeted", None, false),
        ("capped/unbudgeted", Some(3), false),
        ("uncapped/budgeted", None, true),
        ("capped/budgeted", Some(3), true),
    ];

    let mut rng = StdRng::seed_from_u64(0xC057);
    for case in 0..12u64 {
        let n = rng.random_range(3..=8usize);
        let bids: Vec<Bid> = (0..n)
            .map(|i| {
                Bid::new(
                    i,
                    rng.random_range(0.5..4.0),
                    rng.random_range(1..8usize),
                    rng.random_range(0.5..1.0),
                )
            })
            .collect();
        let focal = case as usize % n;
        for (label, cap, budgeted) in combos {
            let auction = VcgAuction::new(VcgConfig {
                value_weight: 4.0,
                cost_weight: 1.0,
                max_winners: cap,
                ..VcgConfig::default()
            });
            // The production path for this combo (top-K fast path for the
            // unbudgeted rows, exact budget solve for the budgeted ones).
            let prod = |b: &[Bid]| -> AuctionOutcome {
                if budgeted {
                    auction.run_with_budget_strategy_on(
                        b,
                        &valuation,
                        slack_budget,
                        SolverKind::Exact,
                        PaymentStrategy::Incremental,
                        par::Pool::serial(),
                    )
                } else {
                    auction.run(b, &valuation)
                }
            };
            // Brute-force oracle: enumerate every subset, re-solve each
            // pivot from scratch. A slack budget is a no-op constraint, so
            // the same closure is the oracle for all four combos.
            let brute = |b: &[Bid]| -> AuctionOutcome {
                auction.run_with_budget_strategy_on(
                    b,
                    &valuation,
                    slack_budget,
                    SolverKind::Exhaustive,
                    PaymentStrategy::Naive,
                    par::Pool::serial(),
                )
            };
            // Oracle agreement at the truthful profile.
            let fast = prod(&bids);
            let exact = brute(&bids);
            assert_eq!(
                fast.winner_ids(),
                exact.winner_ids(),
                "case {case} {label}: production winners diverge from brute force"
            );
            assert!(
                (fast.total_payment() - exact.total_payment()).abs() <= 1e-9,
                "case {case} {label}: payments diverge from brute force ({} vs {})",
                fast.total_payment(),
                exact.total_payment()
            );
            for factor in [0.25, 0.5, 0.75, 0.9] {
                let shade = Strategy::CostShader { factor };
                for (path, mech) in [
                    ("production", &prod as &dyn Fn(&[Bid]) -> AuctionOutcome),
                    ("brute-force", &brute),
                ] {
                    let regret = single_round_regret(&bids, focal, &shade, case, mech);
                    assert!(
                        regret >= -1e-9,
                        "case {case} {label} ({path}): CostShader{{{factor}}} \
                         profited — regret {regret:+.9} for focal {focal}"
                    );
                }
            }
        }
    }
}

#[test]
fn truthful_mechanisms_resist_full_horizon_misreports_on_energy_scenario() {
    // Long-run probe on a scenario with energy dynamics: misreporting every
    // round must not systematically help under LOVM.
    let mut scenario = Scenario::energy_heterogeneous();
    scenario.horizon = 120;
    scenario.total_budget = 360.0;
    let target = 0usize; // group-U0 client (always energy-available)
    let utility = |factor: f64| -> f64 {
        let mut mech = Lovm::new(LovmConfig::for_scenario(&scenario, 20.0));
        let market = sustainable_fl::core::simulation::Market::new(&scenario, 31);
        let market = if (factor - 1.0).abs() > 1e-12 {
            market.with_misreport(target, factor)
        } else {
            market
        };
        let result =
            sustainable_fl::core::simulation::simulate_market(&mut mech, &scenario, market);
        result
            .ledger
            .accounts()
            .get(&target)
            .map_or(0.0, |a| a.utility())
    };
    let truthful = utility(1.0);
    for factor in [0.6, 1.4, 2.5] {
        let lied = utility(factor);
        assert!(
            lied <= truthful * 1.05 + 1.0,
            "factor {factor}: {lied} vs truthful {truthful}"
        );
    }
}
