//! Implementing your own mechanism against the `Mechanism` trait and
//! benchmarking it with the standard harness — the extension point a
//! downstream researcher would use.
//!
//! The custom mechanism here is a *pay-as-bid threshold* rule: recruit
//! everyone whose value-to-cost ratio exceeds a threshold, pay a 20%
//! markup on the bid. It looks reasonable but is neither truthful nor
//! budget-safe; the probe quantifies both failures.
//!
//! ```sh
//! cargo run --release --example custom_mechanism
//! ```

use sustainable_fl::auction::outcome::{AuctionOutcome, Award};
use sustainable_fl::auction::properties::{default_factor_grid, probe_truthfulness};
use sustainable_fl::prelude::*;

/// Recruit if `value / cost ≥ threshold`, pay `1.2 × bid`.
struct MarkupThreshold {
    threshold: f64,
    valuation: Valuation,
}

impl Mechanism for MarkupThreshold {
    fn name(&self) -> String {
        format!("MarkupThreshold({})", self.threshold)
    }

    fn select(&mut self, _info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome {
        let mut welfare = 0.0;
        let awards = bids
            .iter()
            .filter(|b| self.valuation.client_value(b) >= self.threshold * b.cost.max(1e-9))
            .map(|b| {
                let value = self.valuation.client_value(b);
                welfare += value - b.cost;
                Award {
                    bidder: b.bidder,
                    cost: b.cost,
                    value,
                    payment: 1.2 * b.cost,
                }
            })
            .collect();
        AuctionOutcome::new(awards, welfare)
    }

    fn reset(&mut self) {}
}

fn main() {
    let scenario = Scenario::small();
    let valuation = Valuation::default();

    // 1. Run it through the standard simulator like any built-in mechanism.
    let mut custom = MarkupThreshold {
        threshold: 0.6,
        valuation,
    };
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&scenario, 30.0));
    let custom_result = simulate(&mut custom, &scenario, 5);
    let lovm_result = simulate(&mut lovm, &scenario, 5);

    println!(
        "welfare:  custom {:.1}  vs  LOVM {:.1}",
        custom_result.ledger.social_welfare(),
        lovm_result.ledger.social_welfare()
    );
    println!(
        "spend:    custom {:.1}  vs  LOVM {:.1}  (budget {:.1})",
        custom_result.ledger.total_payment(),
        lovm_result.ledger.total_payment(),
        scenario.total_budget
    );

    // 2. Probe truthfulness the same way the E4 experiment does. Probe the
    // client with the best value/cost ratio (a sure winner — the one with
    // room to overbid).
    let bids: Vec<Bid> = workload::population::generate(&scenario.population, 5)
        .iter()
        .map(|p| p.truthful_bid())
        .collect();
    let target = (0..bids.len())
        .max_by(|&a, &b| {
            let ra = valuation.client_value(&bids[a]) / bids[a].cost;
            let rb = valuation.client_value(&bids[b]) / bids[b].cost;
            ra.partial_cmp(&rb).unwrap()
        })
        .unwrap();
    let probe = probe_truthfulness(&bids, target, &default_factor_grid(), |b| {
        let mut m = MarkupThreshold {
            threshold: 0.6,
            valuation,
        };
        let info = RoundInfo {
            round: 0,
            horizon: scenario.horizon,
            total_budget: scenario.total_budget,
            spent_so_far: 0.0,
        };
        m.select(&info, b)
    });
    println!(
        "\ntruthfulness probe on client {}: truthful utility {:.3}, best misreport \
         utility {:.3} at factor {} → max gain {:.3}",
        target,
        probe.truthful_utility,
        probe.best_misreport_utility,
        probe.best_factor,
        probe.max_gain()
    );
    if !probe.is_truthful(1e-9) {
        println!("=> the markup rule is manipulable (as expected: pay-as-bid + markup).");
    }
}
