//! Solar fleet with real federated training: 60 solar-powered devices with
//! staggered day/night phases jointly train a classifier; LOVM recruits
//! under a long-term budget while accuracy is measured on a held-out set.
//!
//! ```sh
//! cargo run --release --example solar_fleet_training
//! ```

use fedsim::data::partition::{partition, PartitionStrategy};
use fedsim::data::synth::{synthetic_digits, DigitsSpec};
use fedsim::model::LogisticRegression;
use fedsim::training::{FederatedRun, RunConfig};
use sustainable_fl::core::orchestrator::run_fl;
use sustainable_fl::prelude::*;

fn main() {
    let mut scenario = Scenario::solar_fleet();
    // Shorter horizon so the example finishes quickly even in debug builds.
    scenario.horizon = 240;
    scenario.total_budget = 625.0;

    println!(
        "Scenario `{}`: {} solar devices, {} rounds (5 simulated days)\n",
        scenario.name, scenario.population.num_clients, scenario.horizon
    );

    // Dataset: synthetic digits, non-IID across the fleet.
    let mut spec = DigitsSpec::new(120);
    spec.noise = 1.3; // harder problem: classes overlap, accuracy < 1
    let ds = synthetic_digits(&spec, 11);
    let (train, test) = ds.split_at(1000);
    let parts = partition(
        &train,
        scenario.population.num_clients,
        PartitionStrategy::Dirichlet { alpha: 0.5 },
        11,
    );
    let mut run = FederatedRun::new(
        LogisticRegression::new(train.num_features(), train.num_classes()),
        parts,
        train,
        RunConfig::default(),
    );

    // The default valuation underprices these clients (solar devices carry
    // larger data commitments), so use a scenario-appropriate one.
    let valuation = Valuation::Log(ClientValue {
        value_per_unit: 0.35,
        base_value: 0.5,
    });
    let mut lovm = Lovm::new(LovmConfig::for_scenario(&scenario, 40.0).with_valuation(valuation));
    let result = run_fl(&mut lovm, &mut run, &test, &scenario, 24, 13);

    println!("round | test accuracy | winners (avg/day)");
    let winners = result.series.get("winners").expect("recorded");
    for &(round, acc) in &result.accuracy {
        let lo = round.saturating_sub(24);
        let mean_w: f64 = winners[lo..round].iter().sum::<f64>() / (round - lo) as f64;
        println!("{round:>5} | {acc:>13.3} | {mean_w:>8.2}");
    }
    println!(
        "\nFinal accuracy {:.3}; spend {:.1} / budget {:.1}; welfare {:.1}",
        result.final_accuracy(),
        result.ledger.total_payment(),
        scenario.total_budget,
        result.ledger.social_welfare()
    );
}
