//! Quickstart: run LOVM against every baseline on one scenario and print
//! the headline comparison (welfare, budget compliance, client utility).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sustainable_fl::prelude::*;

fn main() {
    let scenario = Scenario::standard();
    let seed = 42;
    println!(
        "Scenario `{}`: {} clients, {} rounds, budget {} ({:.2}/round)\n",
        scenario.name,
        scenario.population.num_clients,
        scenario.horizon,
        scenario.total_budget,
        scenario.budget_per_round()
    );

    let valuation = Valuation::default();
    let mut mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(Lovm::new(LovmConfig::for_scenario(&scenario, 50.0))),
        Box::new(MyopicVcg::new(valuation, None)),
        Box::new(BudgetSplitGreedy::new(valuation, None)),
        Box::new(FixedPrice::new(1.2, valuation, None)),
        Box::new(RandomK::new(4, valuation, seed)),
    ];

    let mut table = metrics::Table::new(vec![
        "mechanism".into(),
        "welfare".into(),
        "spend".into(),
        "avg/round".into(),
        "budget ok".into(),
        "client utility".into(),
    ]);

    let mut oracle_input = None;
    for mech in &mut mechanisms {
        let result = simulate(mech.as_mut(), &scenario, seed);
        let spend = result.ledger.total_payment();
        let avg = spend / scenario.horizon as f64;
        table.row(vec![
            result.mechanism.clone(),
            format!("{:.1}", result.ledger.social_welfare()),
            format!("{spend:.1}"),
            format!("{avg:.3}"),
            if spend <= scenario.total_budget * 1.02 {
                "yes".into()
            } else {
                "NO".into()
            },
            format!("{:.1}", result.ledger.client_utility()),
        ]);
        if oracle_input.is_none() {
            oracle_input = Some(result.bids_per_round);
        }
    }

    // Offline full-information oracle on the same bid stream.
    let oracle = offline_benchmark(
        &oracle_input.expect("at least one run"),
        &valuation,
        scenario.total_budget,
    );
    table.row(vec![
        "OfflineOracle".into(),
        format!("{:.1}", oracle.welfare),
        format!("{:.1}", oracle.spend),
        format!("{:.3}", oracle.spend / scenario.horizon as f64),
        "yes".into(),
        "0.0".into(),
    ]);

    println!("{}", table.to_markdown());
    println!("(Oracle pays cost exactly, so client utility is zero by definition.)");
}
