//! Edge-IoT procurement: heterogeneous energy-harvesting sensors bid to
//! contribute training rounds. Demonstrates how LOVM's virtual queue
//! shifts recruitment toward rounds where cheap, well-charged devices are
//! present, and prints per-group participation shares.
//!
//! ```sh
//! cargo run --release --example edge_iot_auction
//! ```

use sustainable_fl::prelude::*;

fn main() {
    let scenario = Scenario::energy_heterogeneous();
    println!(
        "Scenario `{}`: 4 energy groups with renewal cycles ≈ 1/5/10/20 rounds\n",
        scenario.name
    );

    let mut lovm = Lovm::new(LovmConfig::for_scenario(&scenario, 40.0));
    let result = simulate(&mut lovm, &scenario, 7);

    // Participation by energy group (clients are dealt round-robin into
    // 4 groups: id % 4).
    let n = scenario.population.num_clients;
    let wins = result.ledger.win_counts(n);
    let mut group_wins = [0.0f64; 4];
    let mut group_size = [0usize; 4];
    for (id, &w) in wins.iter().enumerate() {
        group_wins[id % 4] += w;
        group_size[id % 4] += 1;
    }

    let mut table = metrics::Table::new(vec![
        "energy group".into(),
        "renewal cycle".into(),
        "clients".into(),
        "total wins".into(),
        "wins/client/100 rounds".into(),
    ]);
    let cycles = ["1", "5", "10", "20"];
    for g in 0..4 {
        table.row(vec![
            format!("U{g}"),
            cycles[g].into(),
            group_size[g].to_string(),
            format!("{:.0}", group_wins[g]),
            format!(
                "{:.1}",
                100.0 * group_wins[g] / (group_size[g] as f64 * scenario.horizon as f64)
            ),
        ]);
    }
    println!("{}", table.to_markdown());

    let spend = result.ledger.total_payment();
    println!(
        "\nWelfare {:.1}, spend {:.1} / budget {:.1}, final queue backlog {:.2}",
        result.ledger.social_welfare(),
        spend,
        scenario.total_budget,
        result
            .series
            .get("backlog")
            .map_or(0.0, |b| *b.last().unwrap())
    );
    println!(
        "Jain fairness over wins: {:.3}",
        metrics::jain_fairness(&wins)
    );
}
