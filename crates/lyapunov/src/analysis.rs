//! Time-average tracking and theoretical bound calculators.

/// Online tracker of a running time average with full history retained for
/// plotting (history is cheap: one f64 per round).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeAverage {
    total: f64,
    history: Vec<f64>,
}

impl TimeAverage {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation and returns the updated average.
    pub fn push(&mut self, value: f64) -> f64 {
        self.total += value;
        let avg = self.total / (self.history.len() + 1) as f64;
        self.history.push(avg);
        avg
    }

    /// Current time average (0 if empty).
    pub fn average(&self) -> f64 {
        self.history.last().copied().unwrap_or(0.0)
    }

    /// Running sum of observations.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The running-average trajectory (entry `t` = average after `t + 1`
    /// observations).
    pub fn trajectory(&self) -> &[f64] {
        &self.history
    }

    /// Whether the running average converged: the last `window` entries stay
    /// within `tol` of the final value. Returns `false` when fewer than
    /// `window` observations exist.
    pub fn converged(&self, window: usize, tol: f64) -> bool {
        if self.history.len() < window || window == 0 {
            return false;
        }
        let last = self.average();
        self.history[self.history.len() - window..]
            .iter()
            .all(|&v| (v - last).abs() <= tol)
    }
}

/// The standard drift-plus-penalty welfare gap bound: the achieved long-term
/// welfare is within `bound_constant / v` of the optimal ρ-feasible policy.
///
/// `bound_constant` is the `B` of the Lyapunov argument — an upper bound on
/// `½·E[(spend − ρ)²]` per slot, computable from the maximum per-round
/// expenditure and the budget rate.
///
/// # Panics
///
/// Panics if `v <= 0`.
pub fn welfare_gap_bound(bound_constant: f64, v: f64) -> f64 {
    assert!(v > 0.0, "v must be positive");
    bound_constant / v
}

/// The matching backlog bound: with a Slater constant `eps` (a policy exists
/// that under-spends the budget by `eps` per round on average), the virtual
/// queue backlog is bounded by `(bound_constant + v·max_utility) / eps`.
///
/// # Panics
///
/// Panics if `eps <= 0`.
pub fn backlog_bound(bound_constant: f64, v: f64, max_utility: f64, eps: f64) -> f64 {
    assert!(eps > 0.0, "eps must be positive");
    (bound_constant + v * max_utility) / eps
}

/// Computes the Lyapunov `B` constant for a bounded-spend process:
/// `B = ½·max(spend_max − ρ, ρ)²` dominates `½(spend − ρ)²` for any
/// realized spend in `[0, spend_max]`.
///
/// # Panics
///
/// Panics if `spend_max < 0` or `rho < 0`.
pub fn lyapunov_b_constant(spend_max: f64, rho: f64) -> f64 {
    assert!(spend_max >= 0.0 && rho >= 0.0);
    let dev = (spend_max - rho).max(rho);
    0.5 * dev * dev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_average_tracks_mean() {
        let mut t = TimeAverage::new();
        assert!(t.is_empty());
        assert_eq!(t.push(2.0), 2.0);
        assert_eq!(t.push(4.0), 3.0);
        assert_eq!(t.average(), 3.0);
        assert_eq!(t.total(), 6.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.trajectory(), &[2.0, 3.0]);
    }

    #[test]
    fn converged_detects_settling() {
        let mut t = TimeAverage::new();
        for _ in 0..100 {
            t.push(1.0);
        }
        assert!(t.converged(10, 1e-9));
        let mut u = TimeAverage::new();
        for i in 0..20 {
            u.push(i as f64);
        }
        assert!(!u.converged(10, 0.1));
        assert!(!u.converged(0, 0.1));
        assert!(!TimeAverage::new().converged(5, 1.0));
    }

    #[test]
    fn gap_bound_shrinks_with_v() {
        assert!(welfare_gap_bound(10.0, 100.0) < welfare_gap_bound(10.0, 10.0));
        assert_eq!(welfare_gap_bound(10.0, 10.0), 1.0);
    }

    #[test]
    fn backlog_bound_grows_with_v() {
        let b = 5.0;
        assert!(backlog_bound(b, 100.0, 1.0, 0.5) > backlog_bound(b, 10.0, 1.0, 0.5));
    }

    #[test]
    fn b_constant_dominates_deviation() {
        let b = lyapunov_b_constant(10.0, 2.0);
        for spend in [0.0, 1.0, 2.0, 5.0, 10.0] {
            let dev = 0.5 * (spend - 2.0) * (spend - 2.0);
            assert!(b >= dev - 1e-12, "B {b} < dev {dev} at spend {spend}");
        }
    }

    #[test]
    #[should_panic(expected = "v must be positive")]
    fn gap_bound_rejects_zero_v() {
        let _ = welfare_gap_bound(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn backlog_bound_rejects_zero_eps() {
        let _ = backlog_bound(1.0, 1.0, 1.0, 0.0);
    }
}
