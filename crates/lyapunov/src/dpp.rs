//! The drift-plus-penalty controller.
//!
//! Each round the controller exposes weights `(V, Q(t))`; the mechanism
//! maximizes `Σ (V·v_i − Q(t)·c_i)` over feasible winner sets (its
//! drift-plus-penalty upper bound), then reports realized expenditure back
//! via [`DriftPlusPenalty::observe_spend`], which drives the virtual queue
//! `Q(t+1) = max(Q(t) + spend_t − ρ, 0)`.
//!
//! Standard Lyapunov arguments give: long-term expenditure within the
//! budget rate (queue stability) and welfare within `O(1/V)` of the best
//! ρ-feasible policy, at the price of an `O(V)` backlog transient.

use crate::queue::VirtualQueue;

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DppConfig {
    /// Penalty weight `V > 0`: larger favors welfare over constraint slack.
    pub v: f64,
    /// Long-term budget rate ρ (allowed average spend per round, > 0).
    pub budget_per_round: f64,
    /// Floor on the effective cost weight `max(Q(t), q_min)`, keeping the
    /// per-round auction well-defined (VCG payments divide by it) even when
    /// the queue is empty. Must be > 0.
    pub min_cost_weight: f64,
}

impl Default for DppConfig {
    fn default() -> Self {
        DppConfig {
            v: 10.0,
            budget_per_round: 1.0,
            min_cost_weight: 1.0,
        }
    }
}

/// The per-round weights handed to the winner-determination problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundWeights {
    /// Weight on platform value (`V`).
    pub value_weight: f64,
    /// Weight on cost (`max(Q(t), q_min)`).
    pub cost_weight: f64,
}

/// Drift-plus-penalty controller for a single long-term budget constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftPlusPenalty {
    config: DppConfig,
    queue: VirtualQueue,
}

impl DriftPlusPenalty {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if any config field is non-positive or non-finite.
    pub fn new(config: DppConfig) -> Self {
        assert!(config.v.is_finite() && config.v > 0.0, "v must be positive");
        assert!(
            config.budget_per_round.is_finite() && config.budget_per_round > 0.0,
            "budget_per_round must be positive"
        );
        assert!(
            config.min_cost_weight.is_finite() && config.min_cost_weight > 0.0,
            "min_cost_weight must be positive"
        );
        DriftPlusPenalty {
            config,
            queue: VirtualQueue::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DppConfig {
        &self.config
    }

    /// Current virtual-queue backlog `Q(t)`.
    pub fn queue_backlog(&self) -> f64 {
        self.queue.backlog()
    }

    /// Borrow of the underlying queue (for analysis/telemetry).
    pub fn queue(&self) -> &VirtualQueue {
        &self.queue
    }

    /// Weights for the current round's winner determination.
    pub fn weights(&self) -> RoundWeights {
        RoundWeights {
            value_weight: self.config.v,
            cost_weight: self.queue.backlog().max(self.config.min_cost_weight),
        }
    }

    /// Feeds back this round's realized expenditure, advancing the queue.
    ///
    /// # Panics
    ///
    /// Panics if `spend` is negative or non-finite.
    pub fn observe_spend(&mut self, spend: f64) {
        self.queue.update(spend, self.config.budget_per_round);
    }

    /// Number of rounds observed.
    pub fn rounds(&self) -> u64 {
        self.queue.updates()
    }

    /// Replaces the virtual queue with one resumed at `backlog` — the
    /// event-sourced server's recovery hook. The control state `Q(t)` is
    /// restored exactly (to the bit); telemetry (update count, peak,
    /// rate averages) restarts, which is deliberate: those are
    /// per-process observations, not part of the mechanism's state.
    ///
    /// # Panics
    ///
    /// Panics if `backlog` is negative or non-finite.
    pub fn restore_backlog(&mut self, backlog: f64) {
        self.queue = VirtualQueue::with_backlog(backlog);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_floor_at_min_cost_weight() {
        let ctl = DriftPlusPenalty::new(DppConfig {
            v: 5.0,
            budget_per_round: 1.0,
            min_cost_weight: 0.5,
        });
        let w = ctl.weights();
        assert_eq!(w.value_weight, 5.0);
        assert_eq!(w.cost_weight, 0.5);
    }

    #[test]
    fn queue_rises_with_overspend_and_weights_follow() {
        let mut ctl = DriftPlusPenalty::new(DppConfig::default());
        ctl.observe_spend(5.0); // budget 1.0 → backlog 4.0
        assert_eq!(ctl.queue_backlog(), 4.0);
        assert_eq!(ctl.weights().cost_weight, 4.0);
        ctl.observe_spend(0.0); // drains by ρ
        assert_eq!(ctl.queue_backlog(), 3.0);
        assert_eq!(ctl.rounds(), 2);
    }

    /// End-to-end sanity of the drift-plus-penalty principle on a toy
    /// continuous problem: each round choose x ∈ [0, 1] maximizing
    /// V·u·x − Q·x (bang-bang: x = 1 iff V·u ≥ Q) where utility rate u
    /// varies; the long-run average spend must approach ρ from below-ish
    /// while total utility beats the naive constant policy.
    #[test]
    fn toy_control_meets_long_term_budget() {
        let rho = 0.4;
        let mut ctl = DriftPlusPenalty::new(DppConfig {
            v: 50.0,
            budget_per_round: rho,
            min_cost_weight: 1e-6,
        });
        let mut total_spend = 0.0;
        let mut total_utility = 0.0;
        let rounds = 20_000;
        for t in 0..rounds {
            // Utility rate cycles: good slots have u = 2, bad slots u = 0.5.
            let u = if t % 5 < 2 { 2.0 } else { 0.5 };
            let w = ctl.weights();
            let x = if w.value_weight * u >= w.cost_weight {
                1.0
            } else {
                0.0
            };
            total_spend += x;
            total_utility += u * x;
            ctl.observe_spend(x);
        }
        let avg_spend = total_spend / rounds as f64;
        // Long-term constraint met (small transient slack allowed).
        assert!(
            avg_spend <= rho + 0.01,
            "average spend {avg_spend} exceeds rho {rho}"
        );
        // The controller should concentrate spending on good slots: utility
        // per unit spend close to 2 (the good slot rate).
        let efficiency = total_utility / total_spend.max(1.0);
        assert!(
            efficiency > 1.8,
            "efficiency {efficiency} too low — not skimming good slots"
        );
    }

    /// The [O(1/V), O(V)] tradeoff: larger V ⇒ higher welfare but larger
    /// peak backlog.
    #[test]
    fn v_controls_welfare_backlog_tradeoff() {
        let run = |v: f64| -> (f64, f64) {
            let rho = 0.3;
            let mut ctl = DriftPlusPenalty::new(DppConfig {
                v,
                budget_per_round: rho,
                min_cost_weight: 1e-6,
            });
            let mut utility = 0.0;
            for t in 0..5_000 {
                let u = 0.5 + ((t * 7919) % 100) as f64 / 50.0; // u in [0.5, 2.5]
                let w = ctl.weights();
                let x = if w.value_weight * u >= w.cost_weight {
                    1.0
                } else {
                    0.0
                };
                utility += u * x;
                ctl.observe_spend(x);
            }
            (utility, ctl.queue().peak())
        };
        let (u_small, peak_small) = run(2.0);
        let (u_large, peak_large) = run(200.0);
        assert!(
            u_large >= u_small,
            "larger V should not lose welfare: {u_small} vs {u_large}"
        );
        assert!(
            peak_large > peak_small,
            "larger V should have larger backlog: {peak_small} vs {peak_large}"
        );
    }

    #[test]
    fn restore_backlog_resumes_the_queue_bitwise() {
        let mut a = DriftPlusPenalty::new(DppConfig::default());
        a.observe_spend(5.0);
        a.observe_spend(1.0 / 3.0);
        let mut b = DriftPlusPenalty::new(DppConfig::default());
        b.restore_backlog(a.queue_backlog());
        assert_eq!(a.queue_backlog().to_bits(), b.queue_backlog().to_bits());
        assert_eq!(a.weights(), b.weights());
        // The restored controller evolves identically from here.
        a.observe_spend(2.0);
        b.observe_spend(2.0);
        assert_eq!(a.queue_backlog().to_bits(), b.queue_backlog().to_bits());
    }

    #[test]
    #[should_panic(expected = "v must be positive")]
    fn rejects_bad_v() {
        let _ = DriftPlusPenalty::new(DppConfig {
            v: 0.0,
            ..DppConfig::default()
        });
    }
}
