//! # lyapunov — long-term online optimization substrate
//!
//! Implements the Lyapunov drift-plus-penalty machinery that converts a
//! *long-term* constraint ("average expenditure per round must not exceed
//! ρ") into a sequence of *per-round* problems weighted by a virtual queue:
//!
//! * [`queue`] — virtual queues `Q(t+1) = max(Q(t) + arrival − service, 0)`
//!   whose stability certifies long-term constraint satisfaction,
//! * [`dpp`] — the drift-plus-penalty controller that produces the
//!   per-round weights `(V, Q(t))` consumed by the auction's winner
//!   determination,
//! * [`analysis`] — time-average trackers, stability detection, and the
//!   `O(1/V)` / `O(V)` theoretical bound calculators quoted in
//!   EXPERIMENTS.md.
//!
//! # Example
//!
//! ```
//! use lyapunov::dpp::{DriftPlusPenalty, DppConfig};
//!
//! let mut ctl = DriftPlusPenalty::new(DppConfig {
//!     v: 50.0,
//!     budget_per_round: 2.0,
//!     min_cost_weight: 1.0,
//! });
//! // Round: score candidates with the controller's weights...
//! let w = ctl.weights();
//! assert_eq!(w.value_weight, 50.0);
//! // ...spend money, then feed the expenditure back:
//! ctl.observe_spend(3.5);
//! assert!(ctl.queue_backlog() > 0.0);
//! ```

pub mod analysis;
pub mod dpp;
pub mod queue;

pub use analysis::{backlog_bound, welfare_gap_bound, TimeAverage};
pub use dpp::{DppConfig, DriftPlusPenalty, RoundWeights};
pub use queue::VirtualQueue;
