//! Virtual queues for long-term constraints.

/// A virtual queue tracking accumulated violation of a long-term constraint.
///
/// The update is `Q ← max(Q + arrival − service, 0)`. If the time-average of
/// `arrival` is to be kept below the time-average of `service`, then *mean
/// rate stability* of the queue (`Q(t)/t → 0`) is equivalent to the
/// constraint being satisfied in the limit.
///
/// # Example
///
/// ```
/// use lyapunov::queue::VirtualQueue;
/// let mut q = VirtualQueue::new();
/// q.update(3.0, 2.0); // spent 3, budget rate 2 → backlog 1
/// q.update(1.0, 2.0); // under-spend drains the queue
/// assert_eq!(q.backlog(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VirtualQueue {
    backlog: f64,
    updates: u64,
    peak: f64,
    total_arrival: f64,
    total_service: f64,
}

impl VirtualQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a queue with an initial backlog.
    ///
    /// # Panics
    ///
    /// Panics if `backlog` is negative or non-finite.
    pub fn with_backlog(backlog: f64) -> Self {
        assert!(
            backlog.is_finite() && backlog >= 0.0,
            "backlog must be finite and non-negative"
        );
        VirtualQueue {
            backlog,
            ..Self::default()
        }
    }

    /// Current backlog `Q(t)`.
    pub fn backlog(&self) -> f64 {
        self.backlog
    }

    /// Number of updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Largest backlog ever observed.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Applies one slot update and returns the new backlog.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative or non-finite.
    pub fn update(&mut self, arrival: f64, service: f64) -> f64 {
        assert!(
            arrival.is_finite() && arrival >= 0.0,
            "arrival must be finite and non-negative"
        );
        assert!(
            service.is_finite() && service >= 0.0,
            "service must be finite and non-negative"
        );
        self.backlog = (self.backlog + arrival - service).max(0.0);
        self.updates += 1;
        self.peak = self.peak.max(self.backlog);
        self.total_arrival += arrival;
        self.total_service += service;
        self.backlog
    }

    /// Time-average backlog growth `Q(t)/t`; tends to 0 iff the queue is
    /// mean-rate stable. Returns 0 before any update.
    pub fn rate(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.backlog / self.updates as f64
        }
    }

    /// Average arrival rate observed so far.
    pub fn mean_arrival(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.total_arrival / self.updates as f64
        }
    }

    /// Average service rate observed so far.
    pub fn mean_service(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.total_service / self.updates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn update_dynamics() {
        let mut q = VirtualQueue::new();
        assert_eq!(q.update(5.0, 2.0), 3.0);
        assert_eq!(q.update(0.0, 1.0), 2.0);
        assert_eq!(q.update(0.0, 10.0), 0.0); // clamps at zero
        assert_eq!(q.updates(), 3);
        assert_eq!(q.peak(), 3.0);
    }

    #[test]
    fn with_backlog_starts_nonzero() {
        let q = VirtualQueue::with_backlog(4.0);
        assert_eq!(q.backlog(), 4.0);
    }

    #[test]
    fn rates_track_means() {
        let mut q = VirtualQueue::new();
        q.update(4.0, 2.0);
        q.update(0.0, 2.0);
        assert_eq!(q.mean_arrival(), 2.0);
        assert_eq!(q.mean_service(), 2.0);
        assert_eq!(q.rate(), 0.0);
    }

    #[test]
    fn rate_zero_when_untouched() {
        let q = VirtualQueue::new();
        assert_eq!(q.rate(), 0.0);
        assert_eq!(q.mean_arrival(), 0.0);
        assert_eq!(q.mean_service(), 0.0);
    }

    #[test]
    fn stable_when_arrivals_below_service() {
        let mut q = VirtualQueue::new();
        for t in 0..10_000 {
            // Arrivals average 1.5, service constant 2.0.
            let arrival = if t % 2 == 0 { 3.0 } else { 0.0 };
            q.update(arrival, 2.0);
        }
        assert!(q.rate() < 1e-3, "rate {} not near zero", q.rate());
        assert!(q.backlog() <= 3.0);
    }

    #[test]
    fn unstable_when_arrivals_exceed_service() {
        let mut q = VirtualQueue::new();
        for _ in 0..10_000 {
            q.update(3.0, 2.0);
        }
        assert!((q.rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "arrival must be finite")]
    fn rejects_negative_arrival() {
        let mut q = VirtualQueue::new();
        q.update(-1.0, 0.0);
    }

    /// Property: the backlog never goes negative and the peak dominates it
    /// (seeded random update sequences).
    #[test]
    fn backlog_never_negative() {
        let mut rng = StdRng::seed_from_u64(0xBAC1);
        for _ in 0..200 {
            let mut q = VirtualQueue::new();
            for _ in 0..rng.random_range(1..200usize) {
                q.update(rng.random_range(0.0..10.0), rng.random_range(0.0..10.0));
                assert!(q.backlog() >= 0.0);
                assert!(q.peak() >= q.backlog());
            }
        }
    }

    /// Property: queue bound `Q(t) ≥ Σ(arrival − service)` for any prefix
    /// (seeded random update sequences).
    #[test]
    fn backlog_dominates_net_input() {
        let mut rng = StdRng::seed_from_u64(0xBAC2);
        for _ in 0..200 {
            let mut q = VirtualQueue::new();
            let mut net = 0.0;
            for _ in 0..rng.random_range(1..100usize) {
                let (a, s) = (rng.random_range(0.0..5.0), rng.random_range(0.0..5.0));
                q.update(a, s);
                net += a - s;
                assert!(q.backlog() >= net - 1e-9);
            }
        }
    }
}
