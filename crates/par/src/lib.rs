//! # par — deterministic data-parallel execution on scoped std threads
//!
//! A zero-dependency worker pool for the embarrassingly parallel hot paths
//! of this workspace: the `n` leave-one-out WDP solves behind VCG payments,
//! per-client local training inside a federated round, and independent
//! seeds/sweep points in the experiment binaries.
//!
//! **Determinism contract.** Every combinator returns results in *input
//! index order*, regardless of which worker computed which item or in what
//! order workers finished. As long as the per-item closure is a pure
//! function of its input (true everywhere in this workspace: all randomness
//! is derived from per-item seeds), the output of a parallel run is
//! *bit-identical* to the serial run — floats included, because each item's
//! arithmetic happens entirely within one task and any cross-item reduction
//! is performed by the caller over the index-ordered `Vec`. The test suite
//! in `tests/determinism.rs` (umbrella crate) locks this down for each
//! wired path.
//!
//! **Worker count.** [`Pool::auto`] uses the `LOVM_THREADS` environment
//! variable when set (`LOVM_THREADS=1` forces serial execution), otherwise
//! [`std::thread::available_parallelism`]. Work is distributed by an atomic
//! index counter, so uneven per-item costs (e.g. leave-one-out instances of
//! different sizes) balance automatically.
//!
//! ```
//! let squares = par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! // Explicit pools pin the worker count independent of the environment:
//! let serial = par::Pool::serial().map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(serial, squares);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Hard ceiling on the worker count: beyond this, per-call thread spawn
/// overhead dwarfs any conceivable gain for this workspace's task sizes.
pub const MAX_THREADS: usize = 128;

/// Name of the environment variable overriding the worker count.
pub const THREADS_ENV: &str = "LOVM_THREADS";

/// Worker count from the environment (`LOVM_THREADS`) when set to an
/// integer — `LOVM_THREADS=0` is honored as "serial", not ignored —
/// otherwise the machine's available parallelism. Always in
/// `1..=MAX_THREADS`.
///
/// # Panics
///
/// Panics when the variable is set to anything that is not an unsigned
/// integer (`abc`, `2.5`, an empty string): a typo in a determinism sweep
/// must fail loudly at startup, not silently fall back to machine
/// parallelism — the same contract `LOVM_SHARDS` and the ingest variables
/// already enforce.
pub fn configured_threads() -> usize {
    parse_env_value(std::env::var(THREADS_ENV).ok().as_deref())
}

/// The parse behind [`configured_threads`], split out so the valid and
/// panicking cases are unit-testable without mutating the process
/// environment (a data race against concurrent `getenv`).
fn parse_env_value(raw: Option<&str>) -> usize {
    let from_env = raw.map(|raw| match raw.trim().parse::<usize>() {
        Ok(n) => n.max(1),
        Err(_) => panic!(
            "{THREADS_ENV} must be an unsigned worker count, got `{raw}` \
             (unset the variable to use the machine's parallelism)"
        ),
    });
    from_env
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(MAX_THREADS)
}

/// A worker-count policy for the data-parallel combinators.
///
/// A `Pool` is a plain value (no OS resources): threads are scoped to each
/// call and joined before it returns, so there is no shutdown to manage and
/// panics from workers propagate to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::auto()
    }
}

impl Pool {
    /// Pool sized by [`configured_threads`] (environment override or
    /// detected parallelism).
    pub fn auto() -> Self {
        Pool {
            threads: configured_threads(),
        }
    }

    /// Single-worker pool: runs everything inline on the caller's thread.
    pub fn serial() -> Self {
        Pool { threads: 1 }
    }

    /// Pool with an explicit worker count (clamped to `1..=MAX_THREADS`).
    pub fn with_threads(threads: usize) -> Self {
        Pool {
            threads: threads.clamp(1, MAX_THREADS),
        }
    }

    /// The worker count this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(n-1)` across the workers and returns the
    /// results in index order.
    ///
    /// With one worker (or fewer than two items) this degenerates to a
    /// plain serial loop with no thread spawned at all.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from `f` on the calling thread.
    pub fn run<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        // Each worker pulls the next unclaimed index from a shared counter
        // and keeps (index, result) pairs locally; the caller then scatters
        // them into their slots. No locks, no result-order dependence on
        // scheduling.
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, U)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for part in parts {
            for (i, v) in part {
                debug_assert!(slots[i].is_none(), "index {i} computed twice");
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index in 0..n is claimed exactly once"))
            .collect()
    }

    /// [`Pool::run`] with per-worker scratch state, writing results into a
    /// caller-recycled output vector (cleared first, filled in index
    /// order).
    ///
    /// Serial runs (one worker or fewer than two items) borrow the
    /// caller's `scratch` directly — a caller that keeps `scratch` and
    /// `out` alive across calls reaches a zero-allocation steady state
    /// once their capacities have warmed up. Parallel runs give each
    /// worker its own state built by `init` (created and dropped on the
    /// worker thread, so `S` needs no `Send`); `scratch` is untouched.
    ///
    /// This is what the solver-arena hot paths (`auction::wdp`,
    /// `auction::pivots`) run on: per-worker arenas mean `LOVM_THREADS>1`
    /// never shares a buffer, and by the determinism contract the scratch
    /// (and worker count) cannot change any output bit — only `f`'s return
    /// values land in `out`, in index order.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from `f` on the calling thread.
    pub fn run_with<S, U, I, F>(&self, n: usize, scratch: &mut S, init: I, out: &mut Vec<U>, f: F)
    where
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> U + Sync,
    {
        out.clear();
        let workers = self.threads.min(n);
        if workers <= 1 {
            out.reserve(n);
            for i in 0..n {
                let v = f(scratch, i);
                out.push(v);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, U)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut state = init();
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(&mut state, i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for part in parts {
            for (i, v) in part {
                debug_assert!(slots[i].is_none(), "index {i} computed twice");
                slots[i] = Some(v);
            }
        }
        out.extend(
            slots
                .into_iter()
                .map(|s| s.expect("every index in 0..n is claimed exactly once")),
        );
    }

    /// Maps `f` over `items`, returning results in item order.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.run(items.len(), |i| f(&items[i]))
    }

    /// Maps `f(index, &item)` over `items`, returning results in item order.
    pub fn map_indexed<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }

    /// Applies `f` to consecutive chunks of at most `chunk_size` items,
    /// returning one result per chunk in chunk order. Useful when per-item
    /// work is too small to amortize task dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn chunks<T, U, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&[T]) -> U + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let n_chunks = items.len().div_ceil(chunk_size);
        self.run(n_chunks, |c| {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(items.len());
            f(&items[lo..hi])
        })
    }

    /// Splits this pool's workers between an outer fan-out of `tasks` and
    /// the nested work each task performs, returning `(outer, inner)` with
    /// `outer.threads() · inner.threads() ≤ self.threads()`. This is what
    /// makes two-level fan-outs (e.g. shards × per-shard pivot merges)
    /// safe: the worker count is budgeted once at the top instead of
    /// multiplying at every level.
    pub fn split(&self, tasks: usize) -> (Pool, Pool) {
        let outer = self.threads.min(tasks.max(1));
        let inner = (self.threads / outer).max(1);
        (Pool::with_threads(outer), Pool::with_threads(inner))
    }

    /// Maps `f(&item, inner_pool)` over `items`, fanning the items across
    /// this pool's workers while handing each task an inner pool sized so
    /// the two levels together never exceed this pool's worker budget.
    /// Results come back in item order; by the determinism contract the
    /// inner pool's size cannot change any output bits.
    pub fn map_nested<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T, Pool) -> U + Sync,
    {
        let (outer, inner) = self.split(items.len());
        outer.run(items.len(), |i| f(&items[i], inner))
    }

    /// [`Pool::chunks`] with a nested-safe inner pool passed to each chunk
    /// closure (see [`Pool::map_nested`]).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn chunks_nested<T, U, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&[T], Pool) -> U + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let n_chunks = items.len().div_ceil(chunk_size);
        let (outer, inner) = self.split(n_chunks);
        outer.run(n_chunks, |c| {
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(items.len());
            f(&items[lo..hi], inner)
        })
    }
}

/// [`Pool::map`] on the [`Pool::auto`] pool.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    Pool::auto().map(items, f)
}

/// [`Pool::map_indexed`] on the [`Pool::auto`] pool.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    Pool::auto().map_indexed(items, f)
}

/// [`Pool::chunks`] on the [`Pool::auto`] pool.
pub fn par_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    Pool::auto().chunks(items, chunk_size, f)
}

/// [`Pool::chunks_nested`] on the [`Pool::auto`] pool: each chunk closure
/// receives an inner pool sized so outer × inner stays within the
/// configured worker budget.
pub fn par_chunks_nested<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T], Pool) -> U + Sync,
{
    Pool::auto().chunks_nested(items, chunk_size, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 4, 7] {
            let out = Pool::with_threads(threads).map(&items, |&x| x * 3 + 1);
            let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_indexed_sees_correct_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let out = Pool::with_threads(3).map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(Pool::with_threads(4).map(&empty, |&x| x).is_empty());
        assert_eq!(Pool::with_threads(4).map(&[9u32], |&x| x + 1), vec![10]);
    }

    #[test]
    fn serial_pool_never_spawns_and_matches_parallel() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let f = |&x: &f64| (x.sin() * 1e9).mul_add(x, x.sqrt());
        let serial = Pool::serial().map(&items, f);
        let parallel = Pool::with_threads(4).map(&items, f);
        // Bit-identical, not approximately equal.
        assert_eq!(
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            parallel.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let items: Vec<usize> = (0..103).collect();
        let sums = Pool::with_threads(4).chunks(&items, 10, |c| c.iter().sum::<usize>());
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        // First chunk is exactly 0..10 regardless of scheduling.
        assert_eq!(sums[0], (0..10).sum::<usize>());
        assert_eq!(sums[10], (100..103).sum::<usize>());
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn chunks_rejects_zero_size() {
        let _ = Pool::serial().chunks(&[1, 2, 3], 0, |c| c.len());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::with_threads(2).run(8, |i| {
                if i == 5 {
                    panic!("boom at 5");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    /// Exercises the `configured_threads` parse — valid and panicking
    /// cases — through the extracted value parser: mutating the real
    /// environment from a test races concurrent `getenv` callers on other
    /// test threads (UB on glibc), so the env read stays untested-thin and
    /// the decision logic is covered here (same pattern as
    /// `auction::shard`).
    #[test]
    fn threads_env_parses_or_panics() {
        assert!(parse_env_value(None) >= 1);
        assert_eq!(parse_env_value(Some("1")), 1);
        assert_eq!(parse_env_value(Some(" 4 ")), 4);
        // 0 is honored as "serial", and huge values clamp to the ceiling.
        assert_eq!(parse_env_value(Some("0")), 1);
        assert_eq!(parse_env_value(Some("100000")), MAX_THREADS);
        // Malformed values must panic loudly, not fall back silently to
        // machine parallelism (which would void a determinism sweep).
        for bad in ["abc", "", "-3", "2.5", "4 workers"] {
            let result = std::panic::catch_unwind(|| parse_env_value(Some(bad)));
            let err = result.expect_err(&format!("`{bad}` must panic"));
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("LOVM_THREADS must be an unsigned worker count"),
                "unhelpful panic message for `{bad}`: {msg}"
            );
        }
        // The thin env wrapper itself must accept whatever ci.sh exported
        // for this very test process (always a valid setting there).
        let _ = configured_threads();
    }

    #[test]
    fn with_threads_clamps() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
        assert_eq!(Pool::with_threads(usize::MAX).threads(), MAX_THREADS);
        assert_eq!(Pool::serial().threads(), 1);
        assert!(Pool::auto().threads() >= 1);
        assert!(Pool::auto().threads() <= MAX_THREADS);
    }

    #[test]
    fn uneven_workloads_still_ordered() {
        // Item i busy-loops proportionally to (i % 7), so completion order
        // differs wildly from index order.
        let items: Vec<u64> = (0..200).collect();
        let out = Pool::with_threads(4).map(&items, |&i| {
            let mut acc = i;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx as u64, *i);
        }
    }

    #[test]
    fn run_counts_each_index_once() {
        let out = Pool::with_threads(8).run(10_000, |i| i);
        let expect: Vec<usize> = (0..10_000).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn run_with_matches_run_and_reuses_output() {
        let mut out = Vec::new();
        for threads in [1usize, 2, 4] {
            let pool = Pool::with_threads(threads);
            let mut scratch = vec![0u64; 8];
            pool.run_with(
                100,
                &mut scratch,
                || vec![0u64; 8],
                &mut out,
                |state, i| {
                    // Scratch is genuinely mutable per worker.
                    state[i % 8] = state[i % 8].wrapping_add(i as u64);
                    (i as u64) * 3 + 1
                },
            );
            let expect: Vec<u64> = (0..100).map(|i| i * 3 + 1).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
        // Serial path mutated the caller's scratch in place.
        let pool = Pool::serial();
        let mut scratch = 0u64;
        pool.run_with(
            10,
            &mut scratch,
            || 0u64,
            &mut out,
            |s, i| {
                *s += i as u64;
                i as u64
            },
        );
        assert_eq!(scratch, (0..10).sum::<u64>());
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn run_with_empty_and_uneven_inputs() {
        let mut out: Vec<usize> = vec![1, 2, 3];
        Pool::with_threads(4).run_with(0, &mut (), || (), &mut out, |_, i| i);
        assert!(out.is_empty(), "out must be cleared even for n = 0");
        // Uneven per-item work: completion order differs from index order,
        // yet the scatter restores index order exactly.
        Pool::with_threads(4).run_with(
            200,
            &mut (),
            || (),
            &mut out,
            |_, i| {
                let mut acc = i as u64;
                for _ in 0..(i % 7) * 1000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                let _ = acc;
                i
            },
        );
        assert_eq!(out, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn run_with_worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let mut out = Vec::new();
            Pool::with_threads(2).run_with(
                8,
                &mut (),
                || (),
                &mut out,
                |_, i| {
                    if i == 5 {
                        panic!("boom at 5");
                    }
                    i
                },
            );
        });
        assert!(result.is_err());
    }

    #[test]
    fn split_budgets_workers_across_levels() {
        let (outer, inner) = Pool::with_threads(8).split(4);
        assert_eq!(outer.threads(), 4);
        assert_eq!(inner.threads(), 2);
        assert!(outer.threads() * inner.threads() <= 8);
        // More tasks than workers: all workers go to the outer level.
        let (outer, inner) = Pool::with_threads(4).split(64);
        assert_eq!((outer.threads(), inner.threads()), (4, 1));
        // Serial pool stays serial at both levels.
        let (outer, inner) = Pool::serial().split(16);
        assert_eq!((outer.threads(), inner.threads()), (1, 1));
        // Degenerate task counts never panic or zero out.
        let (outer, inner) = Pool::with_threads(6).split(0);
        assert!(outer.threads() >= 1 && inner.threads() >= 1);
    }

    #[test]
    fn map_nested_matches_flat_map() {
        let items: Vec<u64> = (0..300).collect();
        // Reference: x² + (0 + 1 + 2) computed serially.
        let flat = Pool::serial().map(&items, |&x| x * x + 3);
        for threads in [1, 2, 8] {
            let nested = Pool::with_threads(threads).map_nested(&items, |&x, inner| {
                // The inner pool must be usable for a second fan-out level.
                x * x + inner.run(3, |j| j as u64).iter().sum::<u64>()
            });
            assert_eq!(nested, flat, "threads={threads}");
        }
    }

    #[test]
    fn split_on_a_one_worker_pool_stays_serial() {
        // Every split of a serial pool must be (1, 1): nesting can never
        // manufacture parallelism the budget does not hold.
        for tasks in [0usize, 1, 3, 100] {
            let (outer, inner) = Pool::with_threads(1).split(tasks);
            assert_eq!((outer.threads(), inner.threads()), (1, 1), "tasks={tasks}");
        }
    }

    #[test]
    fn split_with_more_tasks_than_budget_caps_outer() {
        // Requesting a wider outer fan-out than there are workers pins the
        // outer level at the full budget and the inner level at 1 — the
        // product never exceeds the budget.
        for (threads, tasks) in [(2usize, 1000usize), (5, 7), (8, 9)] {
            let (outer, inner) = Pool::with_threads(threads).split(tasks);
            assert_eq!(outer.threads(), threads.min(tasks));
            assert!(
                outer.threads() * inner.threads() <= threads,
                "threads={threads} tasks={tasks}: {} x {}",
                outer.threads(),
                inner.threads()
            );
        }
    }

    #[test]
    fn map_nested_on_empty_input_returns_empty() {
        let empty: Vec<u32> = Vec::new();
        for threads in [1usize, 4] {
            let out = Pool::with_threads(threads)
                .map_nested(&empty, |&x, inner| x + inner.threads() as u32);
            assert!(out.is_empty(), "threads={threads}");
        }
        // chunks_nested on empty input likewise produces no chunks.
        let sums = Pool::with_threads(4).chunks_nested(&empty, 10, |c, _| c.len());
        assert!(sums.is_empty());
    }

    #[test]
    fn map_nested_single_worker_single_item() {
        // Degenerate corner: 1 worker, 1 item — inner pool must still be
        // usable and the result identical to a plain call.
        let out = Pool::with_threads(1).map_nested(&[21u64], |&x, inner| {
            assert_eq!(inner.threads(), 1);
            x * 2 + inner.run(0, |_| 0u64).len() as u64
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn chunks_nested_covers_everything_in_order() {
        let items: Vec<usize> = (0..97).collect();
        let sums = Pool::with_threads(4).chunks_nested(&items, 10, |c, inner| {
            inner.map(c, |&x| x).iter().sum::<usize>()
        });
        assert_eq!(sums.len(), 10);
        assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        assert_eq!(sums[0], (0..10).sum::<usize>());
        assert_eq!(sums[9], (90..97).sum::<usize>());
    }
}
