//! Property suite for the log-bucket histogram: quantile estimates stay
//! inside the documented relative-error bound against exact sorted-slice
//! percentiles, and per-shard merging is exact and associative.

use telemetry::{HistSnapshot, Histogram, SUB_BUCKETS};

/// Deterministic 64-bit LCG (Knuth constants) — the same generator the
/// zero-alloc suite uses; no external dependencies.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Exact nearest-rank percentile over a sorted slice: the reference the
/// histogram estimate is held to.
fn exact_nearest_rank(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    if p == 0.0 {
        return sorted[0];
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Documented contract: estimate q̂ of the nearest-rank sample q obeys
/// `q ≤ q̂ ≤ q + q / SUB_BUCKETS` (and is exact below SUB_BUCKETS).
fn assert_within_bound(est: u64, exact: u64, p: f64, dist: &str) {
    assert!(
        est >= exact,
        "{dist} p{p}: estimate {est} below exact {exact}"
    );
    let slack = exact / SUB_BUCKETS as u64;
    assert!(
        est <= exact + slack,
        "{dist} p{p}: estimate {est} exceeds exact {exact} + bound {slack}"
    );
}

fn check_distribution(name: &str, values: &[u64]) {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    let snap = h.snapshot();
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    assert_eq!(snap.count, values.len() as u64);
    assert_eq!(snap.max(), *sorted.last().unwrap(), "max must be exact");
    assert_eq!(snap.min(), sorted[0], "min must be exact");
    for p in [50.0, 95.0, 99.0] {
        assert_within_bound(snap.quantile(p), exact_nearest_rank(&sorted, p), p, name);
    }
    assert_eq!(snap.quantile(100.0), *sorted.last().unwrap());
}

#[test]
fn quantiles_match_exact_percentiles_within_bound() {
    let mut rng = Lcg(0x0B5E_4A11_7E1E_0001);
    // Uniform ns-scale latencies.
    let uniform: Vec<u64> = (0..5000)
        .map(|_| (rng.unit() * 2_000_000.0) as u64)
        .collect();
    check_distribution("uniform", &uniform);

    // Heavy-tailed: exponentiated uniform spans ~6 orders of magnitude,
    // the shape real fsync/solve latencies take.
    let heavy: Vec<u64> = (0..5000)
        .map(|_| (64.0 * (1.0f64 + rng.unit() * 9999.0).powf(1.5)) as u64)
        .collect();
    check_distribution("heavy-tail", &heavy);

    // Bimodal: fast path plus rare stalls.
    let bimodal: Vec<u64> = (0..5000)
        .map(|_| {
            if rng.unit() < 0.95 {
                500 + (rng.unit() * 300.0) as u64
            } else {
                2_000_000 + (rng.unit() * 8_000_000.0) as u64
            }
        })
        .collect();
    check_distribution("bimodal", &bimodal);

    // Tiny inputs: single element and two elements are exact.
    check_distribution("single", &[777]);
    check_distribution("pair", &[3, 900_000]);
    // All-equal degenerate pile.
    check_distribution("constant", &vec![42_000u64; 257]);
}

#[test]
fn merging_shard_histograms_equals_recording_into_one() {
    let mut rng = Lcg(0x0B5E_4A11_7E1E_0002);
    let values: Vec<u64> = (0..4096)
        .map(|_| (rng.unit() * 50_000_000.0) as u64)
        .collect();

    // One histogram sees everything.
    let whole = Histogram::new();
    for &v in &values {
        whole.record(v);
    }

    // Eight "shards" each see a round-robin slice.
    let shards: Vec<Histogram> = (0..8).map(|_| Histogram::new()).collect();
    for (i, &v) in values.iter().enumerate() {
        shards[i % 8].record(v);
    }

    // Left fold.
    let mut left = HistSnapshot::empty();
    for s in &shards {
        left.merge(&s.snapshot());
    }
    // A different association: pairwise tree merge.
    let mut layer: Vec<HistSnapshot> = shards.iter().map(|s| s.snapshot()).collect();
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            let mut m = pair[0].clone();
            if let Some(b) = pair.get(1) {
                m.merge(b);
            }
            next.push(m);
        }
        layer = next;
    }
    let tree = layer.pop().unwrap();

    let reference = whole.snapshot();
    assert_eq!(left, reference, "left-fold merge diverged from direct");
    assert_eq!(tree, reference, "tree merge diverged from direct");
    for p in [50.0, 95.0, 99.0, 100.0] {
        assert_eq!(left.quantile(p), reference.quantile(p));
    }
}
