//! Runtime observability for the LOVM market: named counters, gauges,
//! and log-bucket latency histograms behind one process-global registry,
//! plus a JSON-lines sink gated on `LOVM_TELEMETRY`.
//!
//! Design constraints, in order:
//!
//! 1. **Pure observer.** Nothing here feeds back into the mechanism:
//!    no payment, digest, or journal byte depends on telemetry state.
//!    The golden and determinism suites run with `LOVM_TELEMETRY` both
//!    unset and set to prove it.
//! 2. **Off by default, near-zero when off.** [`enabled`] is one relaxed
//!    atomic load; a disabled [`hist::Span`] never reads the clock.
//! 3. **Allocation-free when on.** Metric handles are registered once
//!    (leaked, bounded by the fixed metric-name set) and cached in
//!    `OnceLock` statics at each call site; recording is relaxed atomics
//!    into preallocated buckets. The counting-allocator suite pins the
//!    solver path at zero steady-state allocations with telemetry
//!    enabled.
//!
//! `LOVM_TELEMETRY` grammar: unset → disabled; `stderr` → record and
//! emit JSON lines to stderr; any other non-empty value → record and
//! append JSON lines to that file path. Empty values panic loudly, like
//! every other `LOVM_*` knob in this workspace.

pub mod hist;

pub use hist::{HistSnapshot, Histogram, Span, BUCKETS, SUB_BUCKETS};

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, Once};

/// A monotonically increasing named counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`. No-op while telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge holding one `f64` (last-write or running-max).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge. No-op while telemetry is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger (running high-water mark).
    /// No-op while telemetry is disabled.
    #[inline]
    pub fn set_max(&self, v: f64) {
        if !enabled() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

// The global registry. Metrics are leaked on first registration — the
// metric-name set is a fixed, small vocabulary (a few dozen entries), so
// the leak is bounded for the life of the process. Linear scan on
// register; call sites cache the returned `&'static` in a `OnceLock`.
static COUNTERS: Mutex<Vec<(&'static str, &'static Counter)>> = Mutex::new(Vec::new());
static GAUGES: Mutex<Vec<(&'static str, &'static Gauge)>> = Mutex::new(Vec::new());
static HISTS: Mutex<Vec<(&'static str, &'static Histogram)>> = Mutex::new(Vec::new());

fn register<T>(
    table: &Mutex<Vec<(&'static str, &'static T)>>,
    name: &'static str,
    fresh: impl FnOnce() -> T,
) -> &'static T {
    let mut table = table.lock().expect("telemetry registry poisoned");
    if let Some((_, m)) = table.iter().find(|(n, _)| *n == name) {
        return m;
    }
    let leaked: &'static T = Box::leak(Box::new(fresh()));
    table.push((name, leaked));
    leaked
}

/// The counter registered under `name` (registering it on first use).
pub fn counter(name: &'static str) -> &'static Counter {
    register(&COUNTERS, name, Counter::default)
}

/// The gauge registered under `name` (registering it on first use).
pub fn gauge(name: &'static str) -> &'static Gauge {
    register(&GAUGES, name, Gauge::default)
}

/// The histogram registered under `name` (registering it on first use).
/// All [`hist::BUCKETS`] slots are preallocated here, so recording never
/// allocates.
pub fn histogram(name: &'static str) -> &'static Histogram {
    register(&HISTS, name, Histogram::new)
}

/// Counter handle cached in a per-call-site static: registry lock is
/// taken once, steady state is one atomic load.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static H: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *H.get_or_init(|| $crate::counter($name))
    }};
}

/// Gauge handle cached in a per-call-site static.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static H: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *H.get_or_init(|| $crate::gauge($name))
    }};
}

/// Histogram handle cached in a per-call-site static. Combine with
/// [`Histogram::span`] for `span!`-style RAII timing:
/// `let _t = telemetry::hist!("solve.shard_ns").span();`
#[macro_export]
macro_rules! hist {
    ($name:literal) => {{
        static H: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *H.get_or_init(|| $crate::histogram($name))
    }};
}

/// Point-in-time copy of every registered metric, name-sorted so the
/// serialized form is deterministic.
#[derive(Debug, Clone)]
pub struct RecorderSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` for every histogram.
    pub hists: Vec<(String, HistSnapshot)>,
}

/// Snapshots the whole registry.
pub fn snapshot() -> RecorderSnapshot {
    let mut counters: Vec<(String, u64)> = COUNTERS
        .lock()
        .expect("telemetry registry poisoned")
        .iter()
        .map(|(n, c)| (n.to_string(), c.get()))
        .collect();
    let mut gauges: Vec<(String, f64)> = GAUGES
        .lock()
        .expect("telemetry registry poisoned")
        .iter()
        .map(|(n, g)| (n.to_string(), g.get()))
        .collect();
    let mut hists: Vec<(String, HistSnapshot)> = HISTS
        .lock()
        .expect("telemetry registry poisoned")
        .iter()
        .map(|(n, h)| (n.to_string(), h.snapshot()))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    RecorderSnapshot {
        counters,
        gauges,
        hists,
    }
}

// Enabled state: 0 = uninitialized, 1 = on, 2 = off.
static STATE: AtomicU8 = AtomicU8::new(0);
static ENV_INIT: Once = Once::new();
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

#[derive(Debug)]
enum Sink {
    Stderr,
    File(File),
}

/// Where emitted JSON lines go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkSpec {
    /// Record metrics but emit nothing (benches, in-process tests).
    None,
    /// Emit to stderr.
    Stderr,
    /// Append to this file path.
    Path(String),
}

/// Parsed `LOVM_TELEMETRY` configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Whether recording (and span clocks) are active.
    pub enabled: bool,
    /// Where per-round JSON lines go.
    pub sink: SinkSpec,
}

impl Config {
    /// Parses the value of `LOVM_TELEMETRY`. `None` disables telemetry;
    /// `"stderr"` enables it with the stderr sink; any other non-empty
    /// value enables it with a file-append sink at that path.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set to an empty string.
    pub fn from_env_value(value: Option<&str>) -> Config {
        match value {
            None => Config {
                enabled: false,
                sink: SinkSpec::None,
            },
            Some("") => panic!("LOVM_TELEMETRY must be a file path or `stderr`, got empty string"),
            Some("stderr") => Config {
                enabled: true,
                sink: SinkSpec::Stderr,
            },
            Some(path) => Config {
                enabled: true,
                sink: SinkSpec::Path(path.to_string()),
            },
        }
    }
}

fn apply(config: &Config) {
    let sink = match &config.sink {
        SinkSpec::None => None,
        SinkSpec::Stderr => Some(Sink::Stderr),
        SinkSpec::Path(path) => Some(Sink::File(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("LOVM_TELEMETRY: cannot open `{path}`: {e}")),
        )),
    };
    *SINK.lock().expect("telemetry sink poisoned") = sink;
    STATE.store(if config.enabled { 1 } else { 2 }, Ordering::Release);
}

/// Whether telemetry is recording. First call reads `LOVM_TELEMETRY`
/// and opens the sink; afterwards this is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            ENV_INIT.call_once(|| {
                // Respect a force_configure that raced ahead of us.
                if STATE.load(Ordering::Relaxed) == 0 {
                    let value = std::env::var("LOVM_TELEMETRY").ok();
                    apply(&Config::from_env_value(value.as_deref()));
                }
            });
            STATE.load(Ordering::Relaxed) == 1
        }
    }
}

/// Overrides the env-derived configuration. For benches and tests that
/// need to flip telemetry within one process (the env snapshot is read
/// once); production code paths never call this.
pub fn force_configure(on: bool, sink: SinkSpec) {
    apply(&Config { enabled: on, sink });
}

/// Whether a sink is installed (i.e. emitted lines go somewhere).
pub fn sink_active() -> bool {
    enabled() && SINK.lock().expect("telemetry sink poisoned").is_some()
}

/// Writes one line to the sink (newline appended, single `write_all`).
/// No-op when disabled or sink-less; panics if the sink write fails —
/// a telemetry file that silently stops growing would be worse.
pub fn emit_line(line: &str) {
    if !enabled() {
        return;
    }
    let mut guard = SINK.lock().expect("telemetry sink poisoned");
    let Some(sink) = guard.as_mut() else {
        return;
    };
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    match sink {
        Sink::Stderr => {
            let mut err = std::io::stderr().lock();
            err.write_all(buf.as_bytes())
                .expect("LOVM_TELEMETRY: stderr write failed");
        }
        Sink::File(f) => f
            .write_all(buf.as_bytes())
            .expect("LOVM_TELEMETRY: sink write failed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_grammar_disabled_when_unset() {
        let c = Config::from_env_value(None);
        assert!(!c.enabled);
        assert_eq!(c.sink, SinkSpec::None);
    }

    #[test]
    fn env_grammar_stderr_and_path() {
        let c = Config::from_env_value(Some("stderr"));
        assert!(c.enabled);
        assert_eq!(c.sink, SinkSpec::Stderr);
        let c = Config::from_env_value(Some("/tmp/t.jsonl"));
        assert!(c.enabled);
        assert_eq!(c.sink, SinkSpec::Path("/tmp/t.jsonl".to_string()));
    }

    #[test]
    #[should_panic(expected = "LOVM_TELEMETRY must be a file path or `stderr`")]
    fn env_grammar_rejects_empty() {
        Config::from_env_value(Some(""));
    }

    #[test]
    fn registry_deduplicates_by_name() {
        let a = counter("test.registry.dedup");
        let b = counter("test.registry.dedup");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn counters_and_gauges_record_when_enabled() {
        force_configure(true, SinkSpec::None);
        let c = counter("test.lib.counter");
        let before = c.get();
        c.add(3);
        assert_eq!(c.get(), before + 3);
        let g = gauge("test.lib.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5, "set_max must not lower the gauge");
        g.set_max(7.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        force_configure(true, SinkSpec::None);
        counter("test.snap.b");
        counter("test.snap.a");
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
