//! Log-bucketed latency histogram (HDR-style, power-of-2 sub-bucketed).
//!
//! Values are non-negative integers — nanoseconds on every instrumented
//! path. The bucket layout is the classic high-dynamic-range scheme:
//! values below [`SUB_BUCKETS`] get one exact bucket each, and every
//! power-of-2 octave above that is split into [`SUB_BUCKETS`] linear
//! sub-buckets. A recorded value `v` therefore lands in a bucket whose
//! width is at most `v / SUB_BUCKETS`, which gives the documented
//! quantile guarantee:
//!
//! > For any quantile `p`, the reported value `q̂` and the exact
//! > nearest-rank sample `q` satisfy `q ≤ q̂ ≤ q + q / SUB_BUCKETS`
//! > (relative error ≤ 2⁻⁵ ≈ 3.2%), and `max` is exact.
//!
//! Memory is bounded and preallocated: [`BUCKETS`] fixed `AtomicU64`
//! slots (15 KiB) per histogram, allocated once at registration — the
//! hot-path [`Histogram::record`] touches only relaxed atomics, so the
//! streamed solver loop stays allocation-free with telemetry enabled.
//! Recording is lock-free and thread-safe; per-shard histograms merge by
//! plain bucket addition ([`HistSnapshot::merge`]), which is exact and
//! associative.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// log2 of the sub-bucket count per octave.
pub const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-2 octave; also the exact-bucket range.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket slots: one exact group plus 59 sub-divided octaves.
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// Bucket index for a value. Exact below [`SUB_BUCKETS`]; above that,
/// octave-major with linear sub-buckets.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let group = (msb - SUB_BITS + 1) as usize;
        let sub = ((v - (1u64 << msb)) >> (msb - SUB_BITS)) as usize;
        group * SUB_BUCKETS + sub
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_low(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let group = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        let msb = group as u32 + SUB_BITS - 1;
        (1u64 << msb) + sub * (1u64 << (msb - SUB_BITS))
    }
}

/// Exclusive upper bound of a bucket.
fn bucket_high(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64 + 1
    } else {
        let group = index / SUB_BUCKETS;
        let msb = group as u32 + SUB_BITS - 1;
        bucket_low(index) + (1u64 << (msb - SUB_BITS))
    }
}

/// A concurrent log-bucket histogram. All recording operations are
/// relaxed atomics; readout goes through [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh histogram with all [`BUCKETS`] slots preallocated.
    pub fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Starts a span over this histogram if telemetry is enabled; the
    /// guard records the elapsed nanoseconds when dropped. When
    /// telemetry is disabled the guard is inert and no clock is read.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        if crate::enabled() {
            Span {
                live: Some((Instant::now(), self)),
            }
        } else {
            Span { live: None }
        }
    }

    /// A point-in-time copy for readout. Allocates (readout path only).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// RAII span guard: created by [`Histogram::span`], records the elapsed
/// wall time (monotonic clock) into the histogram on drop.
#[derive(Debug)]
pub struct Span<'a> {
    live: Option<(Instant, &'a Histogram)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.live.take() {
            hist.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// Immutable readout of a [`Histogram`]: bucket counts plus exact
/// count/sum/min/max. Merging snapshots is exact bucket addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Vec<u64>,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    min: u64,
    max: u64,
}

impl HistSnapshot {
    /// An empty snapshot (identity element for [`HistSnapshot::merge`]).
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate for `p` in `[0, 100]`.
    ///
    /// Returns the upper inclusive bound of the bucket holding the
    /// rank-`⌈p/100·n⌉` sample, clamped to the exact observed min/max, so
    /// the estimate `q̂` satisfies `q ≤ q̂ ≤ q + q/`[`SUB_BUCKETS`] where
    /// `q` is the exact nearest-rank sample. `p = 0` returns the exact
    /// min, `p = 100` the exact max; an empty snapshot returns 0.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or NaN.
    pub fn quantile(&self, p: f64) -> u64 {
        assert!(
            (0.0..=100.0).contains(&p),
            "quantile {p} out of range [0, 100]"
        );
        if self.count == 0 {
            return 0;
        }
        if p == 0.0 {
            return self.min;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (bucket_high(i) - 1).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds `other`'s buckets into `self`. Exact and associative:
    /// merging per-shard histograms in any grouping equals recording
    /// every value into one histogram.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending —
    /// the compact form used by the `stats` wire response and the
    /// `lovm top` sparklines.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_threshold() {
        for v in 0..SUB_BUCKETS as u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_low(i), v);
            assert_eq!(bucket_high(i), v + 1);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_cover_u64() {
        // Every bucket's upper bound is the next bucket's lower bound.
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_high(i),
                bucket_low(i + 1),
                "gap between buckets {i} and {}",
                i + 1
            );
        }
        assert_eq!(bucket_low(0), 0);
        // The last bucket reaches the top of the u64 range.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        for v in [
            0u64,
            31,
            32,
            33,
            100,
            1_000,
            123_456,
            987_654_321,
            u64::MAX / 3,
        ] {
            let i = bucket_index(v);
            let (lo, hi) = (bucket_low(i), bucket_high(i));
            assert!(lo <= v && v < hi, "value {v} outside bucket [{lo}, {hi})");
            if v >= SUB_BUCKETS as u64 {
                assert!(
                    hi - lo <= v / SUB_BUCKETS as u64 + 1,
                    "bucket width {} too wide for {v}",
                    hi - lo
                );
            }
        }
    }

    #[test]
    fn quantiles_on_small_exact_values() {
        let h = Histogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(50.0), 5);
        assert_eq!(s.quantile(100.0), 10);
        assert_eq!(s.max(), 10);
        assert_eq!(s.min(), 1);
        assert!((s.mean() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(50.0), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.nonzero_buckets().is_empty());
    }

    #[test]
    #[should_panic(expected = "quantile 101 out of range")]
    fn quantile_rejects_out_of_range() {
        Histogram::new().snapshot().quantile(101.0);
    }

    #[test]
    fn span_records_on_drop() {
        crate::force_configure(true, crate::SinkSpec::None);
        let h = Histogram::new();
        {
            let _s = h.span();
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn merge_identity() {
        let h = Histogram::new();
        for v in [5u64, 700, 90_000] {
            h.record(v);
        }
        let mut a = HistSnapshot::empty();
        a.merge(&h.snapshot());
        assert_eq!(a, h.snapshot());
    }
}
