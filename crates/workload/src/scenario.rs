//! Named scenario presets used by the experiment harness.

use crate::availability::AvailabilityKind;
use crate::population::{CostDistribution, EnergyGroup, PopulationConfig};
use auction::valuation::{ClientValue, Valuation};
use energy::harvest::HarvesterKind;

/// A complete marketplace scenario: population + arrivals + horizon +
/// budget. Every experiment in EXPERIMENTS.md names the scenario and seed
/// it ran with.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable name (stable; quoted by EXPERIMENTS.md).
    pub name: String,
    /// Client population.
    pub population: PopulationConfig,
    /// Exogenous arrival process.
    pub availability: AvailabilityKind,
    /// Number of auction rounds.
    pub horizon: usize,
    /// Total long-term budget over the horizon.
    pub total_budget: f64,
    /// Energy consumed by one round of local training (used only when the
    /// population has energy groups).
    pub training_energy: f64,
    /// The platform's valuation of clients, tuned so this scenario's
    /// marketplace has positive-welfare trade (costs below values for
    /// efficient clients).
    pub valuation: Valuation,
}

impl Scenario {
    /// Budget rate ρ = total budget / horizon.
    pub fn budget_per_round(&self) -> f64 {
        self.total_budget / self.horizon.max(1) as f64
    }

    /// Small smoke-test scenario (fast in debug builds).
    pub fn small() -> Scenario {
        Scenario {
            name: "small".into(),
            population: PopulationConfig {
                num_clients: 20,
                cost: CostDistribution::Uniform { lo: 0.5, hi: 2.0 },
                data_size: (20, 200),
                quality: (0.5, 1.0),
                energy_groups: Vec::new(),
            },
            availability: AvailabilityKind::Full,
            horizon: 200,
            total_budget: 400.0,
            training_energy: 2.0,
            valuation: Valuation::default(),
        }
    }

    /// The main evaluation scenario: 100 clients, 1000 rounds, stochastic
    /// presence, lognormal costs.
    pub fn standard() -> Scenario {
        Scenario {
            name: "standard".into(),
            population: PopulationConfig {
                num_clients: 100,
                cost: CostDistribution::LogNormal {
                    mu: 0.0,
                    sigma: 0.5,
                    cap: 6.0,
                },
                data_size: (50, 500),
                quality: (0.5, 1.0),
                energy_groups: Vec::new(),
            },
            availability: AvailabilityKind::Bernoulli { p: 0.6 },
            horizon: 1000,
            total_budget: 4000.0,
            training_energy: 2.0,
            valuation: Valuation::default(),
        }
    }

    /// Energy-heterogeneous scenario reproducing grouped renewal cycles
    /// (fast/medium/slow/very-slow harvesters, as in the sustainable-FL
    /// experiment setup with cycles ≈ 1/5/10/20 rounds).
    pub fn energy_heterogeneous() -> Scenario {
        let cost_model_energy = 2.0; // per-round training energy
        let group = |cycle: f64| EnergyGroup {
            harvester: HarvesterKind::Constant {
                rate: cost_model_energy / cycle,
            },
            battery_capacity: 2.0 * cost_model_energy,
        };
        Scenario {
            name: "energy-heterogeneous".into(),
            population: PopulationConfig {
                num_clients: 40,
                cost: CostDistribution::Uniform { lo: 0.5, hi: 2.5 },
                data_size: (100, 400),
                quality: (0.6, 1.0),
                energy_groups: vec![group(1.0), group(5.0), group(10.0), group(20.0)],
            },
            availability: AvailabilityKind::Full,
            horizon: 1000,
            total_budget: 3000.0,
            training_energy: 2.0,
            valuation: Valuation::Log(ClientValue {
                value_per_unit: 0.4,
                base_value: 0.5,
            }),
        }
    }

    /// Solar-powered fleet: diurnal harvesting with staggered phases.
    pub fn solar_fleet() -> Scenario {
        let mk = |phase: usize| EnergyGroup {
            harvester: HarvesterKind::Solar {
                day_length: 48,
                peak: 1.5,
                phase,
                noise: 0.3,
            },
            battery_capacity: 8.0,
        };
        Scenario {
            name: "solar-fleet".into(),
            population: PopulationConfig {
                num_clients: 60,
                cost: CostDistribution::DataCorrelated {
                    base: 0.3,
                    per_example: 0.002,
                    noise: 0.3,
                },
                data_size: (50, 300),
                quality: (0.5, 1.0),
                energy_groups: vec![mk(0), mk(12), mk(24), mk(36)],
            },
            availability: AvailabilityKind::Full,
            horizon: 960, // 20 simulated days
            total_budget: 2500.0,
            training_energy: 4.0,
            valuation: Valuation::Log(ClientValue {
                value_per_unit: 0.35,
                base_value: 0.5,
            }),
        }
    }

    /// Large-population scalability scenario (economic simulation only).
    pub fn large(num_clients: usize) -> Scenario {
        Scenario {
            name: format!("large-{num_clients}"),
            population: PopulationConfig {
                num_clients,
                cost: CostDistribution::Uniform { lo: 0.2, hi: 3.0 },
                data_size: (50, 500),
                quality: (0.5, 1.0),
                energy_groups: Vec::new(),
            },
            availability: AvailabilityKind::Bernoulli { p: 0.5 },
            horizon: 200,
            total_budget: 10.0 * num_clients as f64,
            training_energy: 2.0,
            valuation: Valuation::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for s in [
            Scenario::small(),
            Scenario::standard(),
            Scenario::energy_heterogeneous(),
            Scenario::solar_fleet(),
            Scenario::large(500),
        ] {
            assert!(s.population.num_clients > 0, "{}", s.name);
            assert!(s.horizon > 0);
            assert!(s.total_budget > 0.0);
            assert!(s.budget_per_round() > 0.0);
            // Population generation must succeed.
            let pop = crate::population::generate(&s.population, 1);
            assert_eq!(pop.len(), s.population.num_clients);
        }
    }

    #[test]
    fn budget_per_round_math() {
        let s = Scenario::small();
        assert!((s.budget_per_round() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_groups_have_expected_cycles() {
        let s = Scenario::energy_heterogeneous();
        let groups = &s.population.energy_groups;
        assert_eq!(groups.len(), 4);
        let rates: Vec<f64> = groups.iter().map(|g| g.harvester.mean_rate()).collect();
        // Cycle = cost / rate = 2.0 / rate.
        let cycles: Vec<f64> = rates.iter().map(|r| 2.0 / r).collect();
        assert!((cycles[0] - 1.0).abs() < 1e-9);
        assert!((cycles[1] - 5.0).abs() < 1e-9);
        assert!((cycles[2] - 10.0).abs() < 1e-9);
        assert!((cycles[3] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn large_scales_budget() {
        let s = Scenario::large(1000);
        assert_eq!(s.population.num_clients, 1000);
        assert!((s.total_budget - 10_000.0).abs() < 1e-9);
    }
}
