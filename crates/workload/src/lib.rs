//! # workload — client populations and scenarios
//!
//! Generates the synthetic marketplace the mechanism runs against:
//!
//! * [`population`] — heterogeneous client profiles (private costs, data
//!   sizes, qualities, energy-harvesting assignments),
//! * [`availability`] — online arrival processes deciding which clients
//!   are present to bid each round,
//! * [`arrivals`] — timestamped bid-arrival streams (Poisson / bursty /
//!   diurnal) feeding the streaming ingestion layer (`crates/ingest`),
//! * [`scenario`] — named parameter presets used by the experiment
//!   harness so every figure is reproducible from a scenario name + seed.
//!
//! Real user bids and device traces from the paper's deployment are
//! substituted by these parametric generators (see DESIGN.md).

pub mod arrivals;
pub mod availability;
pub mod population;
pub mod scenario;

pub use arrivals::{ArrivalKind, ArrivalProcess, TimedBid};
pub use availability::{AvailabilityKind, AvailabilityProcess};
pub use population::{ClientProfile, CostDistribution, EnergyGroup, PopulationConfig};
pub use scenario::Scenario;
