//! Heterogeneous client populations.

use auction::bid::Bid;
use energy::harvest::HarvesterKind;
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

/// Distribution of clients' private per-round training costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostDistribution {
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (≥ 0).
        lo: f64,
        /// Upper bound (≥ lo).
        hi: f64,
    },
    /// Log-normal with the given underlying normal parameters, capped at
    /// `cap` to keep tails bounded (real marketplaces clamp absurd asks).
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Std of the underlying normal.
        sigma: f64,
        /// Hard cap on the drawn cost.
        cap: f64,
    },
    /// Cost correlated with data size: `base + per_example · d + noise`,
    /// noise uniform on `[0, noise]`. Models compute cost scaling with data.
    DataCorrelated {
        /// Fixed cost component.
        base: f64,
        /// Marginal cost per committed example.
        per_example: f64,
        /// Uniform noise amplitude.
        noise: f64,
    },
}

impl CostDistribution {
    fn sample(&self, rng: &mut StdRng, data_size: usize) -> f64 {
        match *self {
            CostDistribution::Uniform { lo, hi } => {
                if hi > lo {
                    rng.random_range(lo..hi)
                } else {
                    lo
                }
            }
            CostDistribution::LogNormal { mu, sigma, cap } => {
                let u1: f64 = 1.0 - rng.random::<f64>();
                let u2: f64 = rng.random();
                let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mu + sigma * gauss).exp().min(cap)
            }
            CostDistribution::DataCorrelated {
                base,
                per_example,
                noise,
            } => base + per_example * data_size as f64 + rng.random::<f64>() * noise,
        }
    }
}

/// An energy-harvesting group: clients are dealt into groups round-robin,
/// reproducing the grouped heterogeneous energy profiles of the paper's
/// experiments (e.g. renewal cycles 1/5/10/20).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyGroup {
    /// Harvesting process for this group.
    pub harvester: HarvesterKind,
    /// Battery capacity for this group.
    pub battery_capacity: f64,
}

/// Configuration of a client population.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Number of clients.
    pub num_clients: usize,
    /// Private cost distribution.
    pub cost: CostDistribution,
    /// Inclusive range of committed data sizes.
    pub data_size: (usize, usize),
    /// Inclusive range of data quality scores (within `[0, 1]`).
    pub quality: (f64, f64),
    /// Energy groups, assigned round-robin (`client i → group i mod G`).
    /// Empty means energy is not modelled (always available).
    pub energy_groups: Vec<EnergyGroup>,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            num_clients: 100,
            cost: CostDistribution::Uniform { lo: 0.5, hi: 2.0 },
            data_size: (50, 500),
            quality: (0.5, 1.0),
            energy_groups: Vec::new(),
        }
    }
}

/// One client's immutable ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientProfile {
    /// Stable client id (also the bidder id).
    pub id: usize,
    /// True private per-round cost.
    pub true_cost: f64,
    /// Committed local data size.
    pub data_size: usize,
    /// Verifiable data quality in `[0, 1]`.
    pub quality: f64,
    /// Energy-harvesting assignment (`None` = always powered).
    pub energy: Option<EnergyGroup>,
}

impl ClientProfile {
    /// The truthful bid for this client.
    pub fn truthful_bid(&self) -> Bid {
        Bid::new(self.id, self.true_cost, self.data_size, self.quality)
    }

    /// A bid misreporting cost by the given multiplicative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn misreport_bid(&self, factor: f64) -> Bid {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be >= 0");
        Bid::new(
            self.id,
            self.true_cost * factor,
            self.data_size,
            self.quality,
        )
    }
}

/// Generates a population from the config, deterministically per seed.
///
/// # Panics
///
/// Panics if `num_clients == 0`, ranges are inverted, or quality bounds
/// leave `[0, 1]`.
pub fn generate(config: &PopulationConfig, seed: u64) -> Vec<ClientProfile> {
    assert!(config.num_clients > 0, "num_clients must be positive");
    assert!(
        config.data_size.0 <= config.data_size.1,
        "data_size range inverted"
    );
    assert!(
        config.quality.0 <= config.quality.1 && config.quality.0 >= 0.0 && config.quality.1 <= 1.0,
        "quality range must be within [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..config.num_clients)
        .map(|id| {
            let data_size = if config.data_size.1 > config.data_size.0 {
                rng.random_range(config.data_size.0..=config.data_size.1)
            } else {
                config.data_size.0
            };
            let quality = if config.quality.1 > config.quality.0 {
                rng.random_range(config.quality.0..config.quality.1)
            } else {
                config.quality.0
            };
            let true_cost = config.cost.sample(&mut rng, data_size);
            let energy = if config.energy_groups.is_empty() {
                None
            } else {
                Some(config.energy_groups[id % config.energy_groups.len()])
            };
            ClientProfile {
                id,
                true_cost,
                data_size,
                quality,
                energy,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let cfg = PopulationConfig::default();
        let a = generate(&cfg, 1);
        let b = generate(&cfg, 1);
        assert_eq!(a, b);
        let c = generate(&cfg, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn fields_respect_ranges() {
        let cfg = PopulationConfig {
            num_clients: 200,
            cost: CostDistribution::Uniform { lo: 1.0, hi: 3.0 },
            data_size: (10, 20),
            quality: (0.6, 0.9),
            energy_groups: Vec::new(),
        };
        for p in generate(&cfg, 3) {
            assert!((1.0..3.0).contains(&p.true_cost));
            assert!((10..=20).contains(&p.data_size));
            assert!((0.6..0.9).contains(&p.quality));
            assert!(p.energy.is_none());
        }
    }

    #[test]
    fn energy_groups_deal_round_robin() {
        let g0 = EnergyGroup {
            harvester: HarvesterKind::Constant { rate: 1.0 },
            battery_capacity: 5.0,
        };
        let g1 = EnergyGroup {
            harvester: HarvesterKind::Constant { rate: 0.2 },
            battery_capacity: 5.0,
        };
        let cfg = PopulationConfig {
            num_clients: 6,
            energy_groups: vec![g0, g1],
            ..PopulationConfig::default()
        };
        let pop = generate(&cfg, 0);
        for p in &pop {
            let g = p.energy.unwrap();
            if p.id % 2 == 0 {
                assert_eq!(g, g0);
            } else {
                assert_eq!(g, g1);
            }
        }
    }

    #[test]
    fn lognormal_capped() {
        let cfg = PopulationConfig {
            num_clients: 500,
            cost: CostDistribution::LogNormal {
                mu: 0.0,
                sigma: 2.0,
                cap: 4.0,
            },
            ..PopulationConfig::default()
        };
        for p in generate(&cfg, 5) {
            assert!(p.true_cost <= 4.0);
            assert!(p.true_cost > 0.0);
        }
    }

    #[test]
    fn data_correlated_costs_grow_with_data() {
        let cfg = PopulationConfig {
            num_clients: 400,
            cost: CostDistribution::DataCorrelated {
                base: 0.1,
                per_example: 0.01,
                noise: 0.0,
            },
            data_size: (10, 1000),
            ..PopulationConfig::default()
        };
        let pop = generate(&cfg, 7);
        for p in &pop {
            assert!((p.true_cost - (0.1 + 0.01 * p.data_size as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn truthful_and_misreport_bids() {
        let p = ClientProfile {
            id: 9,
            true_cost: 2.0,
            data_size: 100,
            quality: 0.8,
            energy: None,
        };
        let t = p.truthful_bid();
        assert_eq!(t.bidder, 9);
        assert_eq!(t.cost, 2.0);
        let m = p.misreport_bid(1.5);
        assert_eq!(m.cost, 3.0);
        assert_eq!(m.data_size, 100);
    }

    #[test]
    fn degenerate_ranges_allowed() {
        let cfg = PopulationConfig {
            num_clients: 3,
            cost: CostDistribution::Uniform { lo: 1.0, hi: 1.0 },
            data_size: (5, 5),
            quality: (0.7, 0.7),
            ..PopulationConfig::default()
        };
        for p in generate(&cfg, 0) {
            assert_eq!(p.true_cost, 1.0);
            assert_eq!(p.data_size, 5);
            assert_eq!(p.quality, 0.7);
        }
    }

    #[test]
    #[should_panic(expected = "num_clients must be positive")]
    fn rejects_zero_clients() {
        let cfg = PopulationConfig {
            num_clients: 0,
            ..PopulationConfig::default()
        };
        let _ = generate(&cfg, 0);
    }
}
