//! Seeded, timestamped bid-arrival processes for the streaming ingestion
//! layer.
//!
//! The batch simulator hands the mechanism a complete bid vector at round
//! start; a live marketplace delivers bids one at a time, stamped with an
//! arrival instant on a continuous virtual clock (1.0 = one round). This
//! module generates that stream: an infinite, deterministic sequence of
//! [`TimedBid`]s whose epochs follow one of three arrival families —
//! memoryless ([`ArrivalKind::Poisson`]), clustered ([`ArrivalKind::Bursty`]),
//! or sinusoidally rate-modulated ([`ArrivalKind::Diurnal`]). All randomness
//! flows from `simrng` per the workspace contract, so a stream is a pure
//! function of its seed.
//!
//! Emitted timestamps are **non-decreasing** (bursts that would overlap the
//! next burst epoch are clamped forward), which is the ordering contract the
//! ingestion drivers in `crates/ingest` rely on.

use auction::bid::Bid;
use simrng::rngs::StdRng;
use simrng::{derive_seed, RngExt, SeedableRng};
use std::collections::VecDeque;

/// A bid stamped with its arrival instant on the virtual clock.
///
/// Time is measured in *rounds*: `at = 2.35` means 35% of the way through
/// round 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedBid {
    /// Arrival instant (non-negative, finite).
    pub at: f64,
    /// The sealed bid that arrived.
    pub bid: Bid,
}

/// Families of bid-arrival processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// Memoryless arrivals: exponential inter-arrival gaps with mean
    /// `1/rate` (rate = expected bids per round).
    Poisson {
        /// Expected arrivals per round, > 0.
        rate: f64,
    },
    /// Clustered arrivals: burst epochs follow a Poisson process of rate
    /// `rate / burst_size`, and each epoch releases `burst_size` bids
    /// spread uniformly over the next `spread` rounds — device cohorts
    /// waking together (push notifications, synchronized charging).
    Bursty {
        /// Expected arrivals per round (averaged over bursts), > 0.
        rate: f64,
        /// Bids per burst, ≥ 1.
        burst_size: usize,
        /// Width of one burst in rounds, ≥ 0 and finite.
        spread: f64,
    },
    /// Sinusoidally rate-modulated arrivals via Lewis–Shedler thinning:
    /// instantaneous rate `rate·(1 + depth·sin(2πt/period))` — diurnal
    /// user activity with crests and troughs.
    Diurnal {
        /// Mean arrivals per round, > 0.
        rate: f64,
        /// Cycle length in rounds, > 0.
        period: f64,
        /// Modulation depth in `[0, 1]` (0 = plain Poisson).
        depth: f64,
    },
}

/// An infinite, deterministic stream of timestamped bids.
///
/// Implements `Iterator`; callers take as many arrivals as they need
/// (`by_ref().take_while(..)`, `take(n)`, …). Bid fields are drawn from the
/// same ranges as the benchmark population (`bench::random_bids`): costs in
/// `0.2..3.0`, data sizes in `50..500`, qualities in `0.5..1.0`. Bidder ids
/// are sequential, so every arrival is a distinct bidder — the regime of
/// the throughput experiments; the market-coupled streaming loop in
/// `lovm-core` timestamps a persistent population instead.
#[derive(Debug)]
pub struct ArrivalProcess {
    kind: ArrivalKind,
    epoch_rng: StdRng,
    bid_rng: StdRng,
    now: f64,
    last_emitted: f64,
    next_id: usize,
    /// Arrivals already scheduled (bursts release several at once).
    pending: VecDeque<f64>,
}

impl ArrivalProcess {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of domain (non-positive `rate` or
    /// `period`, zero `burst_size`, negative or non-finite `spread`,
    /// `depth ∉ [0, 1]`).
    pub fn new(kind: ArrivalKind, seed: u64) -> Self {
        match kind {
            ArrivalKind::Poisson { rate } => {
                assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
            }
            ArrivalKind::Bursty {
                rate,
                burst_size,
                spread,
            } => {
                assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
                assert!(burst_size >= 1, "burst_size must be at least 1");
                assert!(spread >= 0.0 && spread.is_finite(), "spread must be >= 0");
            }
            ArrivalKind::Diurnal {
                rate,
                period,
                depth,
            } => {
                assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
                assert!(
                    period > 0.0 && period.is_finite(),
                    "period must be positive"
                );
                assert!((0.0..=1.0).contains(&depth), "depth must be in [0, 1]");
            }
        }
        ArrivalProcess {
            kind,
            epoch_rng: StdRng::seed_from_u64(derive_seed(seed, 0)),
            bid_rng: StdRng::seed_from_u64(derive_seed(seed, 1)),
            now: 0.0,
            last_emitted: 0.0,
            next_id: 0,
            pending: VecDeque::new(),
        }
    }

    /// The configured arrival family.
    pub fn kind(&self) -> ArrivalKind {
        self.kind
    }

    /// Exponential gap with mean `1/rate` (inverse-CDF over a `[0,1)`
    /// uniform; `1 − u` keeps the argument strictly positive).
    fn exp_gap(&mut self, rate: f64) -> f64 {
        let u: f64 = self.epoch_rng.random();
        -(1.0 - u).ln() / rate
    }

    /// Schedules the next epoch(s) into `pending`.
    fn refill(&mut self) {
        match self.kind {
            ArrivalKind::Poisson { rate } => {
                self.now += self.exp_gap(rate);
                self.pending.push_back(self.now);
            }
            ArrivalKind::Bursty {
                rate,
                burst_size,
                spread,
            } => {
                let epoch_rate = rate / burst_size as f64;
                self.now += self.exp_gap(epoch_rate);
                let epoch = self.now;
                let mut offsets: Vec<f64> = (0..burst_size)
                    .map(|_| {
                        let u: f64 = self.epoch_rng.random();
                        epoch + u * spread
                    })
                    .collect();
                offsets.sort_by(|a, b| a.total_cmp(b));
                self.pending.extend(offsets);
            }
            ArrivalKind::Diurnal {
                rate,
                period,
                depth,
            } => {
                // Thinning against the crest rate λ_max = rate·(1 + depth).
                let lambda_max = rate * (1.0 + depth);
                loop {
                    self.now += self.exp_gap(lambda_max);
                    let phase = 2.0 * std::f64::consts::PI * self.now / period;
                    let lambda = rate * (1.0 + depth * phase.sin());
                    let u: f64 = self.epoch_rng.random();
                    if u * lambda_max < lambda {
                        self.pending.push_back(self.now);
                        break;
                    }
                }
            }
        }
    }

    fn synthesize(&mut self, at: f64) -> TimedBid {
        let bid = Bid::new(
            self.next_id,
            self.bid_rng.random_range(0.2..3.0),
            self.bid_rng.random_range(50..500),
            self.bid_rng.random_range(0.5..1.0),
        );
        self.next_id += 1;
        TimedBid { at, bid }
    }
}

impl Iterator for ArrivalProcess {
    type Item = TimedBid;

    fn next(&mut self) -> Option<TimedBid> {
        if self.pending.is_empty() {
            self.refill();
        }
        let raw = self.pending.pop_front().expect("refill always schedules");
        // A burst whose spread overlaps the next burst epoch would emit out
        // of order across refills; clamp forward so the stream is globally
        // non-decreasing (the drivers' ordering contract).
        let at = raw.max(self.last_emitted);
        self.last_emitted = at;
        Some(self.synthesize(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take_times(kind: ArrivalKind, seed: u64, n: usize) -> Vec<f64> {
        ArrivalProcess::new(kind, seed)
            .take(n)
            .map(|tb| tb.at)
            .collect()
    }

    #[test]
    fn poisson_rate_matches() {
        let times = take_times(ArrivalKind::Poisson { rate: 40.0 }, 7, 4000);
        let horizon = *times.last().unwrap();
        let measured = times.len() as f64 / horizon;
        assert!(
            (measured - 40.0).abs() / 40.0 < 0.1,
            "measured rate {measured}"
        );
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        for kind in [
            ArrivalKind::Poisson { rate: 20.0 },
            ArrivalKind::Bursty {
                rate: 20.0,
                burst_size: 5,
                spread: 0.2,
            },
            ArrivalKind::Diurnal {
                rate: 20.0,
                period: 24.0,
                depth: 0.8,
            },
        ] {
            let a: Vec<TimedBid> = ArrivalProcess::new(kind, 3).take(200).collect();
            let b: Vec<TimedBid> = ArrivalProcess::new(kind, 3).take(200).collect();
            let c: Vec<TimedBid> = ArrivalProcess::new(kind, 4).take(200).collect();
            assert_eq!(a, b, "{kind:?} not deterministic");
            assert_ne!(a, c, "{kind:?} ignores the seed");
        }
    }

    #[test]
    fn timestamps_are_non_decreasing() {
        for kind in [
            ArrivalKind::Poisson { rate: 50.0 },
            ArrivalKind::Bursty {
                rate: 50.0,
                burst_size: 8,
                spread: 0.5,
            },
            ArrivalKind::Diurnal {
                rate: 50.0,
                period: 10.0,
                depth: 1.0,
            },
        ] {
            let times = take_times(kind, 11, 2000);
            assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "{kind:?} emitted out of order"
            );
            assert!(times.iter().all(|t| t.is_finite() && *t >= 0.0));
        }
    }

    #[test]
    fn bidder_ids_are_sequential_and_bids_valid() {
        let bids: Vec<TimedBid> = ArrivalProcess::new(ArrivalKind::Poisson { rate: 10.0 }, 0)
            .take(50)
            .collect();
        for (i, tb) in bids.iter().enumerate() {
            assert_eq!(tb.bid.bidder, i);
            assert!((0.2..3.0).contains(&tb.bid.cost));
            assert!((50..500).contains(&tb.bid.data_size));
        }
    }

    #[test]
    fn bursty_clusters_arrivals() {
        // With tight bursts, the gap distribution is bimodal: most gaps are
        // tiny (within a burst), a few are large (between epochs).
        let times = take_times(
            ArrivalKind::Bursty {
                rate: 20.0,
                burst_size: 10,
                spread: 0.01,
            },
            5,
            1000,
        );
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let tiny = gaps.iter().filter(|&&g| g < 0.011).count();
        assert!(
            tiny as f64 / gaps.len() as f64 > 0.8,
            "bursty stream did not cluster: {} tiny of {}",
            tiny,
            gaps.len()
        );
    }

    #[test]
    fn diurnal_modulates_rate() {
        let period = 8.0;
        let times = take_times(
            ArrivalKind::Diurnal {
                rate: 200.0,
                period,
                depth: 1.0,
            },
            9,
            20_000,
        );
        // Crest quarter (phase ∈ [0, π/2)) vs trough quarter (phase ∈
        // [π, 3π/2)): counts must differ strongly at depth 1.
        let phase_bin = |t: f64| ((t % period) / period * 4.0) as usize;
        let mut bins = [0usize; 4];
        for &t in &times {
            bins[phase_bin(t).min(3)] += 1;
        }
        assert!(
            bins[0] > 3 * bins[2],
            "diurnal modulation too weak: {bins:?}"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_non_positive_rate() {
        let _ = ArrivalProcess::new(ArrivalKind::Poisson { rate: 0.0 }, 0);
    }

    #[test]
    #[should_panic(expected = "depth must be in [0, 1]")]
    fn rejects_bad_depth() {
        let _ = ArrivalProcess::new(
            ArrivalKind::Diurnal {
                rate: 1.0,
                period: 1.0,
                depth: 1.5,
            },
            0,
        );
    }
}
