//! Online client-arrival processes.
//!
//! In the online auction, the set of clients present to bid varies per
//! round. Energy-*driven* availability (battery state) is simulated in the
//! core orchestrator; this module provides the exogenous arrival component
//! (user presence, connectivity, charging plugged-in windows).

use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

/// Families of arrival processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AvailabilityKind {
    /// Every client is present every round.
    Full,
    /// Each client is independently present with probability `p` per round.
    Bernoulli {
        /// Presence probability.
        p: f64,
    },
    /// Client `i` is present in rounds where `(round + i) % period < active`
    /// — staggered duty cycles (e.g. overnight charging windows).
    DutyCycle {
        /// Cycle length in rounds.
        period: usize,
        /// Number of active rounds per cycle.
        active: usize,
    },
    /// Globally bursty presence: every client is independently present with
    /// a probability that oscillates sinusoidally between `min_p` and
    /// `max_p` over `period` rounds — scarce rounds and abundant rounds
    /// alternate for the *whole* population (diurnal user activity). This
    /// is the regime where banking budget across rounds pays off.
    Wave {
        /// Cycle length in rounds.
        period: usize,
        /// Presence probability at the trough.
        min_p: f64,
        /// Presence probability at the crest.
        max_p: f64,
    },
}

/// A stateful arrival process over a fixed client population.
#[derive(Debug)]
pub struct AvailabilityProcess {
    kind: AvailabilityKind,
    num_clients: usize,
    rng: StdRng,
    round: usize,
}

impl AvailabilityProcess {
    /// Creates the process.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of domain (`p ∉ [0,1]`, zero period,
    /// `active > period`).
    pub fn new(kind: AvailabilityKind, num_clients: usize, seed: u64) -> Self {
        match kind {
            AvailabilityKind::Full => {}
            AvailabilityKind::Bernoulli { p } => {
                assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
            }
            AvailabilityKind::DutyCycle { period, active } => {
                assert!(period > 0, "period must be positive");
                assert!(active <= period, "active must not exceed period");
            }
            AvailabilityKind::Wave {
                period,
                min_p,
                max_p,
            } => {
                assert!(period > 0, "period must be positive");
                assert!(
                    (0.0..=1.0).contains(&min_p) && (0.0..=1.0).contains(&max_p),
                    "probabilities must be in [0, 1]"
                );
                assert!(min_p <= max_p, "min_p must not exceed max_p");
            }
        }
        AvailabilityProcess {
            kind,
            num_clients,
            rng: StdRng::seed_from_u64(seed),
            round: 0,
        }
    }

    /// Number of clients in the population.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Returns the ids of clients present in the next round (ascending) and
    /// advances the process.
    pub fn step(&mut self) -> Vec<usize> {
        let t = self.round;
        self.round += 1;
        match self.kind {
            AvailabilityKind::Full => (0..self.num_clients).collect(),
            AvailabilityKind::Bernoulli { p } => (0..self.num_clients)
                .filter(|_| self.rng.random::<f64>() < p)
                .collect(),
            AvailabilityKind::DutyCycle { period, active } => (0..self.num_clients)
                .filter(|i| (t + i) % period < active)
                .collect(),
            AvailabilityKind::Wave {
                period,
                min_p,
                max_p,
            } => {
                let phase = 2.0 * std::f64::consts::PI * (t % period) as f64 / period as f64;
                let p = min_p + (max_p - min_p) * (0.5 + 0.5 * phase.sin());
                (0..self.num_clients)
                    .filter(|_| self.rng.random::<f64>() < p)
                    .collect()
            }
        }
    }

    /// Rounds stepped so far.
    pub fn round(&self) -> usize {
        self.round
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_everyone_present() {
        let mut a = AvailabilityProcess::new(AvailabilityKind::Full, 5, 0);
        assert_eq!(a.step(), vec![0, 1, 2, 3, 4]);
        assert_eq!(a.round(), 1);
    }

    #[test]
    fn bernoulli_fraction_close_to_p() {
        let mut a = AvailabilityProcess::new(AvailabilityKind::Bernoulli { p: 0.3 }, 100, 1);
        let mut total = 0usize;
        let rounds = 2000;
        for _ in 0..rounds {
            total += a.step().len();
        }
        let frac = total as f64 / (rounds * 100) as f64;
        assert!((frac - 0.3).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut none = AvailabilityProcess::new(AvailabilityKind::Bernoulli { p: 0.0 }, 10, 0);
        assert!(none.step().is_empty());
        let mut all = AvailabilityProcess::new(AvailabilityKind::Bernoulli { p: 1.0 }, 10, 0);
        assert_eq!(all.step().len(), 10);
    }

    #[test]
    fn duty_cycle_staggered() {
        let mut a = AvailabilityProcess::new(
            AvailabilityKind::DutyCycle {
                period: 4,
                active: 1,
            },
            4,
            0,
        );
        // Round 0: client with (0+i)%4==0 → i=0. Round 1: i=3. etc.
        assert_eq!(a.step(), vec![0]);
        assert_eq!(a.step(), vec![3]);
        assert_eq!(a.step(), vec![2]);
        assert_eq!(a.step(), vec![1]);
        assert_eq!(a.step(), vec![0]); // periodic
    }

    #[test]
    fn duty_cycle_each_client_fair_share() {
        let mut a = AvailabilityProcess::new(
            AvailabilityKind::DutyCycle {
                period: 5,
                active: 2,
            },
            10,
            0,
        );
        let mut counts = vec![0usize; 10];
        for _ in 0..100 {
            for id in a.step() {
                counts[id] += 1;
            }
        }
        for &c in &counts {
            assert_eq!(c, 40); // 2/5 of 100 rounds
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut a = AvailabilityProcess::new(AvailabilityKind::Bernoulli { p: 0.5 }, 20, seed);
            (0..10).map(|_| a.step()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn wave_oscillates_between_bounds() {
        let mut a = AvailabilityProcess::new(
            AvailabilityKind::Wave {
                period: 20,
                min_p: 0.1,
                max_p: 0.9,
            },
            200,
            5,
        );
        // Average presence per round position over many cycles.
        let mut by_pos = [0.0f64; 20];
        let cycles = 100;
        for _ in 0..cycles {
            for item in by_pos.iter_mut() {
                *item += a.step().len() as f64 / 200.0;
            }
        }
        for item in by_pos.iter_mut() {
            *item /= cycles as f64;
        }
        let max = by_pos.iter().cloned().fold(0.0, f64::max);
        let min = by_pos.iter().cloned().fold(1.0, f64::min);
        assert!(max > 0.8, "crest {max} too low");
        assert!(min < 0.2, "trough {min} too high");
    }

    #[test]
    #[should_panic(expected = "min_p must not exceed max_p")]
    fn wave_validation() {
        let _ = AvailabilityProcess::new(
            AvailabilityKind::Wave {
                period: 5,
                min_p: 0.9,
                max_p: 0.1,
            },
            1,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "active must not exceed period")]
    fn duty_cycle_validation() {
        let _ = AvailabilityProcess::new(
            AvailabilityKind::DutyCycle {
                period: 3,
                active: 4,
            },
            1,
            0,
        );
    }
}
