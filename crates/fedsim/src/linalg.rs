//! Minimal dense linear algebra for small and medium models.
//!
//! The simulator's models are small (10^3–10^6 parameters), so a simple
//! row-major [`Matrix`] over `f64` with straightforward loops is fast enough
//! and keeps the substrate dependency-free.

/// A dense vector of `f64` values.
pub type Vector = Vec<f64>;

/// A dense row-major matrix.
///
/// # Example
///
/// ```
/// use fedsim::linalg::Matrix;
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or no rows are given.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Sets the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vector {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows).map(|r| dot(self.row(r), x)).collect()
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f64]) -> Vector {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o += xr * v;
            }
        }
        out
    }

    /// Adds `alpha * outer(u, v)` to this matrix (rank-one update).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, alpha: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.rows, "add_outer row mismatch");
        assert_eq!(v.len(), self.cols, "add_outer col mismatch");
        for (r, &ur) in u.iter().enumerate() {
            let scaled = alpha * ur;
            let row = self.row_mut(r);
            for (e, &vc) in row.iter_mut().zip(v.iter()) {
                *e += scaled * vc;
            }
        }
    }

    /// Scales all entries in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (BLAS axpy).
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place.
pub fn scale(x: &mut [f64], alpha: f64) {
    for v in x {
        *v *= alpha;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Elementwise difference `a - b`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vector {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Elementwise sum `a + b`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vector {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Numerically stable softmax of the logits.
///
/// Returns a probability vector summing to 1 (for non-empty input).
pub fn softmax(logits: &[f64]) -> Vector {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vector = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|v| v / sum).collect()
}

/// Index of the maximum element (first one on ties).
///
/// Returns `None` for an empty slice.
pub fn argmax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn zeros_has_correct_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(!m.is_empty());
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.5);
        assert_eq!(m.get(1, 2), 5.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn from_rows_layout() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent row length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "flat buffer length")]
    fn from_flat_rejects_bad_len() {
        let _ = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matvec_t_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        // [1 3; 2 4] * [1, 1] = [4, 6]
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn add_outer_rank_one() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 0.0], &[3.0, 4.0]);
        assert_eq!(m.row(0), &[6.0, 8.0]);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn scale_and_norm() {
        let mut m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        m.scale(2.0);
        assert!((m.frobenius_norm() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dot_axpy_scale_sub_add() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        let mut x = vec![1.0, -2.0];
        scale(&mut x, -1.0);
        assert_eq!(x, vec![-1.0, 2.0]);
        assert_eq!(sub(&[3.0, 3.0], &[1.0, 2.0]), vec![2.0, 1.0]);
        assert_eq!(add(&[3.0, 3.0], &[1.0, 2.0]), vec![4.0, 5.0]);
    }

    #[test]
    fn norm2_pythagorean() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 1000.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for v in &p {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_orders_preserved() {
        let p = softmax(&[0.0, 1.0, 2.0]);
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[2.0, 2.0]), Some(0)); // first on ties
        assert_eq!(argmax(&[]), None);
    }

    /// Property: softmax outputs a probability vector (seeded random
    /// instances).
    #[test]
    fn softmax_always_probability() {
        let mut rng = StdRng::seed_from_u64(0x50F7);
        for _ in 0..300 {
            let len = rng.random_range(1..20usize);
            let v: Vec<f64> = (0..len).map(|_| rng.random_range(-50.0..50.0)).collect();
            let p = softmax(&v);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// Property: the dot product is commutative (seeded random instances).
    #[test]
    fn dot_commutative() {
        let mut rng = StdRng::seed_from_u64(0xD07);
        for _ in 0..300 {
            let len = rng.random_range(1..16usize);
            let a: Vec<f64> = (0..len).map(|_| rng.random_range(-10.0..10.0)).collect();
            let b: Vec<f64> = a.iter().map(|x| x * 0.5 - 1.0).collect();
            assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
        }
    }

    /// Property: `matvec` is linear, `M(x + y) = Mx + My` (seeded random
    /// instances).
    #[test]
    fn matvec_linearity() {
        let mut rng = StdRng::seed_from_u64(0x314C);
        for _ in 0..300 {
            let rows = rng.random_range(1..6usize);
            let cols = rng.random_range(1..6usize);
            let vals: Vec<f64> = (0..rows * cols)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect();
            let m = Matrix::from_flat(rows, cols, vals);
            let x: Vec<f64> = (0..cols).map(|_| rng.random_range(-1.0..1.0)).collect();
            let y: Vec<f64> = (0..cols).map(|_| rng.random_range(-1.0..1.0)).collect();
            let lhs = m.matvec(&add(&x, &y));
            let rhs = add(&m.matvec(&x), &m.matvec(&y));
            for (l, r) in lhs.iter().zip(rhs.iter()) {
                assert!((l - r).abs() < 1e-9);
            }
        }
    }
}
