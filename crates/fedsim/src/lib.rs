//! # fedsim — federated learning simulation substrate
//!
//! A self-contained, dependency-light federated learning simulator used as the
//! training substrate for the LOVM auction mechanism reproduction. It provides:
//!
//! * dense linear algebra ([`linalg`]) tuned for small/medium models,
//! * reproducible random utilities ([`rng`]) including Gaussian sampling,
//! * synthetic dataset generators and non-IID partitioners ([`data`]),
//! * differentiable models — multinomial logistic regression and a one-hidden
//!   layer MLP ([`model`]),
//! * first-order optimizers — SGD, momentum, Adam ([`optim`]),
//! * local client training and server-side FedAvg aggregation
//!   ([`client`], [`server`]),
//! * a pluggable round loop ([`training`]) whose client-selection hook is the
//!   integration point for incentive mechanisms.
//!
//! # Example
//!
//! ```
//! use fedsim::data::synth::{BlobSpec, gaussian_blobs};
//! use fedsim::data::partition::{partition, PartitionStrategy};
//! use fedsim::model::logistic::LogisticRegression;
//! use fedsim::training::{FederatedRun, RunConfig};
//!
//! let dataset = gaussian_blobs(&BlobSpec::new(4, 8, 200), 7);
//! let parts = partition(&dataset, 10, PartitionStrategy::Iid, 7);
//! let model = LogisticRegression::new(8, 4);
//! let mut run = FederatedRun::new(model, parts, dataset, RunConfig::default());
//! // One round with every client participating.
//! let report = run.round(&(0..10).collect::<Vec<_>>());
//! assert!(report.mean_train_loss.is_finite());
//! ```

pub mod client;
pub mod data;
pub mod error;
pub mod eval;
pub mod linalg;
pub mod model;
pub mod optim;
pub mod rng;
pub mod schedule;
pub mod server;
pub mod training;

pub use client::{ClientUpdate, LocalTrainer, LocalTrainerConfig};
pub use error::FedSimError;
pub use eval::ConfusionMatrix;
pub use linalg::{Matrix, Vector};
pub use model::Model;
pub use schedule::LrSchedule;
pub use server::{aggregate_weighted, FedAvgServer};
pub use training::{FederatedRun, RoundReport, RunConfig};
