//! Learning-rate schedules.
//!
//! The convergence analyses for federated SGD with intermittent
//! participation require diminishing step sizes of the form
//! `η_t = a / (b + t)`; this module provides that family plus the common
//! practical alternatives, consumed by [`crate::client::LocalTrainer`].

/// A learning-rate schedule: maps the global step index to a step size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant rate.
    Constant {
        /// The rate.
        lr: f64,
    },
    /// `lr = a / (b + t)` — the theory-mandated diminishing schedule
    /// (satisfies `η_t ≤ 2·η_{t+T}` for any horizon `T ≤ b`).
    InverseTime {
        /// Numerator `a > 0`.
        a: f64,
        /// Offset `b > 0`.
        b: f64,
    },
    /// Exponential decay `lr0 · γ^t` with `γ ∈ (0, 1]`.
    Exponential {
        /// Initial rate.
        lr0: f64,
        /// Per-step decay factor.
        gamma: f64,
    },
    /// Step decay: `lr0 · factor^(t / every)`.
    Step {
        /// Initial rate.
        lr0: f64,
        /// Multiplier applied at each boundary (in `(0, 1]`).
        factor: f64,
        /// Steps between boundaries (> 0).
        every: u64,
    },
}

impl LrSchedule {
    /// The learning rate at global step `t`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule parameters are out of domain.
    pub fn at(&self, t: u64) -> f64 {
        match *self {
            LrSchedule::Constant { lr } => {
                assert!(lr > 0.0, "lr must be positive");
                lr
            }
            LrSchedule::InverseTime { a, b } => {
                assert!(a > 0.0 && b > 0.0, "a and b must be positive");
                a / (b + t as f64)
            }
            LrSchedule::Exponential { lr0, gamma } => {
                assert!(lr0 > 0.0, "lr0 must be positive");
                assert!(
                    (0.0..=1.0).contains(&gamma) && gamma > 0.0,
                    "gamma in (0, 1]"
                );
                lr0 * gamma.powf(t as f64)
            }
            LrSchedule::Step { lr0, factor, every } => {
                assert!(lr0 > 0.0, "lr0 must be positive");
                assert!(
                    (0.0..=1.0).contains(&factor) && factor > 0.0,
                    "factor in (0, 1]"
                );
                assert!(every > 0, "every must be positive");
                lr0 * factor.powf((t / every) as f64)
            }
        }
    }
}

impl Default for LrSchedule {
    fn default() -> Self {
        LrSchedule::Constant { lr: 0.1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.5 };
        assert_eq!(s.at(0), 0.5);
        assert_eq!(s.at(1_000_000), 0.5);
    }

    #[test]
    fn inverse_time_decays_and_satisfies_doubling() {
        let s = LrSchedule::InverseTime { a: 1.0, b: 100.0 };
        assert!(s.at(0) > s.at(10));
        // The theory condition η_t ≤ 2 η_{t+T} for T ≤ b.
        for t in 0..200 {
            assert!(s.at(t) <= 2.0 * s.at(t + 100) + 1e-12, "violated at {t}");
        }
    }

    #[test]
    fn exponential_decays_geometrically() {
        let s = LrSchedule::Exponential {
            lr0: 1.0,
            gamma: 0.5,
        };
        assert!((s.at(1) - 0.5).abs() < 1e-12);
        assert!((s.at(3) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn step_decays_at_boundaries() {
        let s = LrSchedule::Step {
            lr0: 1.0,
            factor: 0.1,
            every: 10,
        };
        assert_eq!(s.at(9), 1.0);
        assert!((s.at(10) - 0.1).abs() < 1e-12);
        assert!((s.at(25) - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "a and b must be positive")]
    fn inverse_time_rejects_zero() {
        let _ = LrSchedule::InverseTime { a: 0.0, b: 1.0 }.at(0);
    }

    /// Property: every schedule stays positive and non-increasing over
    /// random steps (seeded random instances).
    #[test]
    fn all_schedules_positive_and_nonincreasing() {
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5ED);
        for _ in 0..500 {
            let t = rng.random_range(0..10_000u64);
            for s in [
                LrSchedule::Constant { lr: 0.1 },
                LrSchedule::InverseTime { a: 2.0, b: 50.0 },
                LrSchedule::Exponential {
                    lr0: 0.1,
                    gamma: 0.999,
                },
                LrSchedule::Step {
                    lr0: 0.1,
                    factor: 0.5,
                    every: 100,
                },
            ] {
                assert!(s.at(t) > 0.0);
                assert!(s.at(t + 1) <= s.at(t) + 1e-15);
            }
        }
    }
}
