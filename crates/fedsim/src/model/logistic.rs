//! Multinomial logistic regression (softmax classifier).

use crate::data::Dataset;
use crate::linalg::{argmax, softmax, Matrix, Vector};
use crate::model::Model;
use crate::rng::{fill_normal, seeded};

/// Multinomial logistic regression: `logits = W x + b`, softmax
/// cross-entropy loss with optional L2 regularization.
///
/// # Example
///
/// ```
/// use fedsim::model::{LogisticRegression, Model};
/// use fedsim::data::synth::{gaussian_blobs, BlobSpec};
///
/// let ds = gaussian_blobs(&BlobSpec::new(3, 4, 50), 0);
/// let model = LogisticRegression::new(4, 3);
/// assert_eq!(model.num_params(), 3 * 4 + 3);
/// let (loss, grad) = model.loss_grad(&ds, &[0, 1, 2]);
/// assert!(loss > 0.0);
/// assert_eq!(grad.len(), model.num_params());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Matrix, // num_classes x num_features
    bias: Vector,    // num_classes
    l2: f64,
}

impl LogisticRegression {
    /// Creates a zero-initialized classifier.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_features: usize, num_classes: usize) -> Self {
        assert!(num_features > 0, "num_features must be positive");
        assert!(num_classes > 0, "num_classes must be positive");
        LogisticRegression {
            weights: Matrix::zeros(num_classes, num_features),
            bias: vec![0.0; num_classes],
            l2: 0.0,
        }
    }

    /// Creates a classifier with small random Gaussian weights.
    pub fn new_random(num_features: usize, num_classes: usize, seed: u64) -> Self {
        let mut model = Self::new(num_features, num_classes);
        let mut rng = seeded(seed);
        fill_normal(&mut rng, model.weights.as_mut_slice(), 0.01);
        model
    }

    /// Sets the L2 regularization coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `l2 < 0`.
    pub fn with_l2(mut self, l2: f64) -> Self {
        assert!(l2 >= 0.0, "l2 must be non-negative");
        self.l2 = l2;
        self
    }

    /// Feature dimension.
    pub fn num_features(&self) -> usize {
        self.weights.cols()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.weights.rows()
    }

    /// Class probabilities for one example.
    pub fn probabilities(&self, x: &[f64]) -> Vector {
        let mut logits = self.weights.matvec(x);
        for (l, b) in logits.iter_mut().zip(self.bias.iter()) {
            *l += b;
        }
        softmax(&logits)
    }
}

impl Model for LogisticRegression {
    fn num_params(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn params(&self) -> Vector {
        let mut p = Vec::with_capacity(self.num_params());
        p.extend_from_slice(self.weights.as_slice());
        p.extend_from_slice(&self.bias);
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params(), "parameter length mismatch");
        let wlen = self.weights.len();
        self.weights.as_mut_slice().copy_from_slice(&params[..wlen]);
        self.bias.copy_from_slice(&params[wlen..]);
    }

    fn loss_grad(&self, data: &Dataset, indices: &[usize]) -> (f64, Vector) {
        assert!(!indices.is_empty(), "batch must be non-empty");
        let c = self.num_classes();
        let f = self.num_features();
        let mut grad_w = Matrix::zeros(c, f);
        let mut grad_b = vec![0.0; c];
        let mut loss = 0.0;
        let inv_n = 1.0 / indices.len() as f64;
        for &i in indices {
            let (x, y) = data.example(i);
            assert_eq!(x.len(), f, "feature dimension mismatch");
            let p = self.probabilities(x);
            loss -= (p[y].max(1e-300)).ln();
            // dL/dlogit_k = p_k - 1{k == y}
            for k in 0..c {
                let delta = (p[k] - if k == y { 1.0 } else { 0.0 }) * inv_n;
                grad_b[k] += delta;
                let row = grad_w.row_mut(k);
                for (g, &xv) in row.iter_mut().zip(x.iter()) {
                    *g += delta * xv;
                }
            }
        }
        loss *= inv_n;
        if self.l2 > 0.0 {
            loss += 0.5 * self.l2 * self.weights.as_slice().iter().map(|w| w * w).sum::<f64>();
            for (g, &w) in grad_w
                .as_mut_slice()
                .iter_mut()
                .zip(self.weights.as_slice().iter())
            {
                *g += self.l2 * w;
            }
        }
        let mut grad = Vec::with_capacity(self.num_params());
        grad.extend_from_slice(grad_w.as_slice());
        grad.extend_from_slice(&grad_b);
        (loss, grad)
    }

    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.probabilities(x)).expect("at least one class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth::{gaussian_blobs, linearly_separable, BlobSpec};
    use crate::model::numeric_gradient;

    #[test]
    fn param_roundtrip() {
        let mut m = LogisticRegression::new_random(5, 3, 1);
        let p = m.params();
        assert_eq!(p.len(), 18);
        let mut p2 = p.clone();
        p2[0] = 42.0;
        m.set_params(&p2);
        assert_eq!(m.params()[0], 42.0);
    }

    #[test]
    #[should_panic(expected = "parameter length mismatch")]
    fn set_params_validates_len() {
        let mut m = LogisticRegression::new(2, 2);
        m.set_params(&[0.0; 5]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = LogisticRegression::new_random(4, 5, 2);
        let p = m.probabilities(&[0.1, -0.3, 2.0, 0.0]);
        assert_eq!(p.len(), 5);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_model_uniform_loss() {
        // With zero weights, loss is ln(num_classes).
        let ds = gaussian_blobs(&BlobSpec::new(4, 3, 10), 3);
        let m = LogisticRegression::new(3, 4);
        let all: Vec<usize> = (0..ds.len()).collect();
        let (loss, _) = m.loss_grad(&ds, &all);
        assert!((loss - (4.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn analytic_gradient_matches_numeric() {
        let ds = gaussian_blobs(&BlobSpec::new(3, 4, 6), 5);
        let m = LogisticRegression::new_random(4, 3, 7).with_l2(0.01);
        let batch: Vec<usize> = (0..10).collect();
        let (_, ga) = m.loss_grad(&ds, &batch);
        let gn = numeric_gradient(&m, &ds, &batch, 1e-5);
        for (a, n) in ga.iter().zip(gn.iter()) {
            assert!((a - n).abs() < 1e-6, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let ds = gaussian_blobs(&BlobSpec::new(3, 5, 30), 8);
        let mut m = LogisticRegression::new(5, 3);
        let all: Vec<usize> = (0..ds.len()).collect();
        let (l0, _) = m.loss_grad(&ds, &all);
        for _ in 0..50 {
            let (_, g) = m.loss_grad(&ds, &all);
            let mut p = m.params();
            for (pi, gi) in p.iter_mut().zip(g.iter()) {
                *pi -= 0.5 * gi;
            }
            m.set_params(&p);
        }
        let (l1, _) = m.loss_grad(&ds, &all);
        assert!(l1 < l0 * 0.5, "loss {l0} -> {l1} did not halve");
    }

    #[test]
    fn learns_separable_data() {
        let ds = linearly_separable(3, 6, 400, 0.5, 21);
        let (train, test) = ds.split_at(300);
        let mut m = LogisticRegression::new(6, 3);
        let all: Vec<usize> = (0..train.len()).collect();
        for _ in 0..200 {
            let (_, g) = m.loss_grad(&train, &all);
            let mut p = m.params();
            for (pi, gi) in p.iter_mut().zip(g.iter()) {
                *pi -= 1.0 * gi;
            }
            m.set_params(&p);
        }
        let acc = m.accuracy(&test);
        assert!(acc > 0.85, "accuracy {acc} too low on separable data");
    }

    #[test]
    fn l2_shrinks_weights() {
        let ds = gaussian_blobs(&BlobSpec::new(2, 3, 20), 9);
        let all: Vec<usize> = (0..ds.len()).collect();
        let train = |l2: f64| {
            let mut m = LogisticRegression::new(3, 2).with_l2(l2);
            for _ in 0..100 {
                let (_, g) = m.loss_grad(&ds, &all);
                let mut p = m.params();
                for (pi, gi) in p.iter_mut().zip(g.iter()) {
                    *pi -= 0.5 * gi;
                }
                m.set_params(&p);
            }
            crate::linalg::norm2(&m.params())
        };
        assert!(train(1.0) < train(0.0));
    }

    #[test]
    fn accuracy_on_empty_dataset_is_zero() {
        let ds = gaussian_blobs(&BlobSpec::new(2, 3, 5), 1).subset(&[]);
        let m = LogisticRegression::new(3, 2);
        assert_eq!(m.accuracy(&ds), 0.0);
        assert_eq!(m.mean_loss(&ds), 0.0);
    }
}
