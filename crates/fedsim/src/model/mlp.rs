//! One-hidden-layer multilayer perceptron with ReLU activation.

use crate::data::Dataset;
use crate::linalg::{argmax, softmax, Matrix, Vector};
use crate::model::Model;
use crate::rng::{fill_normal, seeded};

/// A one-hidden-layer MLP: `logits = W2 · relu(W1 x + b1) + b2` trained with
/// softmax cross-entropy.
///
/// # Example
///
/// ```
/// use fedsim::model::{Mlp, Model};
/// let m = Mlp::new(8, 16, 3, 0);
/// assert_eq!(m.num_params(), 16 * 8 + 16 + 3 * 16 + 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    w1: Matrix, // hidden x features
    b1: Vector, // hidden
    w2: Matrix, // classes x hidden
    b2: Vector, // classes
}

impl Mlp {
    /// Creates an MLP with He-style random initialization.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(num_features: usize, hidden: usize, num_classes: usize, seed: u64) -> Self {
        assert!(num_features > 0 && hidden > 0 && num_classes > 0);
        let mut rng = seeded(seed);
        let mut w1 = Matrix::zeros(hidden, num_features);
        fill_normal(
            &mut rng,
            w1.as_mut_slice(),
            (2.0 / num_features as f64).sqrt(),
        );
        let mut w2 = Matrix::zeros(num_classes, hidden);
        fill_normal(&mut rng, w2.as_mut_slice(), (2.0 / hidden as f64).sqrt());
        Mlp {
            w1,
            b1: vec![0.0; hidden],
            w2,
            b2: vec![0.0; num_classes],
        }
    }

    /// Feature dimension.
    pub fn num_features(&self) -> usize {
        self.w1.cols()
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.w1.rows()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.w2.rows()
    }

    /// Forward pass: returns `(hidden_pre_activation, hidden, probabilities)`.
    fn forward(&self, x: &[f64]) -> (Vector, Vector, Vector) {
        let mut pre = self.w1.matvec(x);
        for (p, b) in pre.iter_mut().zip(self.b1.iter()) {
            *p += b;
        }
        let hidden: Vector = pre.iter().map(|&v| v.max(0.0)).collect();
        let mut logits = self.w2.matvec(&hidden);
        for (l, b) in logits.iter_mut().zip(self.b2.iter()) {
            *l += b;
        }
        (pre, hidden, softmax(&logits))
    }

    /// Class probabilities for one example.
    pub fn probabilities(&self, x: &[f64]) -> Vector {
        self.forward(x).2
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len()
    }

    fn params(&self) -> Vector {
        let mut p = Vec::with_capacity(self.num_params());
        p.extend_from_slice(self.w1.as_slice());
        p.extend_from_slice(&self.b1);
        p.extend_from_slice(self.w2.as_slice());
        p.extend_from_slice(&self.b2);
        p
    }

    fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params(), "parameter length mismatch");
        let mut off = 0;
        let w1len = self.w1.len();
        self.w1
            .as_mut_slice()
            .copy_from_slice(&params[off..off + w1len]);
        off += w1len;
        let b1len = self.b1.len();
        self.b1.copy_from_slice(&params[off..off + b1len]);
        off += b1len;
        let w2len = self.w2.len();
        self.w2
            .as_mut_slice()
            .copy_from_slice(&params[off..off + w2len]);
        off += w2len;
        self.b2.copy_from_slice(&params[off..]);
    }

    fn loss_grad(&self, data: &Dataset, indices: &[usize]) -> (f64, Vector) {
        assert!(!indices.is_empty(), "batch must be non-empty");
        let h = self.hidden();
        let c = self.num_classes();
        let f = self.num_features();
        let mut gw1 = Matrix::zeros(h, f);
        let mut gb1 = vec![0.0; h];
        let mut gw2 = Matrix::zeros(c, h);
        let mut gb2 = vec![0.0; c];
        let mut loss = 0.0;
        let inv_n = 1.0 / indices.len() as f64;

        for &i in indices {
            let (x, y) = data.example(i);
            assert_eq!(x.len(), f, "feature dimension mismatch");
            let (pre, hidden, p) = self.forward(x);
            loss -= (p[y].max(1e-300)).ln();

            // dL/dlogit_k = p_k - 1{k==y}
            let dlogits: Vector = (0..c)
                .map(|k| (p[k] - if k == y { 1.0 } else { 0.0 }) * inv_n)
                .collect();
            // Output layer gradients.
            for k in 0..c {
                gb2[k] += dlogits[k];
            }
            gw2.add_outer(1.0, &dlogits, &hidden);
            // Backprop through W2 and ReLU.
            let mut dhidden = self.w2.matvec_t(&dlogits);
            for (dh, &pr) in dhidden.iter_mut().zip(pre.iter()) {
                if pr <= 0.0 {
                    *dh = 0.0;
                }
            }
            for j in 0..h {
                gb1[j] += dhidden[j];
            }
            gw1.add_outer(1.0, &dhidden, x);
        }
        loss *= inv_n;

        let mut grad = Vec::with_capacity(self.num_params());
        grad.extend_from_slice(gw1.as_slice());
        grad.extend_from_slice(&gb1);
        grad.extend_from_slice(gw2.as_slice());
        grad.extend_from_slice(&gb2);
        (loss, grad)
    }

    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.probabilities(x)).expect("at least one class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth::{gaussian_blobs, two_spirals, BlobSpec, SpiralSpec};
    use crate::model::numeric_gradient;

    #[test]
    fn param_count_and_roundtrip() {
        let mut m = Mlp::new(4, 8, 3, 0);
        assert_eq!(m.num_params(), 8 * 4 + 8 + 3 * 8 + 3);
        let mut p = m.params();
        p[10] = 7.5;
        m.set_params(&p);
        assert_eq!(m.params()[10], 7.5);
    }

    #[test]
    fn probabilities_normalized() {
        let m = Mlp::new(3, 5, 4, 1);
        let p = m.probabilities(&[0.5, -1.0, 2.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn analytic_gradient_matches_numeric() {
        let ds = gaussian_blobs(&BlobSpec::new(3, 4, 5), 2);
        let m = Mlp::new(4, 6, 3, 3);
        let batch: Vec<usize> = (0..8).collect();
        let (_, ga) = m.loss_grad(&ds, &batch);
        let gn = numeric_gradient(&m, &ds, &batch, 1e-5);
        for (idx, (a, n)) in ga.iter().zip(gn.iter()).enumerate() {
            assert!(
                (a - n).abs() < 1e-5,
                "param {idx}: analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let ds = gaussian_blobs(&BlobSpec::new(3, 4, 20), 4);
        let mut m = Mlp::new(4, 10, 3, 5);
        let all: Vec<usize> = (0..ds.len()).collect();
        let (l0, _) = m.loss_grad(&ds, &all);
        for _ in 0..100 {
            let (_, g) = m.loss_grad(&ds, &all);
            let mut p = m.params();
            for (pi, gi) in p.iter_mut().zip(g.iter()) {
                *pi -= 0.3 * gi;
            }
            m.set_params(&p);
        }
        let (l1, _) = m.loss_grad(&ds, &all);
        assert!(l1 < l0 * 0.5, "loss {l0} -> {l1}");
    }

    #[test]
    fn solves_nonlinear_spirals_better_than_chance() {
        let spec = SpiralSpec {
            per_arm: 150,
            turns: 1.0,
            noise: 0.05,
        };
        let ds = two_spirals(&spec, 6);
        let mut m = Mlp::new(2, 48, 2, 7);
        let mut opt = crate::optim::Adam::new(0.02);
        use crate::optim::Optimizer;
        let all: Vec<usize> = (0..ds.len()).collect();
        for _ in 0..1000 {
            let (_, g) = m.loss_grad(&ds, &all);
            let mut p = m.params();
            opt.step(&mut p, &g);
            m.set_params(&p);
        }
        let acc = m.accuracy(&ds);
        assert!(acc > 0.85, "spiral accuracy {acc} too low");
    }
}
