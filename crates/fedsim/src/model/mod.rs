//! Differentiable classification models.

pub mod logistic;
pub mod mlp;

use crate::data::Dataset;
use crate::linalg::Vector;

pub use logistic::LogisticRegression;
pub use mlp::Mlp;

/// A differentiable classifier trained with first-order methods.
///
/// Parameters are exposed as a single flat vector so that federated
/// aggregation and optimizers operate uniformly over any model.
///
/// `Send + Sync` are supertraits so a global model can be shared by
/// reference with the worker threads that train selected clients in
/// parallel (see [`crate::training::FederatedRun::round_on`]); models are
/// plain parameter holders, so the bounds are automatic.
pub trait Model: Clone + Send + Sync {
    /// Total number of trainable parameters.
    fn num_params(&self) -> usize;

    /// Flattens all parameters into one vector.
    fn params(&self) -> Vector;

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()`.
    fn set_params(&mut self, params: &[f64]);

    /// Mean cross-entropy loss and flat gradient over the given examples.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or feature dimensions mismatch.
    fn loss_grad(&self, data: &Dataset, indices: &[usize]) -> (f64, Vector);

    /// Predicted class for a single feature row.
    fn predict(&self, x: &[f64]) -> usize;

    /// Mean loss over the whole dataset (no gradient).
    fn mean_loss(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let all: Vec<usize> = (0..data.len()).collect();
        self.loss_grad(data, &all).0
    }

    /// Classification accuracy over the whole dataset.
    fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.example(i);
                self.predict(x) == y
            })
            .count();
        correct as f64 / data.len() as f64
    }
}

/// Numerically estimates the gradient with central differences; test helper
/// for validating analytic gradients of [`Model`] implementations.
pub fn numeric_gradient<M: Model>(
    model: &M,
    data: &Dataset,
    indices: &[usize],
    eps: f64,
) -> Vector {
    let base = model.params();
    let mut grad = vec![0.0; base.len()];
    for j in 0..base.len() {
        let mut plus = model.clone();
        let mut p = base.clone();
        p[j] += eps;
        plus.set_params(&p);
        let mut minus = model.clone();
        p[j] = base[j] - eps;
        minus.set_params(&p);
        let (lp, _) = plus.loss_grad(data, indices);
        let (lm, _) = minus.loss_grad(data, indices);
        grad[j] = (lp - lm) / (2.0 * eps);
    }
    grad
}
