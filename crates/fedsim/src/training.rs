//! The federated round loop with a pluggable participant set.
//!
//! Incentive mechanisms (the point of this repository) decide *who trains*
//! each round; [`FederatedRun::round`] accepts that decision and executes
//! local training plus FedAvg aggregation.

use crate::client::{ClientUpdate, LocalTrainer, LocalTrainerConfig};
use crate::data::{ClientData, Dataset};
use crate::model::Model;
use crate::rng::derive_seed;
use crate::server::FedAvgServer;

/// Configuration of a federated training run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunConfig {
    /// Local training configuration shared by all clients.
    pub local: LocalTrainerConfig,
    /// Root seed: all round/client randomness derives from it.
    pub seed: u64,
}

/// Telemetry for one federated round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Round index (1-based after the first call).
    pub round: usize,
    /// Clients that were asked to train.
    pub participants: Vec<usize>,
    /// Mean local training loss across weighted participants.
    pub mean_train_loss: f64,
    /// Total examples that contributed to aggregation.
    pub total_examples: usize,
    /// Whether the global model changed.
    pub model_changed: bool,
}

/// A federated training run: global model + client shards.
#[derive(Debug, Clone)]
pub struct FederatedRun<M> {
    server: FedAvgServer<M>,
    trainers: Vec<LocalTrainer>,
    global_data: Dataset,
    config: RunConfig,
}

impl<M: Model> FederatedRun<M> {
    /// Creates a run from a model, the partition, and the global dataset
    /// (kept for shard materialization and evaluation).
    pub fn new(model: M, parts: Vec<ClientData>, global_data: Dataset, config: RunConfig) -> Self {
        let trainers = parts
            .iter()
            .map(|p| LocalTrainer::new(p.client_id, p.dataset(&global_data), config.local))
            .collect();
        FederatedRun {
            server: FedAvgServer::new(model),
            trainers,
            global_data,
            config,
        }
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.trainers.len()
    }

    /// Borrow of the current global model.
    pub fn model(&self) -> &M {
        self.server.model()
    }

    /// Number of rounds executed.
    pub fn round_index(&self) -> usize {
        self.server.round()
    }

    /// Shard sizes per client (FedAvg weights and the auction's "data size").
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.trainers.iter().map(|t| t.num_examples()).collect()
    }

    /// Borrow of the global dataset.
    pub fn global_data(&self) -> &Dataset {
        &self.global_data
    }

    /// Executes one federated round with the given participant set and
    /// returns telemetry. Unknown client ids are ignored.
    ///
    /// Selected clients train in parallel on [`par::Pool::auto`]; use
    /// [`FederatedRun::round_on`] to pin the worker count. Every client's
    /// minibatch stream derives from its own `(root seed, round, client)`
    /// seed and aggregation runs in participant order, so the resulting
    /// global model is bit-identical at any worker count.
    pub fn round(&mut self, participants: &[usize]) -> RoundReport {
        self.round_on(participants, par::Pool::auto())
    }

    /// [`FederatedRun::round`] with an explicit worker pool for the
    /// participants' independent local training runs.
    pub fn round_on(&mut self, participants: &[usize], pool: par::Pool) -> RoundReport {
        let round = self.server.round() + 1;
        let valid: Vec<usize> = participants
            .iter()
            .copied()
            .filter(|&cid| cid < self.trainers.len())
            .collect();
        let trainers = &self.trainers;
        let global = self.server.model();
        let root_seed = self.config.seed;
        let updates: Vec<ClientUpdate> = pool.map(&valid, |&cid| {
            let seed = derive_seed(root_seed, (round as u64) << 32 | cid as u64);
            trainers[cid].train(global, seed)
        });
        let total_examples: usize = updates.iter().map(|u| u.num_examples).sum();
        let mean_train_loss = if total_examples > 0 {
            updates
                .iter()
                .map(|u| u.train_loss * u.num_examples as f64)
                .sum::<f64>()
                / total_examples as f64
        } else {
            0.0
        };
        let model_changed = self.server.aggregate(&updates);
        RoundReport {
            round,
            participants: updates.iter().map(|u| u.client_id).collect(),
            mean_train_loss,
            total_examples,
            model_changed,
        }
    }

    /// Accuracy of the current global model on the given dataset.
    pub fn evaluate(&self, data: &Dataset) -> f64 {
        self.server.model().accuracy(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::partition::{partition, PartitionStrategy};
    use crate::data::synth::{gaussian_blobs, BlobSpec};
    use crate::model::LogisticRegression;
    use crate::optim::OptimizerKind;

    fn setup(num_clients: usize) -> (FederatedRun<LogisticRegression>, Dataset) {
        let ds = gaussian_blobs(&BlobSpec::new(3, 6, 120), 5);
        let (train, test) = ds.split_at(270);
        let parts = partition(&train, num_clients, PartitionStrategy::Iid, 5);
        let model = LogisticRegression::new(6, 3);
        let config = RunConfig {
            local: LocalTrainerConfig {
                local_epochs: 2,
                batch_size: 16,
                optimizer: OptimizerKind::Sgd { lr: 0.3 },
                ..LocalTrainerConfig::default()
            },
            seed: 11,
        };
        (FederatedRun::new(model, parts, train, config), test)
    }

    #[test]
    fn full_participation_learns() {
        let (mut run, test) = setup(6);
        let before = run.evaluate(&test);
        let participants: Vec<usize> = (0..6).collect();
        for _ in 0..15 {
            run.round(&participants);
        }
        let after = run.evaluate(&test);
        assert!(
            after > before + 0.2,
            "accuracy {before} -> {after} did not improve enough"
        );
    }

    #[test]
    fn empty_participation_keeps_model() {
        let (mut run, _) = setup(4);
        let before = run.model().params();
        let report = run.round(&[]);
        assert!(!report.model_changed);
        assert_eq!(report.total_examples, 0);
        assert_eq!(run.model().params(), before);
        assert_eq!(run.round_index(), 1);
    }

    #[test]
    fn unknown_ids_ignored() {
        let (mut run, _) = setup(3);
        let report = run.round(&[0, 99]);
        assert_eq!(report.participants, vec![0]);
    }

    #[test]
    fn reports_track_round_index() {
        let (mut run, _) = setup(3);
        let r1 = run.round(&[0]);
        let r2 = run.round(&[1]);
        assert_eq!(r1.round, 1);
        assert_eq!(r2.round, 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut a, _) = setup(4);
        let (mut b, _) = setup(4);
        for _ in 0..3 {
            a.round(&[0, 1, 2, 3]);
            b.round(&[0, 1, 2, 3]);
        }
        assert_eq!(a.model().params(), b.model().params());
    }

    #[test]
    fn shard_sizes_sum_to_dataset() {
        let (run, _) = setup(7);
        let total: usize = run.shard_sizes().iter().sum();
        assert_eq!(total, 270);
        assert_eq!(run.num_clients(), 7);
    }

    #[test]
    fn partial_participation_still_learns() {
        let (mut run, test) = setup(10);
        for r in 0..30 {
            // Rotate through client pairs.
            let a = r % 10;
            let b = (r + 5) % 10;
            run.round(&[a, b]);
        }
        let acc = run.evaluate(&test);
        assert!(acc > 0.6, "rotating participation accuracy {acc}");
    }
}
