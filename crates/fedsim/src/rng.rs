//! Reproducible randomness helpers.
//!
//! All stochastic components of the simulator accept a seed and construct an
//! [`simrng::rngs::StdRng`] through [`seeded`], so that every experiment in the
//! benchmark harness is exactly reproducible. Gaussian sampling is provided
//! via the Box–Muller transform to avoid an extra dependency.

use simrng::rngs::StdRng;
use simrng::{Rng, RngExt, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Example
///
/// ```
/// use simrng::RngExt;
/// let mut a = fedsim::rng::seeded(42);
/// let mut b = fedsim::rng::seeded(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a base seed and a stream index.
///
/// Used to give each client/process its own independent stream while keeping
/// the whole experiment reproducible from a single root seed.
pub use simrng::derive_seed;

/// Samples a standard normal value using the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gaussian()
}

/// Samples a normal value with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative.
pub fn normal_with<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    rng.gaussian_with(mean, std_dev)
}

/// Samples a log-normal value whose underlying normal has the given
/// parameters.
///
/// # Panics
///
/// Panics if `sigma` is negative.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal_with(rng, mu, sigma).exp()
}

/// Samples an exponential value with the given rate parameter.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / rate
}

/// Fills a slice with i.i.d. normal values scaled by `std_dev`.
pub fn fill_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64], std_dev: f64) {
    for v in out {
        *v = std_dev * normal(rng);
    }
}

/// Returns a uniformly random permutation of `0..n` (Fisher–Yates).
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    idx
}

/// Samples `k` distinct indices from `0..n` uniformly at random.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from a population of {n}");
    // Partial Fisher–Yates: O(n) memory but only k swaps.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Samples an index from a (not necessarily normalized) non-negative weight
/// vector.
///
/// # Panics
///
/// Panics if weights are empty, contain negatives, or sum to zero.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0, "weights must be non-negative");
            w
        })
        .sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Samples from a symmetric Dirichlet distribution with concentration
/// `alpha` over `k` categories.
///
/// Uses the Gamma-sampling construction with Marsaglia–Tsang for shape ≥ 1
/// and the boost trick for shape < 1.
///
/// # Panics
///
/// Panics if `alpha <= 0` or `k == 0`.
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    assert!(alpha > 0.0, "alpha must be positive");
    assert!(k > 0, "k must be positive");
    let mut draws: Vec<f64> = (0..k).map(|_| gamma(rng, alpha)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Numerically degenerate (tiny alpha): fall back to a one-hot draw,
        // which is the correct limit of Dirichlet(alpha → 0).
        let hot = rng.random_range(0..k);
        draws = vec![0.0; k];
        draws[hot] = 1.0;
        return draws;
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

/// Samples from Gamma(shape, scale = 1).
///
/// # Panics
///
/// Panics if `shape <= 0`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}.
        let u: f64 = 1.0 - rng.random::<f64>();
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    // Marsaglia–Tsang squeeze method.
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = 1.0 - rng.random::<f64>();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(1);
        let mut b = seeded(1);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn derive_seed_varies_by_stream() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        assert_ne!(s0, s1);
        assert_eq!(derive_seed(42, 1), s1);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = seeded(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn normal_with_shifts_and_scales() {
        let mut rng = seeded(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal_with(&mut rng, 3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = seeded(11);
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = seeded(13);
        for _ in 0..1000 {
            assert!(lognormal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(3);
        let p = permutation(&mut rng, 100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut rng = seeded(5);
        let s = sample_without_replacement(&mut rng, 50, 20);
        assert_eq!(s.len(), 20);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_without_replacement_rejects_oversample() {
        let mut rng = seeded(5);
        let _ = sample_without_replacement(&mut rng, 3, 4);
    }

    #[test]
    fn sample_weighted_prefers_heavy_weight() {
        let mut rng = seeded(17);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_weighted(&mut rng, &[1.0, 0.0, 9.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac = counts[2] as f64 / 30_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = seeded(19);
        for &alpha in &[0.1, 0.5, 1.0, 10.0] {
            let p = dirichlet(&mut rng, alpha, 8);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "alpha {alpha} sum {sum}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_concentration_effect() {
        // Small alpha => spiky distributions (max component close to 1).
        let mut rng = seeded(23);
        let spiky: f64 = (0..200)
            .map(|_| {
                dirichlet(&mut rng, 0.05, 10)
                    .into_iter()
                    .fold(0.0, f64::max)
            })
            .sum::<f64>()
            / 200.0;
        let flat: f64 = (0..200)
            .map(|_| {
                dirichlet(&mut rng, 100.0, 10)
                    .into_iter()
                    .fold(0.0, f64::max)
            })
            .sum::<f64>()
            / 200.0;
        assert!(
            spiky > 0.6,
            "low concentration should be spiky, got {spiky}"
        );
        assert!(flat < 0.2, "high concentration should be flat, got {flat}");
        assert!(spiky > flat + 0.3);
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = seeded(29);
        let n = 30_000;
        let mean = (0..n).map(|_| gamma(&mut rng, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn fill_normal_fills_all() {
        let mut rng = seeded(31);
        let mut buf = vec![0.0; 64];
        fill_normal(&mut rng, &mut buf, 0.1);
        assert!(buf.iter().any(|&v| v != 0.0));
    }
}
