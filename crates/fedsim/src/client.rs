//! Local training performed by one federated client.

use crate::data::Dataset;
use crate::linalg::{norm2, sub, Vector};
use crate::model::Model;
use crate::optim::OptimizerKind;
use crate::rng::{sample_without_replacement, seeded};
use crate::schedule::LrSchedule;

/// Configuration of a client's local training procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalTrainerConfig {
    /// Number of local passes (epochs) over the shard per round.
    pub local_epochs: usize,
    /// Minibatch size; clipped to the shard size.
    pub batch_size: usize,
    /// Optimizer used for local steps.
    pub optimizer: OptimizerKind,
    /// When set, overrides the SGD learning rate per *global round* with a
    /// diminishing schedule (the convergence theory's `η_t`). Only applies
    /// when `optimizer` is [`OptimizerKind::Sgd`].
    pub lr_schedule: Option<LrSchedule>,
    /// Clip each minibatch gradient to this L2 norm (`None` = no clipping).
    pub clip_norm: Option<f64>,
    /// FedProx proximal coefficient `μ ≥ 0`: adds `μ·(w − w_global)` to
    /// every local gradient, pulling local models toward the global one
    /// under non-IID drift. 0 disables it (plain FedAvg).
    pub prox_mu: f64,
}

impl Default for LocalTrainerConfig {
    fn default() -> Self {
        LocalTrainerConfig {
            local_epochs: 1,
            batch_size: 32,
            optimizer: OptimizerKind::Sgd { lr: 0.1 },
            lr_schedule: None,
            clip_norm: None,
            prox_mu: 0.0,
        }
    }
}

/// The result a client uploads after local training.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUpdate {
    /// Client identifier.
    pub client_id: usize,
    /// Locally trained parameters (full model, not a delta).
    pub params: Vector,
    /// Number of local examples (FedAvg weight).
    pub num_examples: usize,
    /// Mean training loss over the local steps.
    pub train_loss: f64,
    /// L2 norm of the parameter change, a proxy for update magnitude.
    pub update_norm: f64,
    /// Number of gradient steps performed.
    pub steps: usize,
}

/// Runs local training for one client.
#[derive(Debug, Clone)]
pub struct LocalTrainer {
    client_id: usize,
    shard: Dataset,
    config: LocalTrainerConfig,
}

impl LocalTrainer {
    /// Creates a trainer over the client's local shard.
    pub fn new(client_id: usize, shard: Dataset, config: LocalTrainerConfig) -> Self {
        LocalTrainer {
            client_id,
            shard,
            config,
        }
    }

    /// Client identifier.
    pub fn client_id(&self) -> usize {
        self.client_id
    }

    /// Number of local examples.
    pub fn num_examples(&self) -> usize {
        self.shard.len()
    }

    /// Borrow of the local shard.
    pub fn shard(&self) -> &Dataset {
        &self.shard
    }

    /// Performs local training starting from the global model and returns
    /// the update. `round_seed` decorrelates minibatch sampling across
    /// rounds while staying reproducible.
    ///
    /// Clients with empty shards return the global parameters unchanged with
    /// zero weight.
    pub fn train<M: Model>(&self, global: &M, round_seed: u64) -> ClientUpdate {
        self.train_at(global, round_seed, 0)
    }

    /// [`LocalTrainer::train`] with an explicit global round index, used by
    /// the learning-rate schedule (`η_round`).
    pub fn train_at<M: Model>(&self, global: &M, round_seed: u64, round: u64) -> ClientUpdate {
        let start = global.params();
        if self.shard.is_empty() {
            return ClientUpdate {
                client_id: self.client_id,
                params: start.clone(),
                num_examples: 0,
                train_loss: 0.0,
                update_norm: 0.0,
                steps: 0,
            };
        }
        let mut model = global.clone();
        let optimizer_kind = match (self.config.lr_schedule, self.config.optimizer) {
            (Some(schedule), OptimizerKind::Sgd { .. }) => OptimizerKind::Sgd {
                lr: schedule.at(round),
            },
            _ => self.config.optimizer,
        };
        let mut opt = optimizer_kind.build();
        let mut rng = seeded(round_seed);
        let n = self.shard.len();
        let batch = self.config.batch_size.clamp(1, n);
        let steps_per_epoch = n.div_ceil(batch);
        let mut loss_sum = 0.0;
        let mut steps = 0usize;
        for _ in 0..self.config.local_epochs.max(1) {
            for _ in 0..steps_per_epoch {
                let idx = sample_without_replacement(&mut rng, n, batch);
                let (loss, mut grad) = model.loss_grad(&self.shard, &idx);
                let mut p = model.params();
                // FedProx proximal term: μ·(w − w_global).
                if self.config.prox_mu > 0.0 {
                    for ((g, &w), &w0) in grad.iter_mut().zip(p.iter()).zip(start.iter()) {
                        *g += self.config.prox_mu * (w - w0);
                    }
                }
                // Gradient clipping.
                if let Some(clip) = self.config.clip_norm {
                    let gnorm = norm2(&grad);
                    if gnorm > clip {
                        let scale = clip / gnorm;
                        for g in &mut grad {
                            *g *= scale;
                        }
                    }
                }
                opt.step(&mut p, &grad);
                model.set_params(&p);
                loss_sum += loss;
                steps += 1;
            }
        }
        let params = model.params();
        let update_norm = norm2(&sub(&params, &start));
        ClientUpdate {
            client_id: self.client_id,
            params,
            num_examples: n,
            train_loss: loss_sum / steps.max(1) as f64,
            update_norm,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth::{gaussian_blobs, BlobSpec};
    use crate::model::LogisticRegression;

    fn shard() -> Dataset {
        gaussian_blobs(&BlobSpec::new(3, 4, 30), 1)
    }

    #[test]
    fn train_improves_local_loss() {
        let ds = shard();
        let trainer = LocalTrainer::new(
            0,
            ds.clone(),
            LocalTrainerConfig {
                local_epochs: 5,
                batch_size: 16,
                optimizer: OptimizerKind::Sgd { lr: 0.5 },
                ..LocalTrainerConfig::default()
            },
        );
        let global = LogisticRegression::new(4, 3);
        let before = global.mean_loss(&ds);
        let update = trainer.train(&global, 7);
        let mut after_model = global.clone();
        after_model.set_params(&update.params);
        let after = after_model.mean_loss(&ds);
        assert!(after < before, "{before} -> {after}");
        assert_eq!(update.num_examples, 90);
        assert!(update.update_norm > 0.0);
        assert!(update.steps > 0);
    }

    #[test]
    fn empty_shard_returns_global_unchanged() {
        let ds = shard().subset(&[]);
        let trainer = LocalTrainer::new(3, ds, LocalTrainerConfig::default());
        let global = LogisticRegression::new_random(4, 3, 2);
        let update = trainer.train(&global, 1);
        assert_eq!(update.params, global.params());
        assert_eq!(update.num_examples, 0);
        assert_eq!(update.update_norm, 0.0);
        assert_eq!(update.steps, 0);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let ds = shard();
        let trainer = LocalTrainer::new(0, ds, LocalTrainerConfig::default());
        let global = LogisticRegression::new(4, 3);
        let a = trainer.train(&global, 42);
        let b = trainer.train(&global, 42);
        assert_eq!(a, b);
        let c = trainer.train(&global, 43);
        assert_ne!(a.params, c.params);
    }

    #[test]
    fn batch_size_clipped_to_shard() {
        let ds = shard().subset(&[0, 1, 2]);
        let trainer = LocalTrainer::new(
            0,
            ds,
            LocalTrainerConfig {
                local_epochs: 1,
                batch_size: 1000,
                optimizer: OptimizerKind::Sgd { lr: 0.1 },
                ..LocalTrainerConfig::default()
            },
        );
        let global = LogisticRegression::new(4, 3);
        let update = trainer.train(&global, 0);
        assert_eq!(update.steps, 1); // one batch covering the whole shard
    }

    #[test]
    fn lr_schedule_decays_update_magnitude() {
        let ds = shard();
        let config = LocalTrainerConfig {
            local_epochs: 1,
            batch_size: 90,
            optimizer: OptimizerKind::Sgd { lr: 99.0 }, // overridden
            lr_schedule: Some(crate::schedule::LrSchedule::InverseTime { a: 10.0, b: 10.0 }),
            ..LocalTrainerConfig::default()
        };
        let trainer = LocalTrainer::new(0, ds, config);
        let global = LogisticRegression::new(4, 3);
        let early = trainer.train_at(&global, 1, 0);
        let late = trainer.train_at(&global, 1, 1000);
        assert!(
            late.update_norm < early.update_norm * 0.2,
            "late {} vs early {}",
            late.update_norm,
            early.update_norm
        );
    }

    #[test]
    fn clipping_bounds_single_step_update() {
        let ds = shard();
        let clip = 0.01;
        let config = LocalTrainerConfig {
            local_epochs: 1,
            batch_size: 90, // one step per epoch
            optimizer: OptimizerKind::Sgd { lr: 1.0 },
            clip_norm: Some(clip),
            ..LocalTrainerConfig::default()
        };
        let trainer = LocalTrainer::new(0, ds, config);
        let global = LogisticRegression::new(4, 3);
        let update = trainer.train(&global, 3);
        // One SGD step of lr 1.0 on a clipped gradient moves at most `clip`.
        assert!(
            update.update_norm <= clip + 1e-9,
            "norm {}",
            update.update_norm
        );
    }

    #[test]
    fn prox_term_shrinks_drift() {
        let ds = shard();
        let mk = |mu: f64| LocalTrainerConfig {
            local_epochs: 10,
            batch_size: 16,
            optimizer: OptimizerKind::Sgd { lr: 0.5 },
            prox_mu: mu,
            ..LocalTrainerConfig::default()
        };
        let global = LogisticRegression::new_random(4, 3, 5);
        let plain = LocalTrainer::new(0, ds.clone(), mk(0.0)).train(&global, 7);
        let prox = LocalTrainer::new(0, ds, mk(2.0)).train(&global, 7);
        assert!(
            prox.update_norm < plain.update_norm,
            "prox {} should drift less than plain {}",
            prox.update_norm,
            plain.update_norm
        );
    }

    #[test]
    fn more_epochs_means_more_steps() {
        let ds = shard();
        let mk = |epochs| {
            LocalTrainer::new(
                0,
                ds.clone(),
                LocalTrainerConfig {
                    local_epochs: epochs,
                    batch_size: 30,
                    optimizer: OptimizerKind::Sgd { lr: 0.1 },
                    ..LocalTrainerConfig::default()
                },
            )
        };
        let global = LogisticRegression::new(4, 3);
        let s1 = mk(1).train(&global, 0).steps;
        let s3 = mk(3).train(&global, 0).steps;
        assert_eq!(s3, 3 * s1);
    }
}
