//! Datasets, synthetic generators, and federated partitioners.

pub mod dataset;
pub mod partition;
pub mod synth;

pub use dataset::Dataset;
pub use partition::{partition, ClientData, PartitionStrategy};
