//! Federated data partitioners: IID and non-IID (Dirichlet, shards, quantity
//! skew).

use crate::data::dataset::Dataset;
use crate::rng::{self, seeded};

/// The local shard of one client: indices into the global dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientData {
    /// Client index in `0..num_clients`.
    pub client_id: usize,
    /// Indices of this client's examples in the global dataset.
    pub indices: Vec<usize>,
}

impl ClientData {
    /// Number of local examples.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the client has no data.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Materializes the local dataset.
    pub fn dataset(&self, global: &Dataset) -> Dataset {
        global.subset(&self.indices)
    }
}

/// How to split a dataset across clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionStrategy {
    /// Shuffle and split evenly: every client sees the global distribution.
    Iid,
    /// Label-skew non-IID split: each client's class mix is drawn from a
    /// symmetric Dirichlet with this concentration (smaller = more skewed).
    Dirichlet {
        /// Dirichlet concentration parameter (`alpha > 0`).
        alpha: f64,
    },
    /// Pathological shard split from the FedAvg paper: sort by label, cut
    /// into `shards_per_client * num_clients` shards, deal shards randomly.
    Shards {
        /// Number of label shards per client (typically 2).
        shards_per_client: usize,
    },
    /// IID label distribution but client sizes follow a power law with this
    /// exponent (larger = more unequal).
    QuantitySkew {
        /// Power-law exponent (`>= 0`; 0 = uniform sizes).
        exponent: f64,
    },
}

/// Partitions `dataset` into `num_clients` local shards.
///
/// Every example is assigned to exactly one client; clients may end up empty
/// under extreme skew (callers should handle empty shards).
///
/// # Panics
///
/// Panics if `num_clients == 0`, the dataset is empty, or a strategy
/// parameter is out of domain.
pub fn partition(
    dataset: &Dataset,
    num_clients: usize,
    strategy: PartitionStrategy,
    seed: u64,
) -> Vec<ClientData> {
    assert!(num_clients > 0, "num_clients must be positive");
    assert!(!dataset.is_empty(), "cannot partition an empty dataset");
    let mut rng = seeded(seed);
    let n = dataset.len();

    let assignment: Vec<Vec<usize>> = match strategy {
        PartitionStrategy::Iid => {
            let perm = rng::permutation(&mut rng, n);
            let mut shards = vec![Vec::new(); num_clients];
            for (pos, idx) in perm.into_iter().enumerate() {
                shards[pos % num_clients].push(idx);
            }
            shards
        }
        PartitionStrategy::Dirichlet { alpha } => {
            assert!(alpha > 0.0, "dirichlet alpha must be positive");
            // For each class, split its examples across clients with
            // Dirichlet-sampled proportions.
            let mut shards = vec![Vec::new(); num_clients];
            let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes()];
            for (i, &l) in dataset.labels().iter().enumerate() {
                by_class[l].push(i);
            }
            for class_indices in by_class {
                if class_indices.is_empty() {
                    continue;
                }
                let props = rng::dirichlet(&mut rng, alpha, num_clients);
                // Convert proportions to cut points over the class examples.
                let m = class_indices.len();
                let perm = rng::permutation(&mut rng, m);
                let mut cursor = 0usize;
                let mut remaining = m;
                let mut mass_left = 1.0f64;
                for (c, &p) in props.iter().enumerate() {
                    let take = if c + 1 == num_clients {
                        remaining
                    } else {
                        // Round the share of remaining mass.
                        let share = if mass_left > 0.0 { p / mass_left } else { 0.0 };
                        ((remaining as f64) * share).round().min(remaining as f64) as usize
                    };
                    for k in 0..take {
                        shards[c].push(class_indices[perm[cursor + k]]);
                    }
                    cursor += take;
                    remaining -= take;
                    mass_left -= p;
                    if remaining == 0 {
                        break;
                    }
                }
            }
            shards
        }
        PartitionStrategy::Shards { shards_per_client } => {
            assert!(shards_per_client > 0, "shards_per_client must be positive");
            let total_shards = shards_per_client * num_clients;
            // Sort example indices by label, then split contiguously.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| dataset.labels()[i]);
            let shard_size = n.div_ceil(total_shards);
            let mut shard_list: Vec<Vec<usize>> = order
                .chunks(shard_size.max(1))
                .map(|c| c.to_vec())
                .collect();
            // Deal shards to clients in random order.
            let perm = rng::permutation(&mut rng, shard_list.len());
            let mut shards = vec![Vec::new(); num_clients];
            for (deal, &shard_idx) in perm.iter().enumerate() {
                shards[deal % num_clients].append(&mut shard_list[shard_idx]);
            }
            shards
        }
        PartitionStrategy::QuantitySkew { exponent } => {
            assert!(exponent >= 0.0, "quantity-skew exponent must be >= 0");
            let perm = rng::permutation(&mut rng, n);
            // Weight client c proportionally to (c+1)^-exponent, shuffled so
            // the big clients land at random ids.
            let mut weights: Vec<f64> = (0..num_clients)
                .map(|c| ((c + 1) as f64).powf(-exponent))
                .collect();
            let wperm = rng::permutation(&mut rng, num_clients);
            weights = wperm.iter().map(|&i| weights[i]).collect();
            let total: f64 = weights.iter().sum();
            let mut sizes: Vec<usize> = weights
                .iter()
                .map(|w| ((w / total) * n as f64).floor() as usize)
                .collect();
            // Distribute the rounding remainder.
            let assigned: usize = sizes.iter().sum();
            for k in 0..n - assigned {
                sizes[k % num_clients] += 1;
            }
            let mut shards = vec![Vec::new(); num_clients];
            let mut cursor = 0;
            for (c, &sz) in sizes.iter().enumerate() {
                shards[c].extend_from_slice(&perm[cursor..cursor + sz]);
                cursor += sz;
            }
            shards
        }
    };

    assignment
        .into_iter()
        .enumerate()
        .map(|(client_id, indices)| ClientData { client_id, indices })
        .collect()
}

/// Measures label-distribution heterogeneity of a partition: the mean total
/// variation distance between each client's class distribution and the
/// global class distribution (0 = perfectly IID, → 1 = disjoint labels).
pub fn heterogeneity(dataset: &Dataset, parts: &[ClientData]) -> f64 {
    let global_hist = dataset.class_histogram();
    let n = dataset.len() as f64;
    let global: Vec<f64> = global_hist.iter().map(|&c| c as f64 / n).collect();
    let mut total = 0.0;
    let mut counted = 0usize;
    for part in parts {
        if part.is_empty() {
            continue;
        }
        let mut hist = vec![0usize; dataset.num_classes()];
        for &i in &part.indices {
            hist[dataset.labels()[i]] += 1;
        }
        let local_n = part.len() as f64;
        let tv: f64 = hist
            .iter()
            .zip(global.iter())
            .map(|(&h, &g)| ((h as f64 / local_n) - g).abs())
            .sum::<f64>()
            / 2.0;
        total += tv;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth::{gaussian_blobs, BlobSpec};

    fn ds() -> Dataset {
        gaussian_blobs(&BlobSpec::new(4, 3, 100), 11)
    }

    fn assert_exact_cover(parts: &[ClientData], n: usize) {
        let mut all: Vec<usize> = parts.iter().flat_map(|p| p.indices.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "not an exact cover");
    }

    #[test]
    fn iid_covers_and_balances() {
        let d = ds();
        let parts = partition(&d, 8, PartitionStrategy::Iid, 1);
        assert_eq!(parts.len(), 8);
        assert_exact_cover(&parts, d.len());
        for p in &parts {
            assert_eq!(p.len(), 50);
        }
    }

    #[test]
    fn dirichlet_covers_all_examples() {
        let d = ds();
        for alpha in [0.1, 1.0, 10.0] {
            let parts = partition(&d, 10, PartitionStrategy::Dirichlet { alpha }, 2);
            assert_exact_cover(&parts, d.len());
        }
    }

    #[test]
    fn dirichlet_skew_increases_heterogeneity() {
        let d = ds();
        let skewed = partition(&d, 10, PartitionStrategy::Dirichlet { alpha: 0.05 }, 3);
        let flat = partition(&d, 10, PartitionStrategy::Dirichlet { alpha: 100.0 }, 3);
        let h_skewed = heterogeneity(&d, &skewed);
        let h_flat = heterogeneity(&d, &flat);
        assert!(
            h_skewed > h_flat + 0.1,
            "skewed {h_skewed} should exceed flat {h_flat}"
        );
    }

    #[test]
    fn iid_heterogeneity_is_low() {
        let d = ds();
        let parts = partition(&d, 4, PartitionStrategy::Iid, 4);
        assert!(heterogeneity(&d, &parts) < 0.15);
    }

    #[test]
    fn shards_cover_and_skew() {
        let d = ds();
        let parts = partition(
            &d,
            10,
            PartitionStrategy::Shards {
                shards_per_client: 2,
            },
            5,
        );
        assert_exact_cover(&parts, d.len());
        // Shard partition with 2 shards/client over 4 classes must be skewed.
        assert!(heterogeneity(&d, &parts) > 0.2);
    }

    #[test]
    fn quantity_skew_sizes_unequal_but_cover() {
        let d = ds();
        let parts = partition(&d, 10, PartitionStrategy::QuantitySkew { exponent: 1.5 }, 6);
        assert_exact_cover(&parts, d.len());
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max > 2 * min.max(1), "sizes {sizes:?} not skewed enough");
    }

    #[test]
    fn quantity_skew_zero_exponent_balanced() {
        let d = ds();
        let parts = partition(&d, 8, PartitionStrategy::QuantitySkew { exponent: 0.0 }, 7);
        assert_exact_cover(&parts, d.len());
        for p in &parts {
            assert_eq!(p.len(), 50);
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let d = ds();
        let a = partition(&d, 5, PartitionStrategy::Dirichlet { alpha: 0.5 }, 9);
        let b = partition(&d, 5, PartitionStrategy::Dirichlet { alpha: 0.5 }, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn client_data_dataset_materializes() {
        let d = ds();
        let parts = partition(&d, 4, PartitionStrategy::Iid, 10);
        let local = parts[0].dataset(&d);
        assert_eq!(local.len(), parts[0].len());
        assert_eq!(local.num_features(), d.num_features());
    }

    #[test]
    #[should_panic(expected = "num_clients must be positive")]
    fn zero_clients_rejected() {
        let d = ds();
        let _ = partition(&d, 0, PartitionStrategy::Iid, 0);
    }

    /// Property: every strategy partitions the dataset exactly — each
    /// example lands in exactly one shard (seeded random instances).
    #[test]
    fn every_strategy_exact_cover() {
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FE);
        let d = gaussian_blobs(&BlobSpec::new(3, 2, 30), 99);
        for _ in 0..120 {
            let num_clients = rng.random_range(1..16usize);
            let seed = rng.random_range(0..50u64);
            let strategy = match rng.random_range(0..4usize) {
                0 => PartitionStrategy::Iid,
                1 => PartitionStrategy::Dirichlet { alpha: 0.5 },
                2 => PartitionStrategy::Shards {
                    shards_per_client: 2,
                },
                _ => PartitionStrategy::QuantitySkew { exponent: 1.0 },
            };
            let parts = partition(&d, num_clients, strategy, seed);
            let mut all: Vec<usize> = parts.iter().flat_map(|p| p.indices.clone()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..d.len()).collect::<Vec<_>>());
        }
    }
}
