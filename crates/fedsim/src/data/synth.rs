//! Synthetic dataset generators.
//!
//! These generators substitute for the real datasets (MNIST/CIFAR) used on
//! the paper's testbed; the mechanism only interacts with learning through
//! "more and better-distributed data ⇒ better accuracy", which these
//! distributions preserve (see DESIGN.md, Substitutions).

use crate::data::dataset::Dataset;
use crate::linalg::Matrix;
use crate::rng::{self, seeded};
use simrng::RngExt;

/// Parameters for the Gaussian-blobs generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlobSpec {
    /// Number of classes (one blob per class).
    pub num_classes: usize,
    /// Feature dimension.
    pub num_features: usize,
    /// Examples per class.
    pub per_class: usize,
    /// Distance of class centers from the origin.
    pub center_radius: f64,
    /// Within-class standard deviation.
    pub noise: f64,
}

impl BlobSpec {
    /// Creates a spec with default geometry (radius 3.0, noise 1.0).
    pub fn new(num_classes: usize, num_features: usize, per_class: usize) -> Self {
        BlobSpec {
            num_classes,
            num_features,
            per_class,
            center_radius: 3.0,
            noise: 1.0,
        }
    }

    /// Sets the center radius (class separation).
    pub fn with_center_radius(mut self, r: f64) -> Self {
        self.center_radius = r;
        self
    }

    /// Sets the within-class noise.
    pub fn with_noise(mut self, n: f64) -> Self {
        self.noise = n;
        self
    }
}

/// Generates an isotropic Gaussian-blobs classification dataset.
///
/// Class centers are drawn uniformly on a sphere of radius
/// [`BlobSpec::center_radius`]; examples are centers plus isotropic noise.
///
/// # Panics
///
/// Panics if any spec dimension is zero.
pub fn gaussian_blobs(spec: &BlobSpec, seed: u64) -> Dataset {
    assert!(spec.num_classes > 0, "num_classes must be positive");
    assert!(spec.num_features > 0, "num_features must be positive");
    assert!(spec.per_class > 0, "per_class must be positive");
    let mut master = seeded(seed);

    // Class centers: random directions scaled to center_radius.
    let mut centers = Vec::with_capacity(spec.num_classes);
    for _ in 0..spec.num_classes {
        let mut c = vec![0.0; spec.num_features];
        rng::fill_normal(&mut master, &mut c, 1.0);
        let norm = crate::linalg::norm2(&c).max(1e-12);
        for v in &mut c {
            *v *= spec.center_radius / norm;
        }
        centers.push(c);
    }

    let n = spec.num_classes * spec.per_class;
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for (k, center) in centers.iter().enumerate() {
        for _ in 0..spec.per_class {
            let mut x = center.clone();
            for v in &mut x {
                *v += spec.noise * rng::normal(&mut master);
            }
            rows.push(x);
            labels.push(k);
        }
    }

    // Shuffle example order so IID splits are trivially correct.
    let perm = rng::permutation(&mut master, n);
    let rows: Vec<Vec<f64>> = perm.iter().map(|&i| rows[i].clone()).collect();
    let labels: Vec<usize> = perm.iter().map(|&i| labels[i]).collect();

    Dataset::new(Matrix::from_rows(&rows), labels, spec.num_classes)
        .expect("generator produces consistent shapes")
}

/// Parameters for the two-spirals generator (a hard nonlinear benchmark).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpiralSpec {
    /// Examples per spiral arm.
    pub per_arm: usize,
    /// Number of full turns each arm makes.
    pub turns: f64,
    /// Additive coordinate noise.
    pub noise: f64,
}

impl SpiralSpec {
    /// Creates a spec with the given arm size and default geometry.
    pub fn new(per_arm: usize) -> Self {
        SpiralSpec {
            per_arm,
            turns: 1.5,
            noise: 0.1,
        }
    }
}

/// Generates the classic two-spirals binary classification problem in 2-D.
///
/// # Panics
///
/// Panics if `spec.per_arm == 0`.
pub fn two_spirals(spec: &SpiralSpec, seed: u64) -> Dataset {
    assert!(spec.per_arm > 0, "per_arm must be positive");
    let mut master = seeded(seed);
    let n = 2 * spec.per_arm;
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for arm in 0..2usize {
        let phase = arm as f64 * std::f64::consts::PI;
        for i in 0..spec.per_arm {
            let t = i as f64 / spec.per_arm as f64;
            let angle = t * spec.turns * 2.0 * std::f64::consts::PI + phase;
            let radius = t;
            let x = radius * angle.cos() + spec.noise * rng::normal(&mut master);
            let y = radius * angle.sin() + spec.noise * rng::normal(&mut master);
            rows.push(vec![x, y]);
            labels.push(arm);
        }
    }
    let perm = rng::permutation(&mut master, n);
    let rows: Vec<Vec<f64>> = perm.iter().map(|&i| rows[i].clone()).collect();
    let labels: Vec<usize> = perm.iter().map(|&i| labels[i]).collect();
    Dataset::new(Matrix::from_rows(&rows), labels, 2).expect("generator produces consistent shapes")
}

/// Parameters for the synthetic-digits generator, a stand-in for MNIST-style
/// data: class prototypes in a high-dimensional space observed through a
/// random linear "sensor" with pixel-like clipping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigitsSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Latent prototype dimension.
    pub latent_dim: usize,
    /// Observed feature dimension ("pixels").
    pub num_features: usize,
    /// Examples per class.
    pub per_class: usize,
    /// Latent noise scale.
    pub noise: f64,
}

impl DigitsSpec {
    /// Creates a spec with MNIST-like defaults (10 classes, 64 features).
    pub fn new(per_class: usize) -> Self {
        DigitsSpec {
            num_classes: 10,
            latent_dim: 16,
            num_features: 64,
            per_class,
            noise: 0.4,
        }
    }
}

/// Generates the synthetic-digits dataset (see [`DigitsSpec`]).
///
/// # Panics
///
/// Panics if any spec dimension is zero.
pub fn synthetic_digits(spec: &DigitsSpec, seed: u64) -> Dataset {
    assert!(spec.num_classes > 0 && spec.latent_dim > 0 && spec.num_features > 0);
    assert!(spec.per_class > 0, "per_class must be positive");
    let mut master = seeded(seed);

    // Random sensor matrix (num_features x latent_dim).
    let mut sensor = Matrix::zeros(spec.num_features, spec.latent_dim);
    rng::fill_normal(
        &mut master,
        sensor.as_mut_slice(),
        1.0 / (spec.latent_dim as f64).sqrt(),
    );

    // Class prototypes in latent space.
    let mut protos = Vec::with_capacity(spec.num_classes);
    for _ in 0..spec.num_classes {
        let mut p = vec![0.0; spec.latent_dim];
        rng::fill_normal(&mut master, &mut p, 1.5);
        protos.push(p);
    }

    let n = spec.num_classes * spec.per_class;
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for (k, proto) in protos.iter().enumerate() {
        for _ in 0..spec.per_class {
            let mut latent = proto.clone();
            for v in &mut latent {
                *v += spec.noise * rng::normal(&mut master);
            }
            let mut obs = sensor.matvec(&latent);
            // Pixel-like squashing into [0, 1].
            for v in &mut obs {
                *v = 1.0 / (1.0 + (-*v).exp());
            }
            rows.push(obs);
            labels.push(k);
        }
    }
    let perm = rng::permutation(&mut master, n);
    let rows: Vec<Vec<f64>> = perm.iter().map(|&i| rows[i].clone()).collect();
    let labels: Vec<usize> = perm.iter().map(|&i| labels[i]).collect();
    Dataset::new(Matrix::from_rows(&rows), labels, spec.num_classes)
        .expect("generator produces consistent shapes")
}

/// Generates a linearly separable dataset via a random ground-truth linear
/// classifier; useful for convergence sanity checks where near-100% accuracy
/// is attainable.
///
/// # Panics
///
/// Panics if `num_classes == 0`, `num_features == 0`, or `n == 0`.
pub fn linearly_separable(
    num_classes: usize,
    num_features: usize,
    n: usize,
    margin: f64,
    seed: u64,
) -> Dataset {
    assert!(num_classes > 0 && num_features > 0 && n > 0);
    let mut master = seeded(seed);
    let mut w = Matrix::zeros(num_classes, num_features);
    rng::fill_normal(&mut master, w.as_mut_slice(), 1.0);

    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    while rows.len() < n {
        let mut x = vec![0.0; num_features];
        rng::fill_normal(&mut master, &mut x, 1.0);
        let scores = w.matvec(&x);
        let best = crate::linalg::argmax(&scores).expect("non-empty scores");
        // Enforce a margin between the best and second-best class score so
        // the problem is separable with slack.
        let mut second = f64::NEG_INFINITY;
        for (i, &s) in scores.iter().enumerate() {
            if i != best && s > second {
                second = s;
            }
        }
        if scores[best] - second >= margin || master.random::<f64>() < 0.02 {
            rows.push(x);
            labels.push(best);
        }
    }
    Dataset::new(Matrix::from_rows(&rows), labels, num_classes)
        .expect("generator produces consistent shapes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_balance() {
        let ds = gaussian_blobs(&BlobSpec::new(3, 5, 40), 1);
        assert_eq!(ds.len(), 120);
        assert_eq!(ds.num_features(), 5);
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.class_histogram(), vec![40, 40, 40]);
    }

    #[test]
    fn blobs_deterministic_per_seed() {
        let a = gaussian_blobs(&BlobSpec::new(2, 3, 10), 5);
        let b = gaussian_blobs(&BlobSpec::new(2, 3, 10), 5);
        assert_eq!(a, b);
        let c = gaussian_blobs(&BlobSpec::new(2, 3, 10), 6);
        assert_ne!(a, c);
    }

    #[test]
    fn blobs_classes_are_separated() {
        // With tiny noise and a large radius, per-class means are far apart.
        let spec = BlobSpec::new(2, 4, 50)
            .with_center_radius(10.0)
            .with_noise(0.01);
        let ds = gaussian_blobs(&spec, 2);
        let mut means = vec![vec![0.0; 4]; 2];
        let mut counts = [0usize; 2];
        for i in 0..ds.len() {
            let (x, y) = ds.example(i);
            counts[y] += 1;
            for (m, &v) in means[y].iter_mut().zip(x.iter()) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(counts.iter()) {
            for v in m.iter_mut() {
                *v /= c as f64;
            }
        }
        let d = crate::linalg::norm2(&crate::linalg::sub(&means[0], &means[1]));
        assert!(d > 5.0, "class means too close: {d}");
    }

    #[test]
    fn spirals_shape() {
        let ds = two_spirals(&SpiralSpec::new(100), 3);
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.class_histogram(), vec![100, 100]);
    }

    #[test]
    fn digits_shape_and_range() {
        let ds = synthetic_digits(&DigitsSpec::new(20), 4);
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.num_features(), 64);
        assert_eq!(ds.num_classes(), 10);
        for i in 0..ds.len() {
            let (x, _) = ds.example(i);
            assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn separable_labels_match_ground_truth_structure() {
        let ds = linearly_separable(4, 6, 300, 0.5, 9);
        assert_eq!(ds.len(), 300);
        // All classes should appear with overwhelming probability.
        let hist = ds.class_histogram();
        assert!(hist.iter().filter(|&&c| c > 0).count() >= 2);
    }

    #[test]
    #[should_panic(expected = "per_class must be positive")]
    fn blobs_rejects_zero() {
        let _ = gaussian_blobs(&BlobSpec::new(2, 2, 0), 0);
    }
}
