//! In-memory labelled dataset.

use crate::error::FedSimError;
use crate::linalg::Matrix;

/// A dense, in-memory classification dataset.
///
/// Features are stored row-major (one row per example); labels are class
/// indices in `0..num_classes`.
///
/// # Example
///
/// ```
/// use fedsim::data::Dataset;
/// use fedsim::linalg::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
/// let ds = Dataset::new(x, vec![0, 1], 2).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.num_features(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating that the label vector matches the
    /// feature matrix and every label is in range.
    ///
    /// # Errors
    ///
    /// Returns [`FedSimError::ShapeMismatch`] if `labels.len()` differs from
    /// the number of feature rows, and [`FedSimError::InvalidConfig`] if a
    /// label is `>= num_classes` or `num_classes == 0`.
    pub fn new(
        features: Matrix,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, FedSimError> {
        if labels.len() != features.rows() {
            return Err(FedSimError::ShapeMismatch {
                context: "Dataset::new labels",
                expected: features.rows(),
                actual: labels.len(),
            });
        }
        if num_classes == 0 {
            return Err(FedSimError::InvalidConfig(
                "num_classes must be positive".into(),
            ));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(FedSimError::InvalidConfig(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Dataset {
            features,
            labels,
            num_classes,
        })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Borrow of the feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Borrow of the labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature row of example `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn example(&self, i: usize) -> (&[f64], usize) {
        (self.features.row(i), self.labels[i])
    }

    /// Builds a new dataset from the given example indices (with repetition
    /// allowed).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut rows = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            rows.push(self.features.row(i).to_vec());
            labels.push(self.labels[i]);
        }
        let features = if rows.is_empty() {
            Matrix::zeros(0, self.num_features())
        } else {
            Matrix::from_rows(&rows)
        };
        Dataset {
            features,
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Splits into `(train, test)` with the first `train_len` examples in the
    /// train part.
    ///
    /// # Panics
    ///
    /// Panics if `train_len > self.len()`.
    pub fn split_at(&self, train_len: usize) -> (Dataset, Dataset) {
        assert!(train_len <= self.len(), "split point beyond dataset");
        let train_idx: Vec<usize> = (0..train_len).collect();
        let test_idx: Vec<usize> = (train_len..self.len()).collect();
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Counts how many examples carry each label.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ]);
        Dataset::new(x, vec![0, 1, 1, 0], 2).unwrap()
    }

    #[test]
    fn new_validates_labels_len() {
        let x = Matrix::zeros(3, 2);
        let err = Dataset::new(x, vec![0, 1], 2).unwrap_err();
        assert!(matches!(err, FedSimError::ShapeMismatch { .. }));
    }

    #[test]
    fn new_validates_label_range() {
        let x = Matrix::zeros(2, 2);
        let err = Dataset::new(x, vec![0, 5], 2).unwrap_err();
        assert!(matches!(err, FedSimError::InvalidConfig(_)));
    }

    #[test]
    fn new_rejects_zero_classes() {
        let x = Matrix::zeros(0, 2);
        let err = Dataset::new(x, vec![], 0).unwrap_err();
        assert!(matches!(err, FedSimError::InvalidConfig(_)));
    }

    #[test]
    fn accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 4);
        assert!(!ds.is_empty());
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.num_classes(), 2);
        let (row, label) = ds.example(1);
        assert_eq!(row, &[1.0, 0.0]);
        assert_eq!(label, 1);
    }

    #[test]
    fn subset_preserves_rows() {
        let ds = toy();
        let sub = ds.subset(&[3, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.example(0).0, &[1.0, 1.0]);
        assert_eq!(sub.example(0).1, 0);
        assert_eq!(sub.example(1).0, &[0.0, 0.0]);
    }

    #[test]
    fn subset_empty_keeps_feature_dim() {
        let ds = toy();
        let sub = ds.subset(&[]);
        assert!(sub.is_empty());
        assert_eq!(sub.num_features(), 2);
    }

    #[test]
    fn split_at_partitions() {
        let ds = toy();
        let (train, test) = ds.split_at(3);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(test.example(0).0, &[1.0, 1.0]);
    }

    #[test]
    fn class_histogram_counts() {
        let ds = toy();
        assert_eq!(ds.class_histogram(), vec![2, 2]);
    }
}
