//! Error types for the federated simulation substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the federated learning simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FedSimError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// A dataset operation was attempted on an empty dataset.
    EmptyDataset,
    /// A partition request was invalid (e.g. zero clients).
    InvalidPartition(String),
    /// A configuration value was out of its valid domain.
    InvalidConfig(String),
}

impl fmt::Display for FedSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedSimError::ShapeMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch in {context}: expected {expected}, got {actual}"
            ),
            FedSimError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            FedSimError::InvalidPartition(msg) => write!(f, "invalid partition: {msg}"),
            FedSimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for FedSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = FedSimError::ShapeMismatch {
            context: "dot",
            expected: 3,
            actual: 4,
        };
        assert_eq!(err.to_string(), "shape mismatch in dot: expected 3, got 4");
    }

    #[test]
    fn display_other_variants() {
        assert_eq!(
            FedSimError::EmptyDataset.to_string(),
            "operation requires a non-empty dataset"
        );
        assert!(FedSimError::InvalidPartition("x".into())
            .to_string()
            .contains("invalid partition"));
        assert!(FedSimError::InvalidConfig("y".into())
            .to_string()
            .contains("invalid configuration"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FedSimError>();
    }
}
