//! Server-side aggregation (FedAvg).

use crate::client::ClientUpdate;
use crate::linalg::Vector;
use crate::model::Model;

/// Computes the example-weighted average of parameter vectors (FedAvg).
///
/// Updates with zero examples are ignored. Returns `None` when no update
/// carries weight (the server should then keep the previous global model).
///
/// # Panics
///
/// Panics if updates have inconsistent parameter lengths.
pub fn aggregate_weighted(updates: &[ClientUpdate]) -> Option<Vector> {
    let total: usize = updates.iter().map(|u| u.num_examples).sum();
    if total == 0 {
        return None;
    }
    let dim = updates
        .iter()
        .find(|u| u.num_examples > 0)
        .map(|u| u.params.len())
        .expect("total > 0 implies a weighted update exists");
    let mut acc = vec![0.0; dim];
    for u in updates {
        if u.num_examples == 0 {
            continue;
        }
        assert_eq!(u.params.len(), dim, "inconsistent parameter lengths");
        let w = u.num_examples as f64 / total as f64;
        for (a, &p) in acc.iter_mut().zip(u.params.iter()) {
            *a += w * p;
        }
    }
    Some(acc)
}

/// The central FedAvg server: holds the global model and applies aggregated
/// updates.
#[derive(Debug, Clone)]
pub struct FedAvgServer<M> {
    model: M,
    round: usize,
}

impl<M: Model> FedAvgServer<M> {
    /// Creates a server with the given initial global model.
    pub fn new(model: M) -> Self {
        FedAvgServer { model, round: 0 }
    }

    /// Borrow of the current global model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Number of aggregation rounds applied so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Applies one FedAvg aggregation step. Returns `true` if the model
    /// changed (at least one weighted update was received).
    pub fn aggregate(&mut self, updates: &[ClientUpdate]) -> bool {
        self.round += 1;
        match aggregate_weighted(updates) {
            Some(params) => {
                self.model.set_params(&params);
                true
            }
            None => false,
        }
    }

    /// Consumes the server, returning the global model.
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LogisticRegression;

    fn upd(id: usize, params: Vec<f64>, n: usize) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            params,
            num_examples: n,
            train_loss: 0.0,
            update_norm: 0.0,
            steps: 1,
        }
    }

    #[test]
    fn weighted_average_exact() {
        let updates = vec![upd(0, vec![0.0, 0.0], 1), upd(1, vec![3.0, 6.0], 2)];
        let avg = aggregate_weighted(&updates).unwrap();
        assert_eq!(avg, vec![2.0, 4.0]);
    }

    #[test]
    fn zero_weight_updates_ignored() {
        let updates = vec![upd(0, vec![100.0], 0), upd(1, vec![2.0], 5)];
        let avg = aggregate_weighted(&updates).unwrap();
        assert_eq!(avg, vec![2.0]);
    }

    #[test]
    fn all_zero_weight_returns_none() {
        let updates = vec![upd(0, vec![1.0], 0)];
        assert!(aggregate_weighted(&updates).is_none());
        assert!(aggregate_weighted(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "inconsistent parameter lengths")]
    fn mismatched_lengths_rejected() {
        let updates = vec![upd(0, vec![1.0], 1), upd(1, vec![1.0, 2.0], 1)];
        let _ = aggregate_weighted(&updates);
    }

    #[test]
    fn server_applies_aggregate() {
        let model = LogisticRegression::new(1, 2); // 3 params: 2x1 weights + 2 bias
        let mut server = FedAvgServer::new(model);
        assert_eq!(server.round(), 0);
        let changed = server.aggregate(&[upd(0, vec![1.0, 2.0, 3.0, 4.0], 10)]);
        assert!(changed);
        assert_eq!(server.round(), 1);
        assert_eq!(server.model().params(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn server_keeps_model_when_no_updates() {
        let model = LogisticRegression::new_random(2, 2, 3);
        let before = model.params();
        let mut server = FedAvgServer::new(model);
        let changed = server.aggregate(&[]);
        assert!(!changed);
        assert_eq!(server.model().params(), before);
        assert_eq!(server.round(), 1);
    }

    #[test]
    fn into_model_returns_current() {
        let model = LogisticRegression::new(1, 2);
        let mut server = FedAvgServer::new(model);
        server.aggregate(&[upd(0, vec![5.0, 5.0, 5.0, 5.0], 1)]);
        let m = server.into_model();
        assert_eq!(m.params(), vec![5.0, 5.0, 5.0, 5.0]);
    }

    /// Property: the weighted aggregate stays inside the coordinate-wise
    /// envelope of the inputs (seeded random instances).
    #[test]
    fn aggregate_is_convex_combination() {
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xFEDA);
        for _ in 0..500 {
            let a: Vec<f64> = (0..4).map(|_| rng.random_range(-10.0..10.0)).collect();
            let b: Vec<f64> = (0..4).map(|_| rng.random_range(-10.0..10.0)).collect();
            let na = rng.random_range(1..100usize);
            let nb = rng.random_range(1..100usize);
            let avg = aggregate_weighted(&[upd(0, a.clone(), na), upd(1, b.clone(), nb)]).unwrap();
            for i in 0..4 {
                let lo = a[i].min(b[i]) - 1e-9;
                let hi = a[i].max(b[i]) + 1e-9;
                assert!(avg[i] >= lo && avg[i] <= hi);
            }
        }
    }
}
