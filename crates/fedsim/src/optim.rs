//! First-order optimizers operating on flat parameter vectors.

/// An optimizer consumes gradients and updates a flat parameter vector.
pub trait Optimizer: Send {
    /// Applies one update step: mutates `params` given `grad`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grad.len()` or if the length changes
    /// between calls.
    fn step(&mut self, params: &mut [f64], grad: &[f64]);

    /// Resets accumulated state (moments, step counters).
    fn reset(&mut self);
}

/// Plain stochastic gradient descent with a fixed learning rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "sgd dimension mismatch");
        for (p, &g) in params.iter_mut().zip(grad.iter()) {
            *p -= self.lr * g;
        }
    }

    fn reset(&mut self) {}
}

/// SGD with classical (heavy-ball) momentum.
#[derive(Debug, Clone, PartialEq)]
pub struct Momentum {
    lr: f64,
    beta: f64,
    velocity: Vec<f64>,
}

impl Momentum {
    /// Creates momentum SGD.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `beta` is outside `[0, 1)`.
    pub fn new(lr: f64, beta: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta), "beta must be in [0, 1)");
        Momentum {
            lr,
            beta,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "momentum dimension mismatch");
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; params.len()];
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "parameter length changed between steps"
        );
        for ((p, &g), v) in params
            .iter_mut()
            .zip(grad.iter())
            .zip(self.velocity.iter_mut())
        {
            *v = self.beta * *v + g;
            *p -= self.lr * *v;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam optimizer (Kingma & Ba, 2014).
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates Adam with standard hyperparameters (β₁ = 0.9, β₂ = 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Creates Adam with explicit moment decay rates.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or a beta is outside `[0, 1)`.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "adam dimension mismatch");
        if self.m.is_empty() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "parameter length changed between steps"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grad[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

/// Optimizer configuration for serializable experiment setups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// Heavy-ball momentum.
    Momentum {
        /// Learning rate.
        lr: f64,
        /// Momentum coefficient.
        beta: f64,
    },
    /// Adam with default betas.
    Adam {
        /// Learning rate.
        lr: f64,
    },
}

impl OptimizerKind {
    /// Instantiates the optimizer.
    pub fn build(&self) -> Box<dyn Optimizer> {
        match *self {
            OptimizerKind::Sgd { lr } => Box::new(Sgd::new(lr)),
            OptimizerKind::Momentum { lr, beta } => Box::new(Momentum::new(lr, beta)),
            OptimizerKind::Adam { lr } => Box::new(Adam::new(lr)),
        }
    }
}

impl Default for OptimizerKind {
    fn default() -> Self {
        OptimizerKind::Sgd { lr: 0.1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = ||x - target||^2 with the given optimizer and returns
    /// the final distance to the target.
    fn quadratic_distance(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let target = [3.0, -2.0, 0.5];
        let mut x = vec![0.0; 3];
        for _ in 0..steps {
            let grad: Vec<f64> = x
                .iter()
                .zip(target.iter())
                .map(|(xi, t)| 2.0 * (xi - t))
                .collect();
            opt.step(&mut x, &grad);
        }
        x.iter()
            .zip(target.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(quadratic_distance(&mut opt, 200) < 1e-6);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut opt = Momentum::new(0.05, 0.9);
        assert!(quadratic_distance(&mut opt, 300) < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        assert!(quadratic_distance(&mut opt, 500) < 1e-3);
    }

    #[test]
    fn momentum_faster_than_sgd_on_ill_conditioned() {
        // f(x) = 0.5 * (100 x0^2 + x1^2): ill-conditioned quadratic.
        let run = |opt: &mut dyn Optimizer| {
            let mut x = vec![1.0, 1.0];
            for _ in 0..100 {
                let grad = vec![100.0 * x[0], x[1]];
                opt.step(&mut x, &grad);
            }
            (x[0] * x[0] + x[1] * x[1]).sqrt()
        };
        let mut sgd = Sgd::new(0.009);
        let mut mom = Momentum::new(0.009, 0.9);
        let d_sgd = run(&mut sgd);
        let d_mom = run(&mut mom);
        assert!(d_mom < d_sgd, "momentum {d_mom} should beat sgd {d_sgd}");
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.1);
        let mut x = vec![1.0];
        opt.step(&mut x, &[1.0]);
        opt.reset();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty());
        // Can step with a different dimension after reset.
        let mut y = vec![1.0, 2.0];
        opt.step(&mut y, &[0.1, 0.1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn sgd_rejects_mismatch() {
        let mut opt = Sgd::new(0.1);
        let mut x = vec![1.0, 2.0];
        opt.step(&mut x, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn kind_builds_all_variants() {
        let kinds = [
            OptimizerKind::Sgd { lr: 0.1 },
            OptimizerKind::Momentum { lr: 0.1, beta: 0.9 },
            OptimizerKind::Adam { lr: 0.01 },
        ];
        for kind in kinds {
            let mut opt = kind.build();
            let mut x = vec![1.0];
            opt.step(&mut x, &[1.0]);
            assert!(x[0] < 1.0);
        }
        assert_eq!(OptimizerKind::default(), OptimizerKind::Sgd { lr: 0.1 });
    }
}
