//! Classification evaluation beyond plain accuracy.

use crate::data::Dataset;
use crate::model::Model;

/// A confusion matrix: `counts[true][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Evaluates `model` over `data`.
    ///
    /// # Panics
    ///
    /// Panics if the model predicts a class outside the dataset's range.
    pub fn evaluate<M: Model>(model: &M, data: &Dataset) -> Self {
        let k = data.num_classes();
        let mut counts = vec![vec![0usize; k]; k];
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            let p = model.predict(x);
            assert!(p < k, "prediction {p} outside {k} classes");
            counts[y][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of examples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Total examples evaluated.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Overall accuracy (0 for an empty evaluation).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.num_classes()).map(|c| self.counts[c][c]).sum();
        correct as f64 / total as f64
    }

    /// Recall of class `c` (0 when the class has no examples).
    pub fn recall(&self, c: usize) -> f64 {
        let row: usize = self.counts[c].iter().sum();
        if row == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / row as f64
        }
    }

    /// Precision of class `c` (0 when the class is never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let col: usize = (0..self.num_classes()).map(|t| self.counts[t][c]).sum();
        if col == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / col as f64
        }
    }

    /// F1 score of class `c`.
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean of per-class recalls — the "balanced accuracy" that
    /// exposes models biased toward majority classes (the failure mode of
    /// participation-biased federated training).
    pub fn balanced_accuracy(&self) -> f64 {
        let k = self.num_classes();
        (0..k).map(|c| self.recall(c)).sum::<f64>() / k as f64
    }

    /// Macro-averaged F1.
    pub fn macro_f1(&self) -> f64 {
        let k = self.num_classes();
        (0..k).map(|c| self.f1(c)).sum::<f64>() / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synth::{gaussian_blobs, BlobSpec};
    use crate::linalg::Matrix;
    use crate::model::LogisticRegression;

    /// A fixed-prediction stub model.
    #[derive(Clone)]
    struct Always(usize);
    impl Model for Always {
        fn num_params(&self) -> usize {
            0
        }
        fn params(&self) -> Vec<f64> {
            Vec::new()
        }
        fn set_params(&mut self, _p: &[f64]) {}
        fn loss_grad(&self, _d: &Dataset, _i: &[usize]) -> (f64, Vec<f64>) {
            (0.0, Vec::new())
        }
        fn predict(&self, _x: &[f64]) -> usize {
            self.0
        }
    }

    fn toy() -> Dataset {
        // 3 examples of class 0, 1 of class 1.
        let x = Matrix::zeros(4, 2);
        Dataset::new(x, vec![0, 0, 0, 1], 2).unwrap()
    }

    #[test]
    fn counts_and_accuracy() {
        let cm = ConfusionMatrix::evaluate(&Always(0), &toy());
        assert_eq!(cm.count(0, 0), 3);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn balanced_accuracy_punishes_majority_bias() {
        // Always predicting the majority class: plain accuracy 0.75 but
        // balanced accuracy only 0.5.
        let cm = ConfusionMatrix::evaluate(&Always(0), &toy());
        assert!((cm.balanced_accuracy() - 0.5).abs() < 1e-12);
        assert_eq!(cm.recall(0), 1.0);
        assert_eq!(cm.recall(1), 0.0);
    }

    #[test]
    fn precision_recall_f1() {
        let cm = ConfusionMatrix::evaluate(&Always(0), &toy());
        assert!((cm.precision(0) - 0.75).abs() < 1e-12);
        assert_eq!(cm.precision(1), 0.0); // never predicted
        let f1 = cm.f1(0);
        assert!((f1 - 2.0 * 0.75 / 1.75).abs() < 1e-12);
        assert_eq!(cm.f1(1), 0.0);
        assert!(cm.macro_f1() > 0.0);
    }

    #[test]
    fn trained_model_consistent_with_model_accuracy() {
        let ds = gaussian_blobs(&BlobSpec::new(3, 4, 50), 2);
        let mut m = LogisticRegression::new(4, 3);
        let all: Vec<usize> = (0..ds.len()).collect();
        for _ in 0..100 {
            let (_, g) = m.loss_grad(&ds, &all);
            let mut p = m.params();
            for (pi, gi) in p.iter_mut().zip(g.iter()) {
                *pi -= 0.5 * gi;
            }
            m.set_params(&p);
        }
        let cm = ConfusionMatrix::evaluate(&m, &ds);
        assert!((cm.accuracy() - m.accuracy(&ds)).abs() < 1e-12);
        assert!(cm.balanced_accuracy() > 0.7);
    }
}
