//! # journal — event sourcing for the market server
//!
//! The ingest layer's total `(time, seq)` event order is the workspace's
//! determinism root; this crate turns it into a *durability* root. Every
//! arrival, seal, and auction outcome becomes one JSON line in an
//! append-only journal ([`JournalEvent`], [`JournalWriter`]), fsynced at
//! each seal so the outcome line is the commit record. A killed server
//! recovers by truncating the torn/uncommitted tail ([`recover_meta`]),
//! optionally fast-forwarding from a [`Snapshot`] taken at a sealed
//! round, and streaming the remaining events back through the live code
//! path ([`stream_events`]) — landing *bit-identically* on the last
//! fully-sealed round without ever holding the log in memory.
//!
//! [`compact`] keeps long-lived journals bounded: once a snapshot
//! commits, the covered prefix is rewritten away behind a header line
//! that embeds the snapshot itself, so a compacted journal stays
//! self-contained and recovery transparently handles a file whose first
//! event index is nonzero.
//!
//! Bit-exactness is inherited from `metrics::json`: every finite `f64`
//! the writer renders parses back to the same bits, and the running
//! [`Digest`] (FNV-1a over the raw bit patterns of everything economic)
//! makes two states byte-comparable across processes and machines.

pub mod event;
pub mod snapshot;
pub mod store;

pub use event::JournalEvent;
pub use snapshot::{read_snapshot, write_snapshot, Snapshot};
pub use store::{
    committed_lines, compact, recover, recover_meta, scan, scan_meta, stream_events, CompactStats,
    JournalMeta, JournalWriter, OutcomeMark, RecoveredJournal,
};

/// Running FNV-1a digest over the bit patterns of a market trajectory.
///
/// Fold in every sealed round's contents and outcome in order; equal
/// digests then mean bit-identical histories (up to 64-bit collision).
/// The digest deliberately covers *decisions and money* — sealed bids,
/// awards, welfare, spend, backlog — and not telemetry counters, which
/// restart at recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        Digest(Self::OFFSET)
    }

    /// A digest resumed from a previously exported value.
    pub fn resume(value: u64) -> Self {
        Digest(value)
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Folds in eight raw bytes.
    pub fn fold_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds in a float's exact bit pattern (distinguishes `-0.0` from
    /// `0.0` and every NaN payload).
    pub fn fold_f64(&mut self, v: f64) {
        self.fold_u64(v.to_bits());
    }

    /// Folds in a usize (as u64).
    pub fn fold_usize(&mut self, v: usize) {
        self.fold_u64(v as u64);
    }
}

/// Renders a `u64` as fixed-width lowercase hex — the journal encoding
/// for digests, whose values exceed the exact-integer range of a JSON
/// number's `f64` carrier.
pub fn u64_hex(v: u64) -> String {
    format!("{v:016x}")
}

/// Parses [`u64_hex`] output; `None` on anything else.
pub fn u64_from_hex(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        for v in [0u64, 1, 0xdead_beef, u64::MAX, 1 << 63] {
            assert_eq!(u64_from_hex(&u64_hex(v)), Some(v));
        }
        for bad in ["", "0x12", "12345", "g000000000000000", "00000000000000001"] {
            assert_eq!(u64_from_hex(bad), None, "{bad}");
        }
    }

    #[test]
    fn digest_is_order_sensitive_and_resumable() {
        let mut a = Digest::new();
        a.fold_f64(1.5);
        a.fold_u64(7);
        let mut b = Digest::new();
        b.fold_u64(7);
        b.fold_f64(1.5);
        assert_ne!(a.value(), b.value(), "order must matter");

        // Resuming from an exported value continues the same stream.
        let mut full = Digest::new();
        full.fold_f64(1.5);
        let checkpoint = full.value();
        full.fold_f64(2.5);
        let mut resumed = Digest::resume(checkpoint);
        resumed.fold_f64(2.5);
        assert_eq!(full.value(), resumed.value());
    }

    #[test]
    fn digest_separates_signed_zero() {
        let mut pos = Digest::new();
        pos.fold_f64(0.0);
        let mut neg = Digest::new();
        neg.fold_f64(-0.0);
        assert_ne!(pos.value(), neg.value());
    }
}
