//! The append-only journal file: durable writes and torn-tail recovery.
//!
//! **Durability contract.** Arrival lines are written and flushed (so the
//! OS holds them), but only a seal commits: [`JournalWriter::sync`] runs
//! `fdatasync` after the round's seal + outcome lines, making the
//! *outcome line* the commit record. Recovery scans the file front to
//! back and keeps exactly the prefix ending at the last complete outcome
//! line; everything after it — torn half-lines from a crashed write,
//! arrivals that were never sealed, a seal line whose outcome never made
//! it out — is truncated and never replayed. Clients re-send bids the
//! server never acknowledged a seal for; the collector's freshest-bid
//! dedupe makes those re-sends idempotent.

use crate::event::JournalEvent;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Appends [`JournalEvent`]s to a journal file, one JSON line each.
#[derive(Debug)]
pub struct JournalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    events: u64,
}

impl JournalWriter {
    /// Creates (or truncates) a journal at `path`.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(JournalWriter {
            file: BufWriter::new(file),
            path,
            events: 0,
        })
    }

    /// Opens an existing journal for appending after recovery;
    /// `recovered_events` is the committed event count the recovery scan
    /// returned (event numbering continues from there).
    pub fn open_append(path: impl Into<PathBuf>, recovered_events: u64) -> std::io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(JournalWriter {
            file: BufWriter::new(file),
            path,
            events: recovered_events,
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events appended (or recovered) so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Appends one event line and flushes it to the OS. Not yet durable —
    /// call [`JournalWriter::sync`] at the seal to commit.
    pub fn append(&mut self, event: &JournalEvent) -> std::io::Result<()> {
        let mut line = event.to_line();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.events += 1;
        Ok(())
    }

    /// Forces everything appended so far to stable storage (`fdatasync`).
    /// Called once per sealed round, after the outcome line: the fsync
    /// boundary *is* the durability boundary.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()
    }
}

/// What a recovery scan found in a journal file.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJournal {
    /// The committed prefix: every event up to and including the last
    /// complete outcome line, in file order.
    pub events: Vec<JournalEvent>,
    /// Byte length of the committed prefix.
    pub committed_bytes: u64,
    /// Bytes past the commit point (torn lines, unsealed arrivals, a
    /// dangling seal) that recovery discards.
    pub discarded_bytes: u64,
    /// Round index of the last committed outcome, if any round committed.
    pub last_sealed_round: Option<usize>,
}

/// Scans a journal without modifying it (see [`recover`] for the
/// truncating variant). A missing file reads as an empty journal.
pub fn scan(path: impl AsRef<Path>) -> std::io::Result<RecoveredJournal> {
    let bytes = match std::fs::read(path.as_ref()) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut events = Vec::new();
    let mut committed_bytes = 0u64;
    let mut committed_events = 0usize;
    let mut last_sealed_round = None;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let line_end = match bytes[offset..].iter().position(|&b| b == b'\n') {
            Some(i) => offset + i,
            None => break, // no terminator: torn tail
        };
        let Ok(line) = std::str::from_utf8(&bytes[offset..line_end]) else {
            break;
        };
        let Some(event) = JournalEvent::parse_line(line) else {
            break;
        };
        let is_commit = matches!(event, JournalEvent::Outcome { .. });
        let round = match event {
            JournalEvent::Outcome { round, .. } => Some(round),
            _ => None,
        };
        events.push(event);
        offset = line_end + 1;
        if is_commit {
            committed_bytes = offset as u64;
            committed_events = events.len();
            last_sealed_round = round;
        }
    }
    events.truncate(committed_events);
    Ok(RecoveredJournal {
        events,
        committed_bytes,
        discarded_bytes: bytes.len() as u64 - committed_bytes,
        last_sealed_round,
    })
}

/// Recovers a journal in place: scans for the committed prefix and
/// truncates the file to it, so torn or uncommitted trailing lines can
/// never be replayed. Returns the committed events.
pub fn recover(path: impl AsRef<Path>) -> std::io::Result<RecoveredJournal> {
    let recovered = scan(path.as_ref())?;
    if recovered.discarded_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path.as_ref())?;
        file.set_len(recovered.committed_bytes)?;
        file.sync_data()?;
    }
    Ok(recovered)
}

/// Reads a journal's full committed contents as raw lines (diagnostics /
/// tooling; replay uses [`scan`]).
pub fn committed_lines(path: impl AsRef<Path>) -> std::io::Result<Vec<String>> {
    let recovered = scan(path.as_ref())?;
    let mut file = File::open(path.as_ref())?;
    let mut buf = vec![0u8; recovered.committed_bytes as usize];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut buf)?;
    let text = String::from_utf8(buf).expect("committed prefix is valid UTF-8");
    Ok(text.lines().map(str::to_string).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::bid::Bid;
    use auction::outcome::Award;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp path per test (no external tempfile crate).
    pub(crate) fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lovm-journal-test-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn arrival(seq: u64, at: f64, bidder: usize) -> JournalEvent {
        JournalEvent::Arrival {
            seq,
            at,
            bid: Bid::new(bidder, 1.0 + bidder as f64 * 0.25, 100, 0.9),
        }
    }

    fn round_events(round: usize) -> Vec<JournalEvent> {
        let b0 = Bid::new(0, 1.0, 100, 0.9);
        let b1 = Bid::new(1, 1.25, 100, 0.9);
        vec![
            arrival(round as u64 * 2, round as f64 + 0.2, 0),
            arrival(round as u64 * 2 + 1, round as f64 + 0.4, 1),
            JournalEvent::Seal {
                round,
                sealed: vec![b0, b1],
            },
            JournalEvent::Outcome {
                round,
                awards: vec![Award {
                    bidder: 0,
                    cost: 1.0,
                    value: 2.1,
                    payment: 1.3,
                }],
                virtual_welfare: 4.2,
                spend: 1.3,
                backlog: 0.5 + round as f64,
                digest: 0x1234_5678_9abc_def0 ^ round as u64,
            },
        ]
    }

    #[test]
    fn write_scan_round_trips() {
        let path = temp_path("roundtrip");
        let mut w = JournalWriter::create(&path).unwrap();
        let mut all = Vec::new();
        for r in 0..3 {
            for ev in round_events(r) {
                w.append(&ev).unwrap();
                all.push(ev);
            }
            w.sync().unwrap();
        }
        assert_eq!(w.events(), all.len() as u64);
        let rec = scan(&path).unwrap();
        assert_eq!(rec.events, all);
        assert_eq!(rec.discarded_bytes, 0);
        assert_eq!(rec.last_sealed_round, Some(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_reads_empty() {
        let rec = scan(temp_path("missing")).unwrap();
        assert!(rec.events.is_empty());
        assert_eq!(rec.committed_bytes, 0);
        assert_eq!(rec.last_sealed_round, None);
    }

    #[test]
    fn uncommitted_tail_is_discarded_and_truncated() {
        let path = temp_path("tail");
        let mut w = JournalWriter::create(&path).unwrap();
        let committed: Vec<JournalEvent> = round_events(0);
        for ev in &committed {
            w.append(ev).unwrap();
        }
        w.sync().unwrap();
        // A round in flight: two arrivals and a seal, but no outcome —
        // then the crash. Recovery must land on round 0.
        w.append(&arrival(2, 1.2, 0)).unwrap();
        w.append(&JournalEvent::Seal {
            round: 1,
            sealed: vec![Bid::new(0, 1.0, 100, 0.9)],
        })
        .unwrap();
        drop(w);
        // Plus a torn half-line, as a crashed buffered write leaves.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(br#"{"event":"outcome","round":1,"awa"#)
                .unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let rec = recover(&path).unwrap();
        assert_eq!(rec.events, committed);
        assert_eq!(rec.last_sealed_round, Some(0));
        assert!(rec.discarded_bytes > 0);
        // The file itself was truncated to the commit point.
        let after = std::fs::metadata(&path).unwrap().len();
        assert_eq!(after, rec.committed_bytes);
        assert!(after < before);
        // A second recovery is a no-op fixpoint: same committed prefix,
        // nothing left to discard.
        let again = recover(&path).unwrap();
        assert_eq!(again.events, rec.events);
        assert_eq!(again.committed_bytes, rec.committed_bytes);
        assert_eq!(again.discarded_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_recovery_continues_the_log() {
        let path = temp_path("resume");
        let mut w = JournalWriter::create(&path).unwrap();
        for ev in round_events(0) {
            w.append(&ev).unwrap();
        }
        w.sync().unwrap();
        w.append(&arrival(7, 1.1, 3)).unwrap(); // uncommitted
        drop(w);
        let rec = recover(&path).unwrap();
        let mut w = JournalWriter::open_append(&path, rec.events.len() as u64).unwrap();
        assert_eq!(w.events(), 4);
        for ev in round_events(1) {
            w.append(&ev).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let full = scan(&path).unwrap();
        assert_eq!(full.events.len(), 8);
        assert_eq!(full.last_sealed_round, Some(1));
        assert_eq!(full.discarded_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn committed_lines_match_event_rendering() {
        let path = temp_path("lines");
        let mut w = JournalWriter::create(&path).unwrap();
        let events = round_events(0);
        for ev in &events {
            w.append(ev).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let lines = committed_lines(&path).unwrap();
        let expect: Vec<String> = events.iter().map(JournalEvent::to_line).collect();
        assert_eq!(lines, expect);
        std::fs::remove_file(&path).ok();
    }
}
