//! The append-only journal file: durable writes, torn-tail recovery,
//! and prefix compaction.
//!
//! **Durability contract.** Arrival lines are written and flushed (so the
//! OS holds them), but only a seal commits: [`JournalWriter::sync`] runs
//! `fdatasync` after the round's seal + outcome lines, making the
//! *outcome line* the commit record. Recovery scans the file front to
//! back and keeps exactly the prefix ending at the last complete outcome
//! line; everything after it — torn half-lines from a crashed write,
//! arrivals that were never sealed, a seal line whose outcome never made
//! it out — is truncated and never replayed. Clients re-send bids the
//! server never acknowledged a seal for; the collector's freshest-bid
//! dedupe makes those re-sends idempotent. File *creation* and every
//! rename are followed by a parent-directory fsync, so a crash right
//! after cannot lose the directory entry of data already on stable
//! storage.
//!
//! **Compaction.** [`compact`] bounds the journal to the suffix a
//! snapshot does not cover: it writes a header line embedding the
//! snapshot itself (so the compacted journal stays *self-contained* —
//! recovery never depends on the separate snapshot file surviving),
//! followed by the raw bytes of every event past the snapshot boundary,
//! to a temp file in the same directory; fsyncs it; renames it over the
//! journal; and fsyncs the directory. A crash at any instant leaves
//! either the old journal or the new one, never a torn mix. A scan of a
//! compacted journal reports the header as [`JournalMeta::base`] and
//! indexes events from the base offset onward.

use crate::event::JournalEvent;
use crate::snapshot::Snapshot;
use metrics::json::JsonValue;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Fsyncs the parent directory of `path` (best effort): makes a just
/// created or just renamed directory entry durable. Some filesystems
/// refuse directory fsync; the rename's atomicity already guarantees
/// consistency, so a refusal is not fatal.
pub(crate) fn fsync_parent_dir(path: &Path) {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Appends [`JournalEvent`]s to a journal file, one JSON line each.
#[derive(Debug)]
pub struct JournalWriter {
    file: BufWriter<File>,
    path: PathBuf,
    events: u64,
}

impl JournalWriter {
    /// Creates (or truncates) a journal at `path`, fsyncing the parent
    /// directory so the file entry itself survives a crash.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        file.sync_all()?;
        fsync_parent_dir(&path);
        Ok(JournalWriter {
            file: BufWriter::new(file),
            path,
            events: 0,
        })
    }

    /// Opens an existing journal for appending after recovery;
    /// `recovered_events` is the committed *logical* event count the
    /// recovery scan returned — including any compacted-away prefix —
    /// so event numbering continues from there.
    pub fn open_append(path: impl Into<PathBuf>, recovered_events: u64) -> std::io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(JournalWriter {
            file: BufWriter::new(file),
            path,
            events: recovered_events,
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Logical events appended (or recovered, or compacted away) so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Appends one event line and flushes it to the OS. Not yet durable —
    /// call [`JournalWriter::sync`] at the seal to commit.
    pub fn append(&mut self, event: &JournalEvent) -> std::io::Result<()> {
        self.append_raw(&event.to_line())
    }

    /// Appends one pre-rendered event line verbatim (the replication
    /// path: a follower's journal stays byte-identical to the leader's
    /// feed). The line must not contain a newline.
    pub fn append_raw(&mut self, line: &str) -> std::io::Result<()> {
        let _append_span = telemetry::hist!("journal.append_ns").span();
        debug_assert!(!line.contains('\n'), "one event per line");
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.events += 1;
        Ok(())
    }

    /// Forces everything appended so far to stable storage (`fdatasync`).
    /// Called once per sealed round, after the outcome line: the fsync
    /// boundary *is* the durability boundary.
    pub fn sync(&mut self) -> std::io::Result<()> {
        // fsync stalls are the canonical serve-loop latency cliff; this
        // span is what `lovm top` renders as `journal.fsync_ns`.
        let _fsync_span = telemetry::hist!("journal.fsync_ns").span();
        self.file.flush()?;
        self.file.get_ref().sync_data()
    }
}

// ---------------------------------------------------------------------
// The compaction header.
// ---------------------------------------------------------------------

/// Renders the compaction header line: the snapshot the dropped prefix
/// is summarized by, embedded so the journal is self-contained.
fn compact_header_line(snapshot: &Snapshot) -> String {
    JsonValue::object()
        .field("event", "compact")
        .field("snapshot", snapshot.to_json())
        .to_string()
}

/// Parses a compaction header line; `None` on anything else.
fn parse_compact_header(line: &str) -> Option<Snapshot> {
    let v = JsonValue::parse(line).ok()?;
    if v.get("event")?.as_str()? != "compact" {
        return None;
    }
    Snapshot::from_json(v.get("snapshot")?)
}

// ---------------------------------------------------------------------
// Scanning: one buffered pass, bounded memory.
// ---------------------------------------------------------------------

/// Byte/event coordinates of one committed outcome line — the marks a
/// scan leaves so recovery can verify a snapshot and seek straight to
/// its boundary without rereading the prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeMark {
    /// Logical event count through this outcome (compacted prefix
    /// included): a snapshot with `events == this` sits exactly here.
    pub events: u64,
    /// Round index of the outcome.
    pub round: usize,
    /// Running state digest the outcome recorded.
    pub digest: u64,
    /// Byte offset just past the outcome's newline.
    pub bytes: u64,
}

/// What a bounded-memory scan learns about a journal file: the commit
/// boundary, the compaction base (if any), and one [`OutcomeMark`] per
/// committed round — but *not* the events themselves, which recovery
/// streams separately via [`stream_events`] so RSS never scales with
/// log size.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalMeta {
    /// The snapshot a compaction header embedded, if the journal was
    /// compacted: events before `base.events` were dropped from disk and
    /// live only as this state summary.
    pub base: Option<Snapshot>,
    /// Byte offset where event lines start (just past the header line;
    /// 0 when there is no header).
    pub suffix_bytes: u64,
    /// Byte length of the committed prefix (header included).
    pub committed_bytes: u64,
    /// Logical committed event count, compacted prefix included.
    pub committed_events: u64,
    /// Bytes past the commit point (torn lines, unsealed arrivals, a
    /// dangling seal) that recovery discards.
    pub discarded_bytes: u64,
    /// One mark per committed outcome line, in order.
    pub outcomes: Vec<OutcomeMark>,
    /// Round index of the last committed outcome — falling back to the
    /// compaction base's last covered round when the suffix has none.
    pub last_sealed_round: Option<usize>,
}

impl JournalMeta {
    fn empty() -> JournalMeta {
        JournalMeta {
            base: None,
            suffix_bytes: 0,
            committed_bytes: 0,
            committed_events: 0,
            discarded_bytes: 0,
            outcomes: Vec::new(),
            last_sealed_round: None,
        }
    }

    /// Logical event count the compacted-away prefix holds (0 when the
    /// journal was never compacted).
    pub fn base_events(&self) -> u64 {
        self.base.as_ref().map_or(0, |s| s.events)
    }

    /// Whether `snapshot` sits exactly on a commit boundary of this
    /// journal with a bitwise-matching digest — either the compaction
    /// base itself or one of the committed outcome marks. Only such a
    /// snapshot may fast-forward recovery.
    pub fn snapshot_covers(&self, snapshot: &Snapshot) -> bool {
        if snapshot.events == 0 {
            return false;
        }
        if let Some(base) = &self.base {
            if snapshot.events == base.events {
                return snapshot.digest == base.digest;
            }
        }
        self.outcomes
            .iter()
            .any(|m| m.events == snapshot.events && m.digest == snapshot.digest)
    }

    /// Byte offset replay starts at when fast-forwarding from
    /// `snapshot` (which must satisfy [`JournalMeta::snapshot_covers`]).
    pub fn replay_offset(&self, snapshot: &Snapshot) -> u64 {
        if snapshot.events == self.base_events() {
            return self.suffix_bytes;
        }
        self.outcomes
            .iter()
            .find(|m| m.events == snapshot.events)
            .map(|m| m.bytes)
            .expect("replay_offset requires a covering snapshot")
    }
}

/// Scans a journal in one buffered pass without modifying it (see
/// [`recover_meta`] for the truncating variant), keeping only per-round
/// marks in memory. A missing file reads as an empty journal.
pub fn scan_meta(path: impl AsRef<Path>) -> std::io::Result<JournalMeta> {
    let file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalMeta::empty()),
        Err(e) => return Err(e),
    };
    let total_bytes = file.metadata()?.len();
    let mut reader = BufReader::with_capacity(128 * 1024, file);
    let mut meta = JournalMeta::empty();
    let mut offset = 0u64;
    let mut events = 0u64;
    let mut buf = Vec::new();
    let mut first = true;
    loop {
        buf.clear();
        let n = reader.read_until(b'\n', &mut buf)?;
        if n == 0 {
            break; // clean EOF
        }
        if buf.last() != Some(&b'\n') {
            break; // no terminator: torn tail
        }
        let Ok(line) = std::str::from_utf8(&buf[..n - 1]) else {
            break;
        };
        if first {
            first = false;
            if let Some(snap) = parse_compact_header(line) {
                offset += n as u64;
                events = snap.events;
                meta.last_sealed_round = snap.collector.next_round.checked_sub(1);
                meta.base = Some(snap);
                meta.suffix_bytes = offset;
                // The header commits by construction: compaction fsyncs
                // it before the rename that makes it visible.
                meta.committed_bytes = offset;
                meta.committed_events = events;
                continue;
            }
        }
        let Some(event) = JournalEvent::parse_line(line) else {
            break;
        };
        offset += n as u64;
        events += 1;
        if let JournalEvent::Outcome { round, digest, .. } = event {
            meta.committed_bytes = offset;
            meta.committed_events = events;
            meta.last_sealed_round = Some(round);
            meta.outcomes.push(OutcomeMark {
                events,
                round,
                digest,
                bytes: offset,
            });
        }
    }
    meta.discarded_bytes = total_bytes - meta.committed_bytes;
    Ok(meta)
}

/// Recovers a journal in place: scans for the committed prefix and
/// truncates the file to it, so torn or uncommitted trailing lines can
/// never be replayed.
pub fn recover_meta(path: impl AsRef<Path>) -> std::io::Result<JournalMeta> {
    let mut meta = scan_meta(path.as_ref())?;
    if meta.discarded_bytes > 0 {
        let file = OpenOptions::new().write(true).open(path.as_ref())?;
        file.set_len(meta.committed_bytes)?;
        file.sync_data()?;
        meta.discarded_bytes = 0;
    }
    Ok(meta)
}

/// Streams the committed events in `[from_bytes, to_bytes)` to `f` in
/// file order, one buffered line at a time — replay for journals of any
/// size without slurping them. The range must lie on line boundaries
/// inside the committed prefix (as [`JournalMeta`] offsets do).
pub fn stream_events(
    path: impl AsRef<Path>,
    from_bytes: u64,
    to_bytes: u64,
    mut f: impl FnMut(&JournalEvent) -> std::io::Result<()>,
) -> std::io::Result<()> {
    if from_bytes >= to_bytes {
        return Ok(());
    }
    let mut file = File::open(path.as_ref())?;
    file.seek(SeekFrom::Start(from_bytes))?;
    let mut reader = BufReader::with_capacity(128 * 1024, file);
    let mut offset = from_bytes;
    let mut buf = Vec::new();
    while offset < to_bytes {
        buf.clear();
        let n = reader.read_until(b'\n', &mut buf)?;
        let line = std::str::from_utf8(&buf[..n.saturating_sub(1)]).ok();
        let event = line.and_then(JournalEvent::parse_line).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("committed journal region is unreadable at byte {offset}"),
            )
        })?;
        f(&event)?;
        offset += n as u64;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Whole-journal views (tests, tooling, replication bootstrap).
// ---------------------------------------------------------------------

/// What a recovery scan found in a journal file, events materialized.
/// Prefer [`scan_meta`] + [`stream_events`] for large journals.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJournal {
    /// The snapshot embedded by a compaction header, if any: `events`
    /// holds only what the journal still stores past it.
    pub base: Option<Snapshot>,
    /// The committed suffix: every stored event up to and including the
    /// last complete outcome line, in file order.
    pub events: Vec<JournalEvent>,
    /// Byte length of the committed prefix.
    pub committed_bytes: u64,
    /// Bytes past the commit point that recovery discards.
    pub discarded_bytes: u64,
    /// Round index of the last committed outcome, if any round committed.
    pub last_sealed_round: Option<usize>,
}

/// Scans a journal without modifying it, materializing the committed
/// events (see [`recover`] for the truncating variant).
pub fn scan(path: impl AsRef<Path>) -> std::io::Result<RecoveredJournal> {
    let meta = scan_meta(path.as_ref())?;
    let mut events = Vec::new();
    stream_events(
        path.as_ref(),
        meta.suffix_bytes,
        meta.committed_bytes,
        |ev| {
            events.push(ev.clone());
            Ok(())
        },
    )?;
    Ok(RecoveredJournal {
        base: meta.base,
        events,
        committed_bytes: meta.committed_bytes,
        discarded_bytes: meta.discarded_bytes,
        last_sealed_round: meta.last_sealed_round,
    })
}

/// Recovers a journal in place and materializes the committed events.
pub fn recover(path: impl AsRef<Path>) -> std::io::Result<RecoveredJournal> {
    recover_meta(path.as_ref())?;
    scan(path)
}

/// Reads a journal's full committed contents as raw lines — compaction
/// header included — for diagnostics and the replication bootstrap
/// (replay uses [`stream_events`]).
pub fn committed_lines(path: impl AsRef<Path>) -> std::io::Result<Vec<String>> {
    let meta = scan_meta(path.as_ref())?;
    if meta.committed_bytes == 0 {
        return Ok(Vec::new());
    }
    let mut file = File::open(path.as_ref())?;
    let mut buf = vec![0u8; meta.committed_bytes as usize];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut buf)?;
    let text = String::from_utf8(buf).expect("committed prefix is valid UTF-8");
    Ok(text.lines().map(str::to_string).collect())
}

// ---------------------------------------------------------------------
// Compaction.
// ---------------------------------------------------------------------

/// What [`compact`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Events the rewrite dropped from disk (now covered by the header).
    pub dropped_events: u64,
    /// Journal bytes before the rewrite.
    pub bytes_before: u64,
    /// Journal bytes after the rewrite.
    pub bytes_after: u64,
}

fn corrupt(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Rewrites the journal to drop the prefix `snapshot` covers, via the
/// crash-safe dance: write a temp file in the same directory (header
/// line embedding the snapshot, then the raw bytes of everything past
/// its boundary — uncommitted tail included, so in-flight arrivals keep
/// their existing crash semantics), fsync the file, rename it over the
/// journal, fsync the directory. Returns without touching the file when
/// the snapshot covers nothing the journal still stores.
///
/// The caller must not hold buffered writes on the journal and must
/// reopen any [`JournalWriter`] afterwards (the rename changed the
/// inode an open writer points at).
///
/// # Errors
///
/// `InvalidData` when `snapshot` does not sit bitwise on one of the
/// journal's commit boundaries — compacting to an unverified state
/// would silently corrupt every future recovery.
pub fn compact(path: impl AsRef<Path>, snapshot: &Snapshot) -> std::io::Result<CompactStats> {
    let _compact_span = telemetry::hist!("journal.compact_ns").span();
    telemetry::counter!("journal.compactions").add(1);
    let path = path.as_ref();
    let meta = scan_meta(path)?;
    if snapshot.events <= meta.base_events() {
        return Ok(CompactStats {
            dropped_events: 0,
            bytes_before: meta.committed_bytes + meta.discarded_bytes,
            bytes_after: meta.committed_bytes + meta.discarded_bytes,
        });
    }
    if !meta.snapshot_covers(snapshot) {
        return Err(corrupt(format!(
            "compaction snapshot at event {} (digest {:016x}) does not sit on a \
             commit boundary of {}",
            snapshot.events,
            snapshot.digest,
            path.display()
        )));
    }
    let boundary = meta.replay_offset(snapshot);
    let bytes_before = meta.committed_bytes + meta.discarded_bytes;

    let mut tmp = path.to_path_buf();
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".compact.tmp");
    tmp.set_file_name(name);
    let bytes_after;
    {
        let mut out = BufWriter::new(File::create(&tmp)?);
        let mut header = compact_header_line(snapshot);
        header.push('\n');
        out.write_all(header.as_bytes())?;
        let mut src = File::open(path)?;
        src.seek(SeekFrom::Start(boundary))?;
        std::io::copy(&mut src, &mut out)?;
        out.flush()?;
        let file = out.into_inner().map_err(|e| e.into_error())?;
        file.sync_data()?;
        bytes_after = file.metadata()?.len();
    }
    std::fs::rename(&tmp, path)?;
    fsync_parent_dir(path);
    Ok(CompactStats {
        dropped_events: snapshot.events - meta.base_events(),
        bytes_before,
        bytes_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::bid::Bid;
    use auction::outcome::Award;
    use ingest::CollectorState;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp path per test (no external tempfile crate).
    pub(crate) fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lovm-journal-test-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn arrival(seq: u64, at: f64, bidder: usize) -> JournalEvent {
        JournalEvent::Arrival {
            seq,
            at,
            bid: Bid::new(bidder, 1.0 + bidder as f64 * 0.25, 100, 0.9),
        }
    }

    fn round_events(round: usize) -> Vec<JournalEvent> {
        let b0 = Bid::new(0, 1.0, 100, 0.9);
        let b1 = Bid::new(1, 1.25, 100, 0.9);
        vec![
            arrival(round as u64 * 2, round as f64 + 0.2, 0),
            arrival(round as u64 * 2 + 1, round as f64 + 0.4, 1),
            JournalEvent::Seal {
                round,
                sealed: vec![b0, b1],
            },
            JournalEvent::Outcome {
                round,
                awards: vec![Award {
                    bidder: 0,
                    cost: 1.0,
                    value: 2.1,
                    payment: 1.3,
                }],
                virtual_welfare: 4.2,
                spend: 1.3,
                backlog: 0.5 + round as f64,
                digest: 0x1234_5678_9abc_def0 ^ round as u64,
            },
        ]
    }

    /// A snapshot sitting at the commit boundary after `rounds` rounds
    /// of the `round_events` fixture (4 events per round).
    fn boundary_snapshot(rounds: usize) -> Snapshot {
        Snapshot {
            events: rounds as u64 * 4,
            collector: CollectorState {
                next_round: rounds,
                next_seq: rounds as u64 * 2,
                offered: rounds as u64 * 2,
                queued: Vec::new(),
                pending: Vec::new(),
            },
            backlog: 0.5 + (rounds - 1) as f64,
            welfare: 4.2 * rounds as f64,
            spend: 1.3 * rounds as f64,
            digest: 0x1234_5678_9abc_def0 ^ (rounds - 1) as u64,
            totals: ingest::StreamTotals::default(),
        }
    }

    fn write_rounds(path: &Path, rounds: std::ops::Range<usize>) -> Vec<JournalEvent> {
        let mut w = if rounds.start == 0 {
            JournalWriter::create(path).unwrap()
        } else {
            JournalWriter::open_append(path, rounds.start as u64 * 4).unwrap()
        };
        let mut all = Vec::new();
        for r in rounds {
            for ev in round_events(r) {
                w.append(&ev).unwrap();
                all.push(ev);
            }
            w.sync().unwrap();
        }
        all
    }

    #[test]
    fn write_scan_round_trips() {
        let path = temp_path("roundtrip");
        let all = write_rounds(&path, 0..3);
        let rec = scan(&path).unwrap();
        assert_eq!(rec.events, all);
        assert_eq!(rec.base, None);
        assert_eq!(rec.discarded_bytes, 0);
        assert_eq!(rec.last_sealed_round, Some(2));
        let meta = scan_meta(&path).unwrap();
        assert_eq!(meta.committed_events, 12);
        assert_eq!(meta.suffix_bytes, 0);
        assert_eq!(meta.outcomes.len(), 3);
        assert_eq!(meta.outcomes[2].events, 12);
        assert_eq!(meta.outcomes[2].round, 2);
        assert_eq!(
            meta.outcomes[2].bytes, meta.committed_bytes,
            "last outcome mark ends the committed prefix"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_reads_empty() {
        let rec = scan(temp_path("missing")).unwrap();
        assert!(rec.events.is_empty());
        assert_eq!(rec.committed_bytes, 0);
        assert_eq!(rec.last_sealed_round, None);
    }

    #[test]
    fn uncommitted_tail_is_discarded_and_truncated() {
        let path = temp_path("tail");
        let committed = write_rounds(&path, 0..1);
        // A round in flight: two arrivals and a seal, but no outcome —
        // then the crash. Recovery must land on round 0.
        let mut w = JournalWriter::open_append(&path, 4).unwrap();
        w.append(&arrival(2, 1.2, 0)).unwrap();
        w.append(&JournalEvent::Seal {
            round: 1,
            sealed: vec![Bid::new(0, 1.0, 100, 0.9)],
        })
        .unwrap();
        drop(w);
        // Plus a torn half-line, as a crashed buffered write leaves.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(br#"{"event":"outcome","round":1,"awa"#)
                .unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let rec = recover(&path).unwrap();
        assert_eq!(rec.events, committed);
        assert_eq!(rec.last_sealed_round, Some(0));
        // The file itself was truncated to the commit point.
        let after = std::fs::metadata(&path).unwrap().len();
        assert_eq!(after, rec.committed_bytes);
        assert!(after < before);
        // A second recovery is a no-op fixpoint: same committed prefix,
        // nothing left to discard.
        let again = recover(&path).unwrap();
        assert_eq!(again.events, rec.events);
        assert_eq!(again.committed_bytes, rec.committed_bytes);
        assert_eq!(again.discarded_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_recovery_continues_the_log() {
        let path = temp_path("resume");
        write_rounds(&path, 0..1);
        let mut w = JournalWriter::open_append(&path, 4).unwrap();
        w.append(&arrival(7, 1.1, 3)).unwrap(); // uncommitted
        drop(w);
        let rec = recover(&path).unwrap();
        let mut w = JournalWriter::open_append(&path, rec.events.len() as u64).unwrap();
        assert_eq!(w.events(), 4);
        for ev in round_events(1) {
            w.append(&ev).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let full = scan(&path).unwrap();
        assert_eq!(full.events.len(), 8);
        assert_eq!(full.last_sealed_round, Some(1));
        assert_eq!(full.discarded_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn committed_lines_match_event_rendering() {
        let path = temp_path("lines");
        let events = write_rounds(&path, 0..1);
        let lines = committed_lines(&path).unwrap();
        let expect: Vec<String> = events.iter().map(JournalEvent::to_line).collect();
        assert_eq!(lines, expect);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_events_matches_scan_over_any_boundary() {
        let path = temp_path("stream");
        let all = write_rounds(&path, 0..3);
        let meta = scan_meta(&path).unwrap();
        for (i, mark) in meta.outcomes.iter().enumerate() {
            let mut tail = Vec::new();
            stream_events(&path, mark.bytes, meta.committed_bytes, |ev| {
                tail.push(ev.clone());
                Ok(())
            })
            .unwrap();
            assert_eq!(tail, all[(i + 1) * 4..].to_vec(), "from outcome {i}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_drops_the_covered_prefix_and_stays_recoverable() {
        let path = temp_path("compact");
        let all = write_rounds(&path, 0..3);
        let snap = boundary_snapshot(2);
        let before = std::fs::metadata(&path).unwrap().len();
        let stats = compact(&path, &snap).unwrap();
        assert_eq!(stats.dropped_events, 8);
        assert_eq!(stats.bytes_before, before);
        assert!(stats.bytes_after < before);

        let rec = scan(&path).unwrap();
        assert_eq!(rec.base, Some(snap.clone()));
        assert_eq!(rec.events, all[8..].to_vec(), "suffix survives verbatim");
        assert_eq!(rec.last_sealed_round, Some(2));
        let meta = scan_meta(&path).unwrap();
        assert_eq!(meta.base_events(), 8);
        assert_eq!(meta.committed_events, 12);
        assert_eq!(meta.outcomes.len(), 1);
        assert_eq!(meta.outcomes[0].events, 12);
        // The snapshot still covers: at its own (now-base) boundary.
        assert!(meta.snapshot_covers(&snap));
        assert_eq!(meta.replay_offset(&snap), meta.suffix_bytes);
        // The header renders as the first committed line.
        let lines = committed_lines(&path).unwrap();
        assert!(
            lines[0].starts_with(r#"{"event":"compact""#),
            "{}",
            lines[0]
        );
        assert_eq!(lines.len(), 1 + 4);

        // Appending continues the logical numbering.
        let mut w = JournalWriter::open_append(&path, meta.committed_events).unwrap();
        for ev in round_events(3) {
            w.append(&ev).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let meta = scan_meta(&path).unwrap();
        assert_eq!(meta.committed_events, 16);
        assert_eq!(meta.last_sealed_round, Some(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_is_idempotent_and_layers() {
        let path = temp_path("recompact");
        write_rounds(&path, 0..2);
        let snap1 = boundary_snapshot(1);
        assert!(compact(&path, &snap1).unwrap().dropped_events == 4);
        // Same snapshot again: covers nothing new, file untouched.
        let len = std::fs::metadata(&path).unwrap().len();
        let again = compact(&path, &snap1).unwrap();
        assert_eq!(again.dropped_events, 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len);
        // A later snapshot compacts on top of the previous base.
        write_rounds(&path, 2..4);
        let snap3 = boundary_snapshot(3);
        assert_eq!(compact(&path, &snap3).unwrap().dropped_events, 8);
        let rec = scan(&path).unwrap();
        assert_eq!(rec.base, Some(snap3));
        assert_eq!(rec.events, round_events(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_refuses_an_unanchored_snapshot() {
        let path = temp_path("badsnap");
        write_rounds(&path, 0..2);
        // Off-boundary event count.
        let mut snap = boundary_snapshot(1);
        snap.events = 3;
        assert!(compact(&path, &snap).is_err());
        // Right count, wrong digest: a diverged history must be refused.
        let mut snap = boundary_snapshot(1);
        snap.digest ^= 1;
        assert!(compact(&path, &snap).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_preserves_the_uncommitted_tail() {
        let path = temp_path("compact-tail");
        write_rounds(&path, 0..2);
        let mut w = JournalWriter::open_append(&path, 8).unwrap();
        w.append(&arrival(9, 2.2, 3)).unwrap(); // flushed, unsealed
        drop(w);
        compact(&path, &boundary_snapshot(1)).unwrap();
        let meta = scan_meta(&path).unwrap();
        assert!(
            meta.discarded_bytes > 0,
            "in-flight arrivals must survive the rewrite"
        );
        let rec = scan(&path).unwrap();
        assert_eq!(rec.events, round_events(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_after_compaction_recovers_to_the_header() {
        let path = temp_path("compact-torn");
        write_rounds(&path, 0..2);
        let snap = boundary_snapshot(2);
        compact(&path, &snap).unwrap();
        // Tear everything after the header: the base alone remains.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(br#"{"event":"arrival","seq":8,"at":2.1,"bi"#)
                .unwrap();
        }
        let rec = recover(&path).unwrap();
        assert_eq!(rec.base, Some(snap));
        assert!(rec.events.is_empty());
        assert_eq!(
            rec.last_sealed_round,
            Some(1),
            "the base still names the last covered round"
        );
        assert_eq!(rec.discarded_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_header_only_parses_first() {
        // A compact header appearing mid-file reads as torn, not as a
        // second base.
        let path = temp_path("midheader");
        write_rounds(&path, 0..1);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let mut line = compact_header_line(&boundary_snapshot(1));
            line.push('\n');
            f.write_all(line.as_bytes()).unwrap();
        }
        let rec = scan(&path).unwrap();
        assert_eq!(rec.base, None);
        assert_eq!(rec.events.len(), 4);
        assert!(rec.discarded_bytes > 0);
        std::fs::remove_file(&path).ok();
    }
}
