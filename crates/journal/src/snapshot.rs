//! Snapshot-at-sealed-round: the collector + mechanism state frozen at a
//! commit boundary, so recovery replays only the journal tail.
//!
//! A snapshot is one JSON document written atomically (temp file +
//! `rename`, both fsynced), so a crash mid-write leaves the previous
//! snapshot intact. Reading is forgiving: a missing, unparsable, or
//! version-mismatched snapshot reads as `None` and the caller falls back
//! to replaying the journal from the start — the snapshot is an
//! accelerator, never the source of truth.

use crate::event::{bid_from_json, bid_to_json};
use ingest::collector::AdmitClass;
use ingest::events::Event;
use ingest::{CollectorState, StreamTotals};
use metrics::json::{JsonValue, ToJson};
use std::path::Path;

/// Format marker so an unrelated JSON file is never mistaken for a
/// snapshot.
const MAGIC: &str = "lovm-snapshot";
/// Bumped on any incompatible layout change; old snapshots then read as
/// absent and recovery replays the full journal.
const VERSION: u64 = 1;

/// Everything a serve session needs to resume from a sealed round
/// without replaying the journal prefix the snapshot covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Committed journal events the snapshot covers: replay starts at
    /// this event index.
    pub events: u64,
    /// The collector's carried-over state at the boundary.
    pub collector: CollectorState,
    /// Mechanism virtual-queue backlog.
    pub backlog: f64,
    /// Running virtual-welfare total.
    pub welfare: f64,
    /// Running payment total.
    pub spend: f64,
    /// Running state digest at the boundary.
    pub digest: u64,
    /// Session-lifetime ingestion rollup at the boundary, so the rounds
    /// a snapshot fast-forward skips still count in the `stats` report.
    /// Observability only — never digest-folded; a snapshot without the
    /// field reads as all zeros rather than as absent.
    pub totals: StreamTotals,
}

impl Snapshot {
    /// Renders the snapshot as its JSON document.
    pub fn to_json(&self) -> JsonValue {
        let c = &self.collector;
        let mut queued = JsonValue::array();
        for ev in &c.queued {
            queued = queued.item(event_to_json(ev));
        }
        let mut pending = JsonValue::array();
        for (target, ev, class) in &c.pending {
            pending = pending.item(
                JsonValue::object()
                    .field("target", *target)
                    .field("class", class_name(*class))
                    .field("ev", event_to_json(ev)),
            );
        }
        JsonValue::object()
            .field("magic", MAGIC)
            .field("version", VERSION)
            .field("events", self.events)
            .field("backlog", self.backlog)
            .field("welfare", self.welfare)
            .field("spend", self.spend)
            .field("digest", crate::u64_hex(self.digest))
            .field("totals", self.totals.to_json())
            .field(
                "collector",
                JsonValue::object()
                    .field("next_round", c.next_round)
                    .field("next_seq", c.next_seq)
                    .field("offered", c.offered)
                    .field("queued", queued)
                    .field("pending", pending),
            )
    }

    /// Decodes a snapshot document; `None` on anything malformed or from
    /// a different format version.
    pub fn from_json(v: &JsonValue) -> Option<Snapshot> {
        if v.get("magic")?.as_str()? != MAGIC || v.get("version")?.as_u64()? != VERSION {
            return None;
        }
        let c = v.get("collector")?;
        let queued = c
            .get("queued")?
            .as_array()?
            .iter()
            .map(event_from_json)
            .collect::<Option<Vec<Event>>>()?;
        let pending = c
            .get("pending")?
            .as_array()?
            .iter()
            .map(|p| {
                Some((
                    p.get("target")?.as_usize()?,
                    event_from_json(p.get("ev")?)?,
                    class_from_name(p.get("class")?.as_str()?)?,
                ))
            })
            .collect::<Option<Vec<(usize, Event, AdmitClass)>>>()?;
        Some(Snapshot {
            events: v.get("events")?.as_u64()?,
            collector: CollectorState {
                next_round: c.get("next_round")?.as_usize()?,
                next_seq: c.get("next_seq")?.as_u64()?,
                offered: c.get("offered")?.as_u64()?,
                queued,
                pending,
            },
            backlog: v.get("backlog")?.as_f64()?,
            welfare: v.get("welfare")?.as_f64()?,
            spend: v.get("spend")?.as_f64()?,
            digest: crate::u64_from_hex(v.get("digest")?.as_str()?)?,
            totals: v
                .get("totals")
                .and_then(totals_from_json)
                .unwrap_or_default(),
        })
    }
}

/// Decodes the rollup; any missing field zeroes the whole thing (the
/// rollup is telemetry, not truth — it must never fail a recovery).
fn totals_from_json(v: &JsonValue) -> Option<StreamTotals> {
    Some(StreamTotals {
        rounds: v.get("rounds")?.as_usize()?,
        arrivals: v.get("arrivals")?.as_usize()?,
        sealed: v.get("sealed")?.as_usize()?,
        admitted_late: v.get("admitted_late")?.as_usize()?,
        deferred: v.get("deferred")?.as_usize()?,
        dropped: v.get("dropped")?.as_usize()?,
        superseded: v.get("superseded")?.as_usize()?,
        shed: v.get("shed")?.as_usize()?,
        blocked: v.get("blocked")?.as_usize()?,
        buffer_peak: v.get("buffer_peak")?.as_usize()?,
    })
}

fn event_to_json(ev: &Event) -> JsonValue {
    JsonValue::object()
        .field("time", ev.time)
        .field("seq", ev.seq)
        .field("bid", bid_to_json(&ev.bid))
}

fn event_from_json(v: &JsonValue) -> Option<Event> {
    let time = v.get("time")?.as_f64()?;
    if !time.is_finite() {
        return None;
    }
    Some(Event {
        time,
        seq: v.get("seq")?.as_u64()?,
        bid: bid_from_json(v.get("bid")?)?,
    })
}

fn class_name(class: AdmitClass) -> &'static str {
    match class {
        AdmitClass::OnTime => "on_time",
        AdmitClass::Grace => "grace",
        AdmitClass::Deferred => "deferred",
    }
}

fn class_from_name(name: &str) -> Option<AdmitClass> {
    match name {
        "on_time" => Some(AdmitClass::OnTime),
        "grace" => Some(AdmitClass::Grace),
        "deferred" => Some(AdmitClass::Deferred),
        _ => None,
    }
}

/// Writes a snapshot atomically: temp file in the same directory, fsync,
/// rename over the target, fsync the directory. A crash at any point
/// leaves either the old snapshot or the new one, never a torn mix.
pub fn write_snapshot(path: impl AsRef<Path>, snapshot: &Snapshot) -> std::io::Result<()> {
    use std::io::Write;
    let _snapshot_span = telemetry::hist!("journal.snapshot_ns").span();
    telemetry::counter!("journal.snapshots").add(1);
    let path = path.as_ref();
    let mut tmp = path.to_path_buf();
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    tmp.set_file_name(name);
    {
        let mut file = std::fs::File::create(&tmp)?;
        let mut doc = snapshot.to_json().to_string();
        doc.push('\n');
        file.write_all(doc.as_bytes())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable: without the directory fsync a
    // crash can forget the entry even though the data was fsynced.
    crate::store::fsync_parent_dir(path);
    Ok(())
}

/// Reads a snapshot; `Ok(None)` when the file is missing or does not
/// decode (recovery then replays the full journal).
pub fn read_snapshot(path: impl AsRef<Path>) -> std::io::Result<Option<Snapshot>> {
    let text = match std::fs::read_to_string(path.as_ref()) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ok(JsonValue::parse(text.trim())
        .ok()
        .as_ref()
        .and_then(Snapshot::from_json))
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::bid::Bid;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lovm-snapshot-test-{}-{tag}-{n}.json",
            std::process::id()
        ))
    }

    fn sample() -> Snapshot {
        let ev = |time: f64, seq: u64, bidder: usize| Event {
            time,
            seq,
            bid: Bid::new(bidder, 1.0 + bidder as f64 * 0.3, 250, 0.85),
        };
        Snapshot {
            events: 42,
            collector: CollectorState {
                next_round: 7,
                next_seq: 40,
                offered: 40,
                queued: vec![ev(7.25, 38, 2), ev(7.9, 39, 5)],
                pending: vec![
                    (7, ev(6.8, 35, 1), AdmitClass::Deferred),
                    (8, ev(6.95, 36, 4), AdmitClass::OnTime),
                ],
            },
            backlog: 1.0 / 3.0,
            welfare: 123.456,
            spend: 78.9,
            digest: 0xdead_beef_cafe_f00d,
            totals: StreamTotals {
                rounds: 7,
                arrivals: 44,
                sealed: 38,
                admitted_late: 2,
                deferred: 3,
                dropped: 4,
                superseded: 1,
                shed: 1,
                blocked: 0,
                buffer_peak: 9,
            },
        }
    }

    #[test]
    fn snapshot_round_trips_bitwise() {
        let snap = sample();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.backlog.to_bits(), snap.backlog.to_bits());
        assert_eq!(
            back.collector.queued[0].time.to_bits(),
            snap.collector.queued[0].time.to_bits()
        );
    }

    #[test]
    fn write_read_round_trips_and_replaces_atomically() {
        let path = temp_path("rw");
        assert_eq!(read_snapshot(&path).unwrap(), None);
        let snap = sample();
        write_snapshot(&path, &snap).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), Some(snap.clone()));
        // Overwrite with a newer snapshot; the old one is fully replaced.
        let newer = Snapshot { events: 99, ..snap };
        write_snapshot(&path, &newer).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), Some(newer));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_or_foreign_snapshots_read_as_absent() {
        let path = temp_path("corrupt");
        for garbage in [
            "",
            "not json at all",
            r#"{"magic":"something-else","version":1}"#,
            r#"{"magic":"lovm-snapshot","version":999,"events":0}"#,
            r#"{"magic":"lovm-snapshot","version":1}"#,
        ] {
            std::fs::write(&path, garbage).unwrap();
            assert_eq!(read_snapshot(&path).unwrap(), None, "input: {garbage:?}");
        }
        std::fs::remove_file(&path).ok();
    }
}
