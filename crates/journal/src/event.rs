//! Journal events and their JSON-line encoding.
//!
//! One event per line, rendered with `metrics::json` — whose writer
//! guarantees that every finite `f64` parses back *bit-identically*
//! (shortest-roundtrip rendering, correctly rounded parsing, `-0.0`
//! kept signed). That exactness is what lets a replayed journal
//! reconstruct the market's float state without drift.
//!
//! Decoding is total: any malformed, truncated, or out-of-domain line
//! yields `None` instead of panicking, because the reader uses decode
//! failure to locate the torn tail of a crashed write.

use auction::bid::Bid;
use auction::outcome::Award;
use metrics::json::JsonValue;

/// One entry in the append-only market journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A bid arrival accepted by the collector under stream sequence
    /// number `seq`.
    Arrival {
        /// Stream sequence number (the deterministic tie-break).
        seq: u64,
        /// Virtual arrival instant.
        at: f64,
        /// The bid.
        bid: Bid,
    },
    /// A round sealed: the frozen, canonically ordered bid set.
    Seal {
        /// Round index.
        round: usize,
        /// Sealed bids in ascending-bidder order.
        sealed: Vec<Bid>,
    },
    /// The auction outcome of a sealed round — the commit record. A round
    /// is durable if and only if its outcome line is complete on disk.
    Outcome {
        /// Round index.
        round: usize,
        /// Winner awards in outcome order.
        awards: Vec<Award>,
        /// Virtual welfare of the selection.
        virtual_welfare: f64,
        /// Total payment of the round.
        spend: f64,
        /// Mechanism virtual-queue backlog *after* observing the spend.
        backlog: f64,
        /// Running state digest after this round (see `crate::Digest`).
        digest: u64,
    },
}

impl JournalEvent {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            JournalEvent::Arrival { seq, at, bid } => JsonValue::object()
                .field("event", "arrival")
                .field("seq", *seq)
                .field("at", *at)
                .field("bid", bid_to_json(bid))
                .to_string(),
            JournalEvent::Seal { round, sealed } => {
                let mut bids = JsonValue::array();
                for b in sealed {
                    bids = bids.item(bid_to_json(b));
                }
                JsonValue::object()
                    .field("event", "seal")
                    .field("round", *round)
                    .field("sealed", bids)
                    .to_string()
            }
            JournalEvent::Outcome {
                round,
                awards,
                virtual_welfare,
                spend,
                backlog,
                digest,
            } => {
                let mut aw = JsonValue::array();
                for a in awards {
                    aw = aw.item(
                        JsonValue::object()
                            .field("bidder", a.bidder)
                            .field("cost", a.cost)
                            .field("value", a.value)
                            .field("payment", a.payment),
                    );
                }
                JsonValue::object()
                    .field("event", "outcome")
                    .field("round", *round)
                    .field("awards", aw)
                    .field("welfare", *virtual_welfare)
                    .field("spend", *spend)
                    .field("backlog", *backlog)
                    .field("digest", crate::u64_hex(*digest))
                    .to_string()
            }
        }
    }

    /// Decodes one journal line; `None` on anything malformed.
    pub fn parse_line(line: &str) -> Option<JournalEvent> {
        let v = JsonValue::parse(line).ok()?;
        match v.get("event")?.as_str()? {
            "arrival" => Some(JournalEvent::Arrival {
                seq: v.get("seq")?.as_u64()?,
                at: finite(v.get("at")?.as_f64()?)?,
                bid: bid_from_json(v.get("bid")?)?,
            }),
            "seal" => {
                let sealed = v
                    .get("sealed")?
                    .as_array()?
                    .iter()
                    .map(bid_from_json)
                    .collect::<Option<Vec<Bid>>>()?;
                Some(JournalEvent::Seal {
                    round: v.get("round")?.as_usize()?,
                    sealed,
                })
            }
            "outcome" => {
                let awards = v
                    .get("awards")?
                    .as_array()?
                    .iter()
                    .map(award_from_json)
                    .collect::<Option<Vec<Award>>>()?;
                Some(JournalEvent::Outcome {
                    round: v.get("round")?.as_usize()?,
                    awards,
                    virtual_welfare: v.get("welfare")?.as_f64()?,
                    spend: v.get("spend")?.as_f64()?,
                    backlog: v.get("backlog")?.as_f64()?,
                    digest: crate::u64_from_hex(v.get("digest")?.as_str()?)?,
                })
            }
            _ => None,
        }
    }
}

/// Renders a bid as a JSON object.
pub(crate) fn bid_to_json(bid: &Bid) -> JsonValue {
    JsonValue::object()
        .field("bidder", bid.bidder)
        .field("cost", bid.cost)
        .field("data", bid.data_size)
        .field("quality", bid.quality)
}

/// Decodes a bid, re-checking the domain `Bid::new` would assert (a
/// corrupted-but-parseable line must read as torn, not panic).
pub(crate) fn bid_from_json(v: &JsonValue) -> Option<Bid> {
    let cost = v.get("cost")?.as_f64()?;
    let quality = v.get("quality")?.as_f64()?;
    if !(cost.is_finite() && cost >= 0.0 && (0.0..=1.0).contains(&quality)) {
        return None;
    }
    Some(Bid::new(
        v.get("bidder")?.as_usize()?,
        cost,
        v.get("data")?.as_usize()?,
        quality,
    ))
}

fn award_from_json(v: &JsonValue) -> Option<Award> {
    Some(Award {
        bidder: v.get("bidder")?.as_usize()?,
        cost: v.get("cost")?.as_f64()?,
        value: v.get("value")?.as_f64()?,
        payment: v.get("payment")?.as_f64()?,
    })
}

fn finite(v: f64) -> Option<f64> {
    v.is_finite().then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::Arrival {
                seq: 0,
                at: 0.372615,
                bid: Bid::new(3, 1.25, 300, 0.9),
            },
            JournalEvent::Arrival {
                seq: 1,
                at: 0.8,
                bid: Bid::new(1, 0.0, 0, 1.0),
            },
            JournalEvent::Seal {
                round: 0,
                sealed: vec![Bid::new(1, 0.0, 0, 1.0), Bid::new(3, 1.25, 300, 0.9)],
            },
            JournalEvent::Outcome {
                round: 0,
                awards: vec![Award {
                    bidder: 1,
                    cost: 0.0,
                    value: 0.5,
                    payment: std::f64::consts::FRAC_1_SQRT_2,
                }],
                virtual_welfare: 10.0 / 3.0,
                spend: std::f64::consts::FRAC_1_SQRT_2,
                backlog: -0.0,
                digest: 0xcbf2_9ce4_8422_2325,
            },
            JournalEvent::Seal {
                round: 1,
                sealed: vec![],
            },
            JournalEvent::Outcome {
                round: 1,
                awards: vec![],
                virtual_welfare: 0.0,
                spend: 0.0,
                backlog: 0.1 + 0.2,
                digest: u64::MAX,
            },
        ]
    }

    #[test]
    fn events_round_trip_bitwise() {
        for ev in sample_events() {
            let line = ev.to_line();
            assert!(!line.contains('\n'), "one event per line: {line}");
            let back =
                JournalEvent::parse_line(&line).unwrap_or_else(|| panic!("failed to parse {line}"));
            assert_eq!(back, ev, "line: {line}");
            // PartialEq on f64 treats -0.0 == 0.0; re-check the bits for
            // the float fields that must survive replay exactly.
            if let (
                JournalEvent::Outcome { backlog: a, .. },
                JournalEvent::Outcome { backlog: b, .. },
            ) = (&ev, &back)
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn torn_prefixes_never_parse() {
        for ev in sample_events() {
            let line = ev.to_line();
            for cut in 0..line.len() {
                assert!(
                    JournalEvent::parse_line(&line[..cut]).is_none(),
                    "torn prefix parsed: {:?}",
                    &line[..cut]
                );
            }
        }
    }

    #[test]
    fn corrupted_domains_read_as_torn() {
        // Parseable JSON with out-of-domain values must decode to None,
        // not panic inside Bid::new.
        for line in [
            r#"{"event":"arrival","seq":0,"at":0.1,"bid":{"bidder":0,"cost":-1,"data":1,"quality":0.5}}"#,
            r#"{"event":"arrival","seq":0,"at":0.1,"bid":{"bidder":0,"cost":1,"data":1,"quality":1.5}}"#,
            r#"{"event":"arrival","seq":-1,"at":0.1,"bid":{"bidder":0,"cost":1,"data":1,"quality":0.5}}"#,
            r#"{"event":"outcome","round":0,"awards":[],"welfare":0,"spend":0,"backlog":0,"digest":"xyz"}"#,
            r#"{"event":"mystery","round":0}"#,
            r#"[1,2,3]"#,
        ] {
            assert_eq!(JournalEvent::parse_line(line), None, "{line}");
        }
    }
}
