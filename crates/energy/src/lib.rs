//! # energy — renewable-energy harvesting substrate
//!
//! Simulates the energy side of "sustainable" federated learning: devices
//! powered by ambient sources (solar, kinetic, RF) accumulate energy in a
//! battery and can only train — and therefore only *bid* — when charged.
//! This substitutes for the measured device traces of the paper's testbed
//! (see DESIGN.md, Substitutions): each harvesting regime found in real
//! traces is representable by one of the parametric processes here.
//!
//! * [`battery`] — finite-capacity energy store,
//! * [`harvest`] — harvesting processes (deterministic renewal, Bernoulli,
//!   Markov on/off, diurnal solar),
//! * [`cost`] — per-round training energy cost models and the combined
//!   per-client [`cost::ClientEnergyProfile`],
//! * [`trace`] — record synthetic harvesters to CSV and replay measured
//!   traces through the same simulation path.

pub mod battery;
pub mod cost;
pub mod harvest;
pub mod trace;

pub use battery::Battery;
pub use cost::{ClientEnergyProfile, TrainingCostModel};
pub use harvest::{Harvester, HarvesterKind};
pub use trace::{EnergyTrace, TraceHarvester};
