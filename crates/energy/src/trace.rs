//! Recorded energy traces: capture, persist, and replay.
//!
//! The paper measured real device harvesting traces; this repository
//! substitutes parametric processes ([`crate::harvest`]). This module is
//! the bridge for users who *do* have real traces: record any harvester
//! into an [`EnergyTrace`], persist it as CSV, or load a measured CSV and
//! replay it through the same simulation path via [`TraceHarvester`].

use crate::harvest::{Harvester, HarvesterKind};
use std::fmt;

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line failed to parse as a non-negative number.
    BadSample {
        /// 1-based line number.
        line: usize,
        /// Offending content.
        content: String,
    },
    /// The trace contained no samples.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadSample { line, content } => {
                write!(f, "bad sample on line {line}: {content:?}")
            }
            TraceError::Empty => write!(f, "trace contains no samples"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A fixed sequence of per-round harvest amounts.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyTrace {
    samples: Vec<f64>,
}

impl EnergyTrace {
    /// Creates a trace from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains a negative/non-finite value.
    pub fn new(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "trace must be non-empty");
        assert!(
            samples.iter().all(|&s| s.is_finite() && s >= 0.0),
            "samples must be finite and non-negative"
        );
        EnergyTrace { samples }
    }

    /// Records `len` rounds of a synthetic harvester into a trace.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the kind's parameters are invalid.
    pub fn record(kind: HarvesterKind, seed: u64, len: usize) -> Self {
        assert!(len > 0, "len must be positive");
        let mut h = Harvester::new(kind, seed);
        EnergyTrace::new((0..len).map(|_| h.step()).collect())
    }

    /// Parses a trace from CSV/plain text: one sample per line, `#`-prefixed
    /// lines and blank lines ignored.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on malformed or empty input.
    pub fn from_csv(text: &str) -> Result<Self, TraceError> {
        let mut samples = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.parse::<f64>() {
                Ok(v) if v.is_finite() && v >= 0.0 => samples.push(v),
                _ => {
                    return Err(TraceError::BadSample {
                        line: i + 1,
                        content: line.to_string(),
                    })
                }
            }
        }
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        Ok(EnergyTrace { samples })
    }

    /// Serializes as one sample per line with a header comment.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# energy trace: one harvest sample per round\n");
        for s in &self.samples {
            out.push_str(&format!("{s}\n"));
        }
        out
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty (never true for a constructed trace).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample at round `t`, cycling past the end (periodic extension).
    pub fn at(&self, t: u64) -> f64 {
        self.samples[(t % self.samples.len() as u64) as usize]
    }

    /// Empirical mean harvest rate.
    pub fn mean_rate(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Borrow of the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Replays an [`EnergyTrace`] with the [`Harvester`]-like `step` interface,
/// cycling when the trace is exhausted.
#[derive(Debug, Clone)]
pub struct TraceHarvester {
    trace: EnergyTrace,
    round: u64,
}

impl TraceHarvester {
    /// Creates a replayer starting at round 0.
    pub fn new(trace: EnergyTrace) -> Self {
        TraceHarvester { trace, round: 0 }
    }

    /// Energy harvested in the next round.
    pub fn step(&mut self) -> f64 {
        let v = self.trace.at(self.round);
        self.round += 1;
        v
    }

    /// Rounds replayed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The underlying trace.
    pub fn trace(&self) -> &EnergyTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let t = EnergyTrace::new(vec![0.0, 1.5, 2.25]);
        let parsed = EnergyTrace::from_csv(&t.to_csv()).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn from_csv_skips_comments_and_blanks() {
        let t = EnergyTrace::from_csv("# header\n\n1.0\n# mid\n2.0\n").unwrap();
        assert_eq!(t.samples(), &[1.0, 2.0]);
    }

    #[test]
    fn from_csv_rejects_garbage() {
        let err = EnergyTrace::from_csv("1.0\nhello\n").unwrap_err();
        assert_eq!(
            err,
            TraceError::BadSample {
                line: 2,
                content: "hello".into()
            }
        );
        assert!(err.to_string().contains("line 2"));
        assert_eq!(
            EnergyTrace::from_csv("# only\n").unwrap_err(),
            TraceError::Empty
        );
        let neg = EnergyTrace::from_csv("-1.0\n").unwrap_err();
        assert!(matches!(neg, TraceError::BadSample { .. }));
    }

    #[test]
    fn record_matches_direct_sampling() {
        let kind = HarvesterKind::Bernoulli {
            p: 0.5,
            amount: 2.0,
        };
        let t = EnergyTrace::record(kind, 9, 50);
        let mut h = Harvester::new(kind, 9);
        let direct: Vec<f64> = (0..50).map(|_| h.step()).collect();
        assert_eq!(t.samples(), direct.as_slice());
    }

    #[test]
    fn replay_cycles() {
        let t = EnergyTrace::new(vec![1.0, 2.0, 3.0]);
        let mut r = TraceHarvester::new(t);
        let out: Vec<f64> = (0..7).map(|_| r.step()).collect();
        assert_eq!(out, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]);
        assert_eq!(r.rounds(), 7);
    }

    #[test]
    fn mean_rate_and_at() {
        let t = EnergyTrace::new(vec![1.0, 3.0]);
        assert_eq!(t.mean_rate(), 2.0);
        assert_eq!(t.at(0), 1.0);
        assert_eq!(t.at(5), 3.0);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn recorded_solar_trace_preserves_periodicity() {
        let kind = HarvesterKind::Solar {
            day_length: 24,
            peak: 1.0,
            phase: 0,
            noise: 0.0,
        };
        let t = EnergyTrace::record(kind, 0, 24);
        let mut r = TraceHarvester::new(t);
        let day1: Vec<f64> = (0..24).map(|_| r.step()).collect();
        let day2: Vec<f64> = (0..24).map(|_| r.step()).collect();
        assert_eq!(day1, day2);
    }

    #[test]
    #[should_panic(expected = "trace must be non-empty")]
    fn rejects_empty() {
        let _ = EnergyTrace::new(vec![]);
    }
}
