//! Per-round training energy costs and the combined client energy profile.

use crate::battery::Battery;
use crate::harvest::{Harvester, HarvesterKind};

/// Energy cost of performing one global round of local training.
///
/// `cost = compute_per_example · examples · local_epochs + comm_cost`,
/// the standard affine model (computation scales with data processed,
/// communication is size-of-model and thus constant per round).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingCostModel {
    /// Energy per training example per local epoch.
    pub compute_per_example: f64,
    /// Number of local epochs per round.
    pub local_epochs: usize,
    /// Energy per round for uploading/downloading the model.
    pub comm_cost: f64,
}

impl Default for TrainingCostModel {
    fn default() -> Self {
        TrainingCostModel {
            compute_per_example: 0.001,
            local_epochs: 1,
            comm_cost: 0.1,
        }
    }
}

impl TrainingCostModel {
    /// Energy needed for one round of training over `examples` data points.
    pub fn round_cost(&self, examples: usize) -> f64 {
        self.compute_per_example * examples as f64 * self.local_epochs.max(1) as f64
            + self.comm_cost
    }
}

/// The full energy state of one client: harvester + battery + cost model.
///
/// Drives availability in the online auction: a client can bid in a round
/// only if its battery holds one round's training energy.
#[derive(Debug)]
pub struct ClientEnergyProfile {
    harvester: Harvester,
    battery: Battery,
    cost_model: TrainingCostModel,
    examples: usize,
}

impl ClientEnergyProfile {
    /// Creates a profile. The battery starts full (devices are deployed
    /// charged).
    pub fn new(
        kind: HarvesterKind,
        battery_capacity: f64,
        cost_model: TrainingCostModel,
        examples: usize,
        seed: u64,
    ) -> Self {
        ClientEnergyProfile {
            harvester: Harvester::new(kind, seed),
            battery: Battery::with_level(battery_capacity, battery_capacity),
            cost_model,
            examples,
        }
    }

    /// Energy required for one round of training.
    pub fn round_cost(&self) -> f64 {
        self.cost_model.round_cost(self.examples)
    }

    /// Battery state.
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Whether the client currently has energy for one training round.
    pub fn can_train(&self) -> bool {
        self.battery.can_supply(self.round_cost())
    }

    /// Advances one round: harvest energy into the battery. Returns the
    /// amount harvested (pre-clamp).
    pub fn harvest(&mut self) -> f64 {
        let e = self.harvester.step();
        self.battery.charge(e);
        e
    }

    /// Consumes one round's training energy; returns `false` (and leaves the
    /// battery untouched) if there is not enough.
    pub fn consume_training(&mut self) -> bool {
        let c = self.round_cost();
        self.battery.try_consume(c)
    }

    /// The client's *energy renewal cycle*: expected rounds of harvesting
    /// needed to fund one round of training (∞ if the mean rate is 0).
    pub fn renewal_cycle(&self) -> f64 {
        let rate = self.harvester.kind().mean_rate();
        if rate <= 0.0 {
            f64::INFINITY
        } else {
            self.round_cost() / rate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(rate: f64) -> ClientEnergyProfile {
        ClientEnergyProfile::new(
            HarvesterKind::Constant { rate },
            10.0,
            TrainingCostModel {
                compute_per_example: 0.01,
                local_epochs: 2,
                comm_cost: 0.5,
            },
            100, // round cost = 0.01*100*2 + 0.5 = 2.5
            0,
        )
    }

    #[test]
    fn round_cost_affine() {
        let m = TrainingCostModel {
            compute_per_example: 0.002,
            local_epochs: 3,
            comm_cost: 0.4,
        };
        assert!((m.round_cost(500) - (0.002 * 500.0 * 3.0 + 0.4)).abs() < 1e-12);
        assert_eq!(m.round_cost(0), 0.4);
    }

    #[test]
    fn starts_charged_and_trains() {
        let mut p = profile(0.0);
        assert!(p.can_train());
        assert!(p.consume_training());
        // 10.0 funds exactly four rounds at 2.5 each.
        assert!(p.consume_training());
        assert!(p.consume_training());
        assert!(p.consume_training());
        assert!(!p.can_train());
        assert!(!p.consume_training());
    }

    #[test]
    fn harvest_refills() {
        let mut p = profile(1.0);
        for _ in 0..4 {
            p.consume_training();
        }
        assert!(!p.can_train());
        // Harvest 1.0/round: after 3 rounds, 3.0 ≥ 2.5.
        p.harvest();
        p.harvest();
        assert!(!p.can_train());
        p.harvest();
        assert!(p.can_train());
    }

    #[test]
    fn renewal_cycle_matches_rates() {
        let p = profile(0.5);
        assert!((p.renewal_cycle() - 5.0).abs() < 1e-12);
        let p0 = profile(0.0);
        assert!(p0.renewal_cycle().is_infinite());
    }

    #[test]
    fn intermittent_availability_pattern() {
        // A client whose renewal cycle is 5 trains roughly once per 5 rounds
        // in steady state when it always trains as soon as possible.
        let mut p = profile(0.5);
        let mut trained = 0;
        for _ in 0..1000 {
            p.harvest();
            if p.can_train() && p.consume_training() {
                trained += 1;
            }
        }
        // Initial battery funds 4 extra rounds; steady state is 1000/5 = 200.
        assert!(
            (trained as i64 - 204).abs() <= 2,
            "trained {trained}, expected ≈ 204"
        );
    }
}
