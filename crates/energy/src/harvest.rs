//! Ambient-energy harvesting processes.

use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

/// Parametric families of harvesting processes. Each produces a
/// non-negative amount of energy per (global FL) round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HarvesterKind {
    /// Constant trickle: `rate` per round. With training cost `E·rate` this
    /// reproduces the "energy renewal cycle of E rounds" model.
    Constant {
        /// Energy per round.
        rate: f64,
    },
    /// Bernoulli bursts: with probability `p` harvest `amount`, else 0
    /// (e.g. kinetic harvesting from motion events).
    Bernoulli {
        /// Burst probability per round.
        p: f64,
        /// Burst size.
        amount: f64,
    },
    /// Two-state Markov (Gilbert) model: in the On state harvest `rate_on`
    /// per round, in Off harvest 0 (e.g. cloud cover for solar).
    MarkovOnOff {
        /// P(On → Off) per round.
        p_on_off: f64,
        /// P(Off → On) per round.
        p_off_on: f64,
        /// Harvest rate while On.
        rate_on: f64,
    },
    /// Diurnal solar: a clipped sinusoid with period `day_length` rounds,
    /// peak `peak`, phase offset `phase` (rounds), plus multiplicative
    /// noise of the given relative standard deviation.
    Solar {
        /// Rounds per simulated day.
        day_length: usize,
        /// Peak harvest rate at local noon.
        peak: f64,
        /// Phase offset in rounds (device longitude / orientation).
        phase: usize,
        /// Relative noise std (cloud flicker), ≥ 0.
        noise: f64,
    },
}

impl HarvesterKind {
    /// Long-run mean harvest rate of the process (exact, not sampled).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            HarvesterKind::Constant { rate } => rate,
            HarvesterKind::Bernoulli { p, amount } => p * amount,
            HarvesterKind::MarkovOnOff {
                p_on_off,
                p_off_on,
                rate_on,
            } => {
                // Stationary P(On) = p_off_on / (p_on_off + p_off_on).
                let denom = p_on_off + p_off_on;
                if denom <= 0.0 {
                    rate_on // absorbing On (we start On)
                } else {
                    rate_on * p_off_on / denom
                }
            }
            HarvesterKind::Solar {
                day_length, peak, ..
            } => {
                // Mean of max(0, sin) over a period is 1/π.
                let _ = day_length;
                peak / std::f64::consts::PI
            }
        }
    }
}

/// A stateful harvester: a [`HarvesterKind`] plus its RNG and Markov state.
#[derive(Debug)]
pub struct Harvester {
    kind: HarvesterKind,
    rng: StdRng,
    round: u64,
    markov_on: bool,
}

impl Harvester {
    /// Creates a harvester with its own deterministic random stream.
    ///
    /// # Panics
    ///
    /// Panics if the kind's parameters are out of domain (negative rates,
    /// probabilities outside `[0, 1]`, zero day length).
    pub fn new(kind: HarvesterKind, seed: u64) -> Self {
        match kind {
            HarvesterKind::Constant { rate } => {
                assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0");
            }
            HarvesterKind::Bernoulli { p, amount } => {
                assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
                assert!(amount.is_finite() && amount >= 0.0, "amount must be >= 0");
            }
            HarvesterKind::MarkovOnOff {
                p_on_off,
                p_off_on,
                rate_on,
            } => {
                assert!((0.0..=1.0).contains(&p_on_off), "p_on_off in [0, 1]");
                assert!((0.0..=1.0).contains(&p_off_on), "p_off_on in [0, 1]");
                assert!(
                    rate_on.is_finite() && rate_on >= 0.0,
                    "rate_on must be >= 0"
                );
            }
            HarvesterKind::Solar {
                day_length,
                peak,
                noise,
                ..
            } => {
                assert!(day_length > 0, "day_length must be positive");
                assert!(peak.is_finite() && peak >= 0.0, "peak must be >= 0");
                assert!(noise.is_finite() && noise >= 0.0, "noise must be >= 0");
            }
        }
        Harvester {
            kind,
            rng: StdRng::seed_from_u64(seed),
            round: 0,
            markov_on: true,
        }
    }

    /// The process family.
    pub fn kind(&self) -> &HarvesterKind {
        &self.kind
    }

    /// Energy harvested in the next round (advances internal state).
    pub fn step(&mut self) -> f64 {
        let t = self.round;
        self.round += 1;
        match self.kind {
            HarvesterKind::Constant { rate } => rate,
            HarvesterKind::Bernoulli { p, amount } => {
                if self.rng.random::<f64>() < p {
                    amount
                } else {
                    0.0
                }
            }
            HarvesterKind::MarkovOnOff {
                p_on_off,
                p_off_on,
                rate_on,
            } => {
                let out = if self.markov_on { rate_on } else { 0.0 };
                let u: f64 = self.rng.random();
                if self.markov_on {
                    if u < p_on_off {
                        self.markov_on = false;
                    }
                } else if u < p_off_on {
                    self.markov_on = true;
                }
                out
            }
            HarvesterKind::Solar {
                day_length,
                peak,
                phase,
                noise,
            } => {
                let angle = 2.0 * std::f64::consts::PI * ((t as usize + phase) % day_length) as f64
                    / day_length as f64;
                let base = peak * angle.sin().max(0.0);
                if noise > 0.0 && base > 0.0 {
                    // Multiplicative log-normal-ish flicker, clamped ≥ 0.
                    let u1: f64 = 1.0 - self.rng.random::<f64>();
                    let u2: f64 = self.rng.random();
                    let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (base * (1.0 + noise * gauss)).max(0.0)
                } else {
                    base
                }
            }
        }
    }

    /// Rounds stepped so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(kind: HarvesterKind, seed: u64, n: usize) -> f64 {
        let mut h = Harvester::new(kind, seed);
        (0..n).map(|_| h.step()).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut h = Harvester::new(HarvesterKind::Constant { rate: 0.5 }, 0);
        for _ in 0..10 {
            assert_eq!(h.step(), 0.5);
        }
        assert_eq!(h.rounds(), 10);
    }

    #[test]
    fn bernoulli_mean_matches() {
        let kind = HarvesterKind::Bernoulli {
            p: 0.3,
            amount: 2.0,
        };
        let m = mean_of(kind, 1, 50_000);
        assert!((m - kind.mean_rate()).abs() < 0.03, "mean {m}");
    }

    #[test]
    fn markov_mean_matches_stationary() {
        let kind = HarvesterKind::MarkovOnOff {
            p_on_off: 0.1,
            p_off_on: 0.3,
            rate_on: 1.0,
        };
        let m = mean_of(kind, 2, 100_000);
        assert!(
            (m - kind.mean_rate()).abs() < 0.02,
            "mean {m} vs {}",
            kind.mean_rate()
        );
    }

    #[test]
    fn markov_is_bursty() {
        // Consecutive-round correlation should be positive.
        let mut h = Harvester::new(
            HarvesterKind::MarkovOnOff {
                p_on_off: 0.05,
                p_off_on: 0.05,
                rate_on: 1.0,
            },
            3,
        );
        let xs: Vec<f64> = (0..20_000).map(|_| h.step()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let cov: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (xs.len() - 1) as f64;
        assert!(cov > 0.1, "lag-1 covariance {cov} not bursty");
    }

    #[test]
    fn solar_is_periodic_and_nonnegative() {
        let mut h = Harvester::new(
            HarvesterKind::Solar {
                day_length: 24,
                peak: 2.0,
                phase: 0,
                noise: 0.0,
            },
            4,
        );
        let day1: Vec<f64> = (0..24).map(|_| h.step()).collect();
        let day2: Vec<f64> = (0..24).map(|_| h.step()).collect();
        assert_eq!(day1, day2); // noiseless → exactly periodic
        assert!(day1.iter().all(|&v| v >= 0.0));
        // Night half of the cycle harvests nothing.
        assert!(day1.iter().filter(|&&v| v == 0.0).count() >= 11);
        let m = day1.iter().sum::<f64>() / 24.0;
        let expected = HarvesterKind::Solar {
            day_length: 24,
            peak: 2.0,
            phase: 0,
            noise: 0.0,
        }
        .mean_rate();
        assert!((m - expected).abs() < 0.1, "mean {m} vs {expected}");
    }

    #[test]
    fn solar_phase_shifts_cycle() {
        let mk = |phase| {
            let mut h = Harvester::new(
                HarvesterKind::Solar {
                    day_length: 24,
                    peak: 1.0,
                    phase,
                    noise: 0.0,
                },
                0,
            );
            (0..24).map(|_| h.step()).collect::<Vec<f64>>()
        };
        let a = mk(0);
        let b = mk(6);
        assert_ne!(a, b);
        // Shifted by 6: b[t] == a[(t + 6) % 24].
        for t in 0..24 {
            assert!((b[t] - a[(t + 6) % 24]).abs() < 1e-12);
        }
    }

    #[test]
    fn solar_noise_keeps_nonnegative() {
        let mut h = Harvester::new(
            HarvesterKind::Solar {
                day_length: 24,
                peak: 1.0,
                phase: 0,
                noise: 1.0,
            },
            7,
        );
        for _ in 0..2000 {
            assert!(h.step() >= 0.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let kind = HarvesterKind::Bernoulli {
            p: 0.5,
            amount: 1.0,
        };
        let a: Vec<f64> = {
            let mut h = Harvester::new(kind, 9);
            (0..50).map(|_| h.step()).collect()
        };
        let b: Vec<f64> = {
            let mut h = Harvester::new(kind, 9);
            (0..50).map(|_| h.step()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn rejects_bad_probability() {
        let _ = Harvester::new(
            HarvesterKind::Bernoulli {
                p: 1.5,
                amount: 1.0,
            },
            0,
        );
    }

    #[test]
    fn mean_rate_constant_absorbing_markov() {
        let kind = HarvesterKind::MarkovOnOff {
            p_on_off: 0.0,
            p_off_on: 0.0,
            rate_on: 2.0,
        };
        assert_eq!(kind.mean_rate(), 2.0);
        let m = mean_of(kind, 5, 1000);
        assert_eq!(m, 2.0); // starts On and never leaves
    }
}
