//! A finite-capacity energy store.

/// A battery holding harvested energy (joules, abstract units).
///
/// # Example
///
/// ```
/// use energy::battery::Battery;
/// let mut b = Battery::new(10.0);
/// b.charge(4.0);
/// assert!(b.try_consume(3.0));
/// assert!(!b.try_consume(3.0)); // only 1.0 left
/// assert_eq!(b.level(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity: f64,
    level: f64,
}

impl Battery {
    /// Creates an empty battery.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive and finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        Battery {
            capacity,
            level: 0.0,
        }
    }

    /// Creates a battery at the given initial level (clamped to capacity).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive or `level` is negative.
    pub fn with_level(capacity: f64, level: f64) -> Self {
        assert!(level >= 0.0, "level must be non-negative");
        let mut b = Battery::new(capacity);
        b.level = level.min(capacity);
        b
    }

    /// Maximum energy the battery can hold.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Current stored energy.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Fill fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.level / self.capacity
    }

    /// Adds harvested energy; overflow beyond capacity is lost. Returns the
    /// amount actually stored.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or non-finite.
    pub fn charge(&mut self, amount: f64) -> f64 {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "charge amount must be non-negative"
        );
        // The subtraction can round negative by one ulp when a previous
        // charge landed the level a hair above capacity; clamp so the
        // returned "amount stored" is never negative.
        let stored = (self.capacity - self.level).min(amount).max(0.0);
        self.level = (self.level + stored).min(self.capacity);
        stored
    }

    /// Attempts to withdraw `amount`; succeeds atomically or not at all.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or non-finite.
    pub fn try_consume(&mut self, amount: f64) -> bool {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "consume amount must be non-negative"
        );
        if self.level + 1e-12 >= amount {
            self.level = (self.level - amount).max(0.0);
            true
        } else {
            false
        }
    }

    /// Whether at least `amount` of energy is stored.
    pub fn can_supply(&self, amount: f64) -> bool {
        self.level + 1e-12 >= amount
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_clamps_at_capacity() {
        let mut b = Battery::new(5.0);
        assert_eq!(b.charge(3.0), 3.0);
        assert_eq!(b.charge(4.0), 2.0); // only 2 fits
        assert_eq!(b.level(), 5.0);
        assert_eq!(b.fraction(), 1.0);
    }

    #[test]
    fn consume_is_atomic() {
        let mut b = Battery::with_level(10.0, 2.0);
        assert!(!b.try_consume(5.0));
        assert_eq!(b.level(), 2.0); // untouched on failure
        assert!(b.try_consume(2.0));
        assert_eq!(b.level(), 0.0);
    }

    #[test]
    fn can_supply_matches_consume() {
        let b = Battery::with_level(10.0, 3.0);
        assert!(b.can_supply(3.0));
        assert!(!b.can_supply(3.1));
    }

    #[test]
    fn with_level_clamps() {
        let b = Battery::with_level(5.0, 100.0);
        assert_eq!(b.level(), 5.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = Battery::new(0.0);
    }

    #[test]
    #[should_panic(expected = "charge amount must be non-negative")]
    fn rejects_negative_charge() {
        let mut b = Battery::new(1.0);
        b.charge(-1.0);
    }

    /// Property: the level stays within `[0, capacity]` under random
    /// charge/consume sequences (seeded random instances).
    #[test]
    fn level_always_in_bounds() {
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBA77);
        for _ in 0..200 {
            let mut b = Battery::new(10.0);
            let ops = rng.random_range(1..100usize);
            for _ in 0..ops {
                let is_charge: bool = rng.random();
                let amt = rng.random_range(0.0..20.0f64);
                if is_charge {
                    b.charge(amt);
                } else {
                    let _ = b.try_consume(amt);
                }
                assert!(b.level() >= 0.0);
                assert!(b.level() <= b.capacity() + 1e-12);
            }
        }
    }
}
