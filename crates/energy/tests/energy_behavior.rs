//! Integration tests for the energy substrate: battery charge/discharge
//! bounds, harvest-trace recording and replay, and cost-model monotonicity.

use energy::battery::Battery;
use energy::cost::{ClientEnergyProfile, TrainingCostModel};
use energy::harvest::{Harvester, HarvesterKind};
use energy::trace::{EnergyTrace, TraceHarvester};
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

// ---------------------------------------------------------------- battery

/// Charge/discharge invariants under adversarial random op sequences:
/// level ∈ [0, capacity], charge returns exactly what was stored, consume
/// is atomic, and a manual accounting of the level never diverges.
#[test]
fn battery_level_accounting_is_exact() {
    let mut rng = StdRng::seed_from_u64(0xBA77E21);
    for _ in 0..300 {
        let capacity = rng.random_range(0.5..20.0f64);
        let mut b = Battery::new(capacity);
        let mut shadow = 0.0f64; // independent model of the level
        for _ in 0..rng.random_range(1..120usize) {
            if rng.random() {
                let amt = rng.random_range(0.0..capacity * 1.5);
                let stored = b.charge(amt);
                assert!(stored >= 0.0 && stored <= amt + 1e-12);
                shadow = (shadow + stored).min(capacity);
            } else {
                let amt = rng.random_range(0.0..capacity * 1.5);
                let before = b.level();
                if b.try_consume(amt) {
                    shadow = (shadow - amt).max(0.0);
                } else {
                    assert_eq!(b.level(), before, "failed consume must not change level");
                    assert!(before < amt, "refused a consume it could afford");
                }
            }
            assert!(b.level() >= 0.0 && b.level() <= b.capacity() + 1e-12);
            assert!(
                (b.level() - shadow).abs() < 1e-6,
                "level drifted from accounting"
            );
            assert!(b.can_supply(b.level()));
        }
    }
}

/// Overflow beyond capacity is lost, never banked: a full battery reports
/// zero stored on further charge.
#[test]
fn battery_overflow_is_lost() {
    let mut b = Battery::with_level(5.0, 5.0);
    assert_eq!(b.charge(10.0), 0.0);
    assert_eq!(b.level(), 5.0);
    // Fraction and can_supply agree at the boundary.
    assert_eq!(b.fraction(), 1.0);
    assert!(b.can_supply(5.0));
    assert!(!b.can_supply(5.0 + 1e-6));
}

// ------------------------------------------------------------------ trace

/// Recording any harvester into a trace and replaying it reproduces the
/// direct sample stream exactly, for every process family.
#[test]
fn trace_replay_matches_direct_sampling_for_all_kinds() {
    let kinds = [
        HarvesterKind::Constant { rate: 0.7 },
        HarvesterKind::Bernoulli {
            p: 0.4,
            amount: 1.5,
        },
        HarvesterKind::MarkovOnOff {
            p_on_off: 0.2,
            p_off_on: 0.4,
            rate_on: 1.2,
        },
        HarvesterKind::Solar {
            day_length: 24,
            peak: 2.0,
            phase: 3,
            noise: 0.3,
        },
    ];
    for (i, kind) in kinds.into_iter().enumerate() {
        let seed = 0x7EACE + i as u64;
        let trace = EnergyTrace::record(kind, seed, 96);
        let mut direct = Harvester::new(kind, seed);
        let mut replay = TraceHarvester::new(trace.clone());
        for t in 0..96 {
            let d = direct.step();
            let r = replay.step();
            assert_eq!(d.to_bits(), r.to_bits(), "kind {i} diverged at round {t}");
        }
        // Past the end the replay cycles periodically.
        for t in 0..96 {
            assert_eq!(replay.step().to_bits(), trace.samples()[t].to_bits());
        }
        assert_eq!(replay.rounds(), 192);
        // CSV round-trip preserves the samples the replay consumed.
        let parsed = EnergyTrace::from_csv(&trace.to_csv()).unwrap();
        assert_eq!(parsed, trace);
    }
}

/// A replayed trace drives a battery identically to the live harvester it
/// was recorded from (the "bring your measured traces" path).
#[test]
fn trace_replay_drives_battery_identically() {
    let kind = HarvesterKind::MarkovOnOff {
        p_on_off: 0.3,
        p_off_on: 0.3,
        rate_on: 0.9,
    };
    let trace = EnergyTrace::record(kind, 42, 200);
    let mut live = Harvester::new(kind, 42);
    let mut replay = TraceHarvester::new(trace);
    let mut b_live = Battery::new(3.0);
    let mut b_replay = Battery::new(3.0);
    for _ in 0..200 {
        b_live.charge(live.step());
        b_replay.charge(replay.step());
        let _ = b_live.try_consume(0.5);
        let _ = b_replay.try_consume(0.5);
        assert_eq!(b_live.level().to_bits(), b_replay.level().to_bits());
    }
}

// ------------------------------------------------------------------- cost

/// Round cost is monotone in every input: examples, local epochs, per-
/// example compute, and communication cost.
#[test]
fn round_cost_is_monotone_in_every_parameter() {
    let base = TrainingCostModel {
        compute_per_example: 0.002,
        local_epochs: 2,
        comm_cost: 0.3,
    };
    let mut prev = 0.0;
    for examples in [0usize, 10, 100, 1000, 10_000] {
        let c = base.round_cost(examples);
        assert!(c >= prev, "cost decreased with more examples");
        prev = c;
    }
    for e in 1..6usize {
        let lo = TrainingCostModel {
            local_epochs: e,
            ..base
        };
        let hi = TrainingCostModel {
            local_epochs: e + 1,
            ..base
        };
        assert!(hi.round_cost(500) > lo.round_cost(500));
    }
    let cheap = TrainingCostModel {
        compute_per_example: 0.001,
        ..base
    };
    assert!(cheap.round_cost(500) < base.round_cost(500));
    let chatty = TrainingCostModel {
        comm_cost: 1.0,
        ..base
    };
    assert!(chatty.round_cost(500) > base.round_cost(500));
    // Zero examples still pay the communication floor.
    assert_eq!(base.round_cost(0), base.comm_cost);
}

/// The renewal cycle (rounds of harvesting per round of training) is
/// antitone in the harvest rate and diverges as the rate goes to zero.
#[test]
fn renewal_cycle_antitone_in_harvest_rate() {
    let profile = |rate: f64| {
        ClientEnergyProfile::new(
            HarvesterKind::Constant { rate },
            10.0,
            TrainingCostModel::default(),
            500,
            0,
        )
    };
    let mut prev = f64::INFINITY;
    assert!(profile(0.0).renewal_cycle().is_infinite());
    for rate in [0.01, 0.1, 1.0, 10.0] {
        let cycle = profile(rate).renewal_cycle();
        assert!(cycle < prev, "cycle must shrink as the rate grows");
        assert!(cycle > 0.0);
        prev = cycle;
    }
}

/// End-to-end energy gate: a profile can only train while its battery
/// covers the round cost, and long-run training frequency is pinned by the
/// renewal cycle.
#[test]
fn training_frequency_matches_renewal_cycle() {
    let mut p = ClientEnergyProfile::new(
        HarvesterKind::Constant { rate: 0.25 },
        5.0,
        TrainingCostModel {
            compute_per_example: 0.01,
            local_epochs: 1,
            comm_cost: 0.25,
        },
        100, // round cost = 1.25 → renewal cycle = 5 rounds
        0,
    );
    assert!((p.renewal_cycle() - 5.0).abs() < 1e-12);
    let mut trained = 0usize;
    for _ in 0..2000 {
        p.harvest();
        if p.can_train() {
            assert!(p.consume_training());
            trained += 1;
        } else {
            assert!(!p.consume_training(), "consume must agree with can_train");
        }
    }
    // Initial full battery funds 4 extra rounds over the steady-state 400.
    let expect = 2000 / 5 + 4;
    assert!(
        (trained as i64 - expect as i64).abs() <= 2,
        "trained {trained}, expected ≈ {expect}"
    );
}
