//! # bench — experiment harness shared code
//!
//! Each `exp_e*` binary in `src/bin/` regenerates one table/figure of the
//! reconstructed evaluation (see EXPERIMENTS.md); this library holds the
//! pieces they share: the standard mechanism roster, checkpointed series
//! tables, environment-variable scaling for quick runs, the
//! zero-dependency micro-benchmark [`harness`] behind the `bench_*` bins,
//! and the [`golden`] snapshot helper that pins every experiment's stdout.

pub mod golden;
pub mod harness;

use auction::bid::Bid;
use baselines::{
    AllAvailable, BudgetSplitGreedy, FixedPrice, MyopicVcg, ProportionalShare, RandomK,
};
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::mechanism::Mechanism;
use metrics::table::Table;
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};
use workload::Scenario;

/// The standard random bid population used by the micro-benchmarks:
/// costs in `0.2..3.0`, data sizes in `50..500`, qualities in `0.5..1.0`.
/// One generator so every benchmark family measures the same workload.
pub fn random_bids(n: usize, seed: u64) -> Vec<Bid> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Bid::new(
                i,
                rng.random_range(0.2..3.0),
                rng.random_range(50..500),
                rng.random_range(0.5..1.0),
            )
        })
        .collect()
}

/// Scale factor for experiment sizes, from `LOVM_SCALE` (default 1.0).
/// `LOVM_SCALE=0.1 cargo run --bin exp_e1_welfare` gives a 10× faster smoke
/// run with the same code path.
pub fn scale() -> f64 {
    std::env::var("LOVM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// Applies [`scale`] to a round/size count (at least 10).
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(10)
}

/// Shrinks a scenario's horizon (and budget proportionally) by [`scale`].
pub fn scale_scenario(mut s: Scenario) -> Scenario {
    let factor = scale();
    if (factor - 1.0).abs() > 1e-12 {
        let new_h = ((s.horizon as f64 * factor) as usize).max(10);
        s.total_budget *= new_h as f64 / s.horizon as f64;
        s.horizon = new_h;
    }
    s
}

/// The standard mechanism roster used by most experiments: LOVM plus every
/// baseline, configured consistently for the scenario.
pub fn roster(scenario: &Scenario, v: f64, seed: u64) -> Vec<Box<dyn Mechanism>> {
    let valuation = scenario.valuation;
    vec![
        Box::new(Lovm::new(LovmConfig::for_scenario(scenario, v))),
        Box::new(MyopicVcg::new(valuation, None)),
        Box::new(BudgetSplitGreedy::new(valuation, None)),
        Box::new(ProportionalShare::new(valuation)),
        Box::new(FixedPrice::new(1.2, valuation, None)),
        Box::new(RandomK::new(4, valuation, seed)),
    ]
}

/// The roster plus the budget-agnostic FedAvg reference.
pub fn roster_with_upper_bound(scenario: &Scenario, v: f64, seed: u64) -> Vec<Box<dyn Mechanism>> {
    let mut r = roster(scenario, v, seed);
    r.push(Box::new(AllAvailable::new(scenario.valuation)));
    r
}

/// Evenly spaced checkpoints (1-based round numbers) for series tables.
pub fn checkpoints(horizon: usize, count: usize) -> Vec<usize> {
    let count = count.max(1).min(horizon.max(1));
    (1..=count).map(|i| (horizon * i) / count).collect()
}

/// Builds a table of one metric sampled at checkpoints for several runs.
///
/// `rows` maps a label to the full per-round series; values are sampled at
/// `points` (1-based, clamped to the series length).
pub fn series_table(
    metric: &str,
    points: &[usize],
    rows: &[(String, Vec<f64>)],
    precision: usize,
) -> Table {
    let mut headers = vec![format!("{metric} @round")];
    for p in points {
        headers.push(p.to_string());
    }
    let mut table = Table::new(headers);
    for (label, series) in rows {
        let mut cells = vec![label.clone()];
        for &p in points {
            let idx = p.min(series.len()).saturating_sub(1);
            cells.push(format!(
                "{:.precision$}",
                series.get(idx).copied().unwrap_or(f64::NAN)
            ));
        }
        table.row(cells);
    }
    table
}

/// Prints an experiment header in a stable format the EXPERIMENTS.md
/// tables reference.
pub fn header(id: &str, claim: &str, scenario: &Scenario, seed: u64) {
    println!("## {id}: {claim}");
    println!(
        "scenario `{}` (N={}, horizon={}, budget={:.0}, rho={:.2}), seed {seed}, scale {}\n",
        scenario.name,
        scenario.population.num_clients,
        scenario.horizon,
        scenario.total_budget,
        scenario.budget_per_round(),
        scale()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoints_are_within_horizon_and_sorted() {
        let cps = checkpoints(1000, 5);
        assert_eq!(cps, vec![200, 400, 600, 800, 1000]);
        let one = checkpoints(3, 10);
        assert!(one.iter().all(|&c| (1..=3).contains(&c)));
    }

    #[test]
    fn series_table_samples_checkpoints() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let t = series_table("welfare", &[50, 100], &[("LOVM".to_string(), series)], 1);
        let md = t.to_markdown();
        assert!(md.contains("49.0"));
        assert!(md.contains("99.0"));
    }

    #[test]
    fn roster_contains_lovm_and_baselines() {
        let s = Scenario::small();
        let r = roster(&s, 10.0, 0);
        assert_eq!(r.len(), 6);
        assert!(r[0].name().starts_with("LOVM"));
        let rb = roster_with_upper_bound(&s, 10.0, 0);
        assert_eq!(rb.len(), 7);
    }

    #[test]
    fn scaled_has_floor() {
        assert!(scaled(1000) >= 10);
    }
}
