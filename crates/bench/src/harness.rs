//! In-repo micro-benchmark harness.
//!
//! The workspace builds offline with no external dependencies, so the old
//! `criterion` benches are ordinary `[[bin]]`s built on this module:
//! calibrated batching, a warmup phase, and per-sample statistics
//! (min/mean/median/p95 in nanoseconds), printed both as an aligned
//! human-readable row and as one JSON line per benchmark on stdout.
//!
//! Knobs (environment variables):
//!
//! * `LOVM_BENCH_SAMPLES` — measured samples per benchmark (default 50).
//! * `LOVM_BENCH_BATCH_NS` — target wall time per sample batch in
//!   nanoseconds (default 2 ms); iterations per batch are calibrated so a
//!   sample takes roughly this long even for nanosecond-scale bodies.

use metrics::json::JsonValue;
use metrics::stats::percentile_sorted;
use std::hint::black_box;
use std::time::Instant;

/// Harness configuration; `default()` reads the environment knobs.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Measured samples per benchmark.
    pub samples: usize,
    /// Target batch duration in nanoseconds (the calibrated unit of
    /// measurement; per-iteration time is batch time / batch size).
    pub target_batch_ns: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        let env_usize = |key: &str, default: usize| {
            std::env::var(key)
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&v| v > 0)
                .unwrap_or(default)
        };
        Self {
            samples: env_usize("LOVM_BENCH_SAMPLES", 50),
            target_batch_ns: env_usize("LOVM_BENCH_BATCH_NS", 2_000_000) as u64,
        }
    }
}

/// Statistics for one benchmark, all in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id, e.g. `wdp_topk_exact/1000`.
    pub name: String,
    /// Iterations per measured sample (after calibration).
    pub batch: u64,
    /// Number of measured samples.
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: f64,
    /// Arithmetic mean over samples.
    pub mean_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
}

impl BenchResult {
    /// One-line JSON record (the machine-readable output contract).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("bench", self.name.as_str())
            .field("batch", self.batch)
            .field("samples", self.samples)
            .field("min_ns", self.min_ns)
            .field("mean_ns", self.mean_ns)
            .field("median_ns", self.median_ns)
            .field("p95_ns", self.p95_ns)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing one [`BenchConfig`]; mirrors the
/// shape of the old criterion groups so the bench bins read naturally.
pub struct Bencher {
    group: String,
    config: BenchConfig,
    results: Vec<BenchResult>,
}

impl Bencher {
    /// Starts a group with settings from the environment.
    pub fn new(group: &str) -> Self {
        Self::with_config(group, BenchConfig::default())
    }

    /// Starts a group with explicit settings.
    pub fn with_config(group: &str, config: BenchConfig) -> Self {
        eprintln!("# bench group {group}");
        Self {
            group: group.to_string(),
            config,
            results: Vec::new(),
        }
    }

    /// Measures `f`, printing one human row (stderr) and one JSON line
    /// (stdout). The closure's return value is passed through
    /// [`black_box`] so the optimizer cannot delete the body.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        let full = format!("{}/{name}", self.group);

        // Calibrate: grow the batch until one batch takes ≥ target/4, then
        // scale to the target. Doubles as warmup.
        let mut batch: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as u64;
            if elapsed >= self.config.target_batch_ns / 4 || batch >= 1 << 30 {
                break (elapsed.max(1) as f64 / batch as f64).max(0.25);
            }
            batch *= 2;
        };
        batch = ((self.config.target_batch_ns as f64 / per_iter_ns) as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

        let result = BenchResult {
            name: full,
            batch,
            samples: samples_ns.len(),
            min_ns: samples_ns[0],
            mean_ns: samples_ns.iter().sum::<f64>() / samples_ns.len() as f64,
            median_ns: percentile_sorted(&samples_ns, 50.0),
            p95_ns: percentile_sorted(&samples_ns, 95.0),
        };
        eprintln!(
            "{:<44} median {:>12}  p95 {:>12}  min {:>12}  ({} x {})",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            fmt_ns(result.min_ns),
            result.samples,
            result.batch,
        );
        println!("{}", result.to_json());
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BenchConfig {
        BenchConfig {
            samples: 5,
            target_batch_ns: 50_000,
        }
    }

    #[test]
    fn measures_a_cheap_closure() {
        let mut b = Bencher::with_config("test", tiny_config());
        let mut x = 0u64;
        let r = b.bench("wrapping_add", || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert_eq!(r.samples, 5);
        assert!(r.batch >= 1);
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert_eq!(b.results().len(), 1);
    }

    #[test]
    fn json_line_has_contract_fields() {
        let mut b = Bencher::with_config("test", tiny_config());
        let r = b.bench("noop", || 1 + 1);
        let line = r.to_json().to_string();
        for key in [
            "\"bench\"",
            "\"median_ns\"",
            "\"p95_ns\"",
            "\"min_ns\"",
            "\"samples\"",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert!(line.starts_with("{\"bench\":\"test/noop\""));
    }
}
