//! Golden-output regression harness for the experiment binaries.
//!
//! Every `exp_e*` bin is a pure function of its seeds and the `LOVM_SCALE`
//! / `LOVM_THREADS` knobs — except for wall-clock measurements. This module
//! pins each bin's stdout to a checked-in snapshot (`tests/golden/*.md` at
//! the repo root) after normalizing the timing noise away:
//!
//! * markdown-table columns whose header names a timing quantity
//!   (`latency`, `/sec`, `/round`, `time`) are replaced with `<masked>`,
//!   and such tables are re-rendered with canonical single-space padding so
//!   column widths cannot drift with the timing strings,
//! * any remaining duration-shaped token (`123.4µs`, `17ns`, `2.5s`, …) is
//!   replaced with `<t>`.
//!
//! Workflow: `LOVM_BLESS=1 cargo test -p bench --test golden_experiments`
//! rewrites the snapshots; a plain test run diffs against them and fails
//! with the first mismatching line. Snapshots are recorded at
//! `LOVM_SCALE=0.1` / `LOVM_THREADS=1`; the determinism contract
//! (`crates/par`) makes the same snapshots hold at any worker count.

use std::path::PathBuf;

/// Header keywords marking a column as wall-clock-derived.
const MASKED_COLUMN_KEYWORDS: [&str; 4] = ["latency", "/sec", "/round", "time"];

/// Whether snapshot files should be rewritten instead of compared.
pub fn blessing() -> bool {
    std::env::var("LOVM_BLESS").is_ok_and(|v| v == "1")
}

/// Location of one named snapshot (repo-root `tests/golden/<name>.md`).
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(format!("{name}.md"))
}

fn is_table_row(line: &str) -> bool {
    let t = line.trim_end();
    t.starts_with('|') && t.ends_with('|') && t.len() >= 2
}

fn cells_of(line: &str) -> Vec<String> {
    let t = line.trim_end();
    t[1..t.len() - 1]
        .split('|')
        .map(|c| c.trim().to_string())
        .collect()
}

fn is_separator(cells: &[String]) -> bool {
    !cells.is_empty()
        && cells
            .iter()
            .all(|c| !c.is_empty() && c.chars().all(|ch| ch == '-' || ch == ':'))
}

fn render_cells(cells: &[String]) -> String {
    let mut out = String::from("|");
    for c in cells {
        out.push(' ');
        out.push_str(c);
        out.push_str(" |");
    }
    out
}

/// Replaces duration-shaped tokens (digits, optional decimal point, a time
/// unit suffix) with `<t>`; everything else passes through untouched.
fn mask_duration_tokens(line: &str) -> String {
    let mask_token = |tok: &str| -> Option<()> {
        if !tok.chars().next()?.is_ascii_digit() {
            return None;
        }
        for unit in ["ns", "µs", "us", "ms", "s"] {
            if let Some(num) = tok.strip_suffix(unit) {
                if !num.is_empty()
                    && num.chars().all(|c| c.is_ascii_digit() || c == '.')
                    && num.parse::<f64>().is_ok()
                {
                    return Some(());
                }
            }
        }
        None
    };
    line.split(' ')
        .map(|tok| {
            if mask_token(tok).is_some() {
                "<t>".to_string()
            } else {
                tok.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Normalizes raw experiment stdout for snapshot comparison (see module
/// docs).
pub fn normalize(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut mask: Option<Vec<bool>> = None; // active masked-table columns
    for line in raw.lines() {
        if is_table_row(line) {
            let mut cells = cells_of(line);
            match &mask {
                None => {
                    // First row of a table block: the header decides
                    // whether this table needs masking at all.
                    let m: Vec<bool> = cells
                        .iter()
                        .map(|h| {
                            let h = h.to_lowercase();
                            MASKED_COLUMN_KEYWORDS.iter().any(|k| h.contains(k))
                        })
                        .collect();
                    if m.iter().any(|&b| b) {
                        out.push_str(&mask_duration_tokens(&render_cells(&cells)));
                        mask = Some(m);
                    } else {
                        out.push_str(&mask_duration_tokens(line));
                        mask = Some(Vec::new()); // in a table, nothing masked
                    }
                }
                Some(m) if m.is_empty() => out.push_str(&mask_duration_tokens(line)),
                Some(m) => {
                    if is_separator(&cells) {
                        let seps: Vec<String> = cells.iter().map(|_| "---".to_string()).collect();
                        out.push_str(&render_cells(&seps));
                    } else {
                        for (cell, &masked) in cells.iter_mut().zip(m.iter()) {
                            if masked {
                                *cell = "<masked>".to_string();
                            }
                        }
                        out.push_str(&mask_duration_tokens(&render_cells(&cells)));
                    }
                }
            }
        } else {
            mask = None;
            out.push_str(&mask_duration_tokens(line));
        }
        out.push('\n');
    }
    out
}

/// Compares normalized output against the named snapshot, or rewrites the
/// snapshot when `LOVM_BLESS=1`.
///
/// # Panics
///
/// Panics (failing the calling test) when the snapshot is missing or
/// differs, pointing at the first mismatching line.
pub fn assert_golden(name: &str, normalized: &str) {
    let path = golden_path(name);
    if blessing() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        std::fs::write(&path, normalized).expect("write golden snapshot");
        eprintln!("blessed golden snapshot {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); record it with \
             LOVM_BLESS=1 cargo test -p bench --test golden_experiments",
            path.display()
        )
    });
    if expected != normalized {
        let diff_line = expected
            .lines()
            .zip(normalized.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| expected.lines().count().min(normalized.lines().count()));
        let show = |s: &str| {
            s.lines()
                .nth(diff_line)
                .unwrap_or("<missing line>")
                .to_string()
        };
        panic!(
            "golden mismatch for `{name}` at line {} —\n  expected: {}\n  actual:   {}\n\
             (full snapshot: {}; re-record with LOVM_BLESS=1 if the change is intended)",
            diff_line + 1,
            show(&expected),
            show(normalized),
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_duration_tokens_everywhere() {
        let n = normalize("took 123.456µs and 17ns plus 2.5s done\nvalue 0.9992 stays");
        assert_eq!(n, "took <t> and <t> plus <t> done\nvalue 0.9992 stays\n");
    }

    #[test]
    fn masks_timed_table_columns_and_canonicalizes() {
        let raw = "\
| N bidders | round latency | rounds/sec | winners |\n\
|-----------|---------------|------------|---------|\n\
| 50        | 35.4µs        | 28232      | 4       |\n";
        let n = normalize(raw);
        assert_eq!(
            n,
            "\
| N bidders | round latency | rounds/sec | winners |\n\
| --- | --- | --- | --- |\n\
| 50 | <masked> | <masked> | 4 |\n"
        );
    }

    #[test]
    fn leaves_untimed_tables_untouched() {
        let raw = "| mechanism | welfare |\n|-----------|---------|\n| LOVM      | 12.5    |\n";
        assert_eq!(normalize(raw), raw);
    }

    #[test]
    fn words_ending_in_s_are_not_durations() {
        let n = normalize("5 winners across 3 rounds with bids");
        assert_eq!(n, "5 winners across 3 rounds with bids\n");
    }
}
