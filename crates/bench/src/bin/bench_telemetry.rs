//! Telemetry overhead gate: one full streamed marketplace run (arrival
//! ingestion → seal → LOVM round, every round of the scenario) with
//! telemetry disabled vs force-enabled with no sink — the enabled cost
//! is pure recording (span clocks, histogram/counter atomics, the
//! per-round record build), with no I/O mixed in.
//!
//! Measurement is **paired**: each sample times one disabled run and one
//! enabled run back-to-back, so machine-level drift (frequency scaling,
//! noisy neighbors) hits both phases of a pair equally and cancels in
//! the ratio. Sequential off-then-on phases measured here drifted by
//! ±25% between phases — an order of magnitude more than the effect.
//!
//! CI reads the `telemetry_stream/overhead` JSON row's `median_ratio`
//! (median over per-pair enabled/disabled ratios) and fails the PR if
//! observing the round loop costs more than 5% of running it.

use bench::harness::{BenchConfig, BenchResult};
use ingest::IngestConfig;
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::streaming::run_stream;
use metrics::json::JsonValue;
use metrics::stats::percentile_sorted;
use std::hint::black_box;
use std::time::Instant;
use workload::Scenario;

fn round_loop(scenario: &Scenario, cfg: &IngestConfig) -> f64 {
    let mut mech = Lovm::new(LovmConfig::for_scenario(scenario, 20.0));
    let run = run_stream(&mut mech, scenario, 42, cfg);
    run.result.ledger.social_welfare()
}

fn timed_run(enabled: bool, scenario: &Scenario, cfg: &IngestConfig) -> f64 {
    telemetry::force_configure(enabled, telemetry::SinkSpec::None);
    let start = Instant::now();
    black_box(round_loop(black_box(scenario), cfg));
    start.elapsed().as_nanos() as f64
}

fn result_row(name: &str, mut samples_ns: Vec<f64>) -> BenchResult {
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    BenchResult {
        name: format!("telemetry_stream/{name}"),
        batch: 1,
        samples: samples_ns.len(),
        min_ns: samples_ns[0],
        mean_ns: samples_ns.iter().sum::<f64>() / samples_ns.len() as f64,
        median_ns: percentile_sorted(&samples_ns, 50.0),
        p95_ns: percentile_sorted(&samples_ns, 95.0),
    }
}

fn main() {
    // A representative round size: 256 bidders per round keeps the solver
    // doing real work, so the gate measures telemetry against a round a
    // deployment would actually run. (A 20-bidder toy round solves in a
    // few µs, where the fixed sub-µs of span clocks + counters per round
    // would read as a huge percentage of nothing.)
    let mut scenario = Scenario::large(256);
    scenario.horizon = 60;
    let cfg = IngestConfig::default();
    let samples = BenchConfig::default().samples;
    eprintln!("# bench group telemetry_stream (paired, {samples} pairs)");

    // Warm-up: one run per phase pays lazy registration and path warmup.
    timed_run(false, &scenario, &cfg);
    timed_run(true, &scenario, &cfg);

    let mut off = Vec::with_capacity(samples);
    let mut on = Vec::with_capacity(samples);
    let mut ratios = Vec::with_capacity(samples);
    for _ in 0..samples {
        let o = timed_run(false, &scenario, &cfg);
        let n = timed_run(true, &scenario, &cfg);
        ratios.push(n / o);
        off.push(o);
        on.push(n);
    }

    for row in [
        result_row("round_loop_off", off),
        result_row("round_loop_on", on),
    ] {
        eprintln!(
            "{:<44} median {:>12.0} ns  min {:>12.0} ns  ({} x 1)",
            row.name, row.median_ns, row.min_ns, row.samples
        );
        println!("{}", row.to_json());
    }

    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median_ratio = percentile_sorted(&ratios, 50.0);
    eprintln!(
        "telemetry_stream: paired overhead {:+.2}% (median of {} on/off pairs)",
        (median_ratio - 1.0) * 100.0,
        ratios.len()
    );
    println!(
        "{}",
        JsonValue::object()
            .field("bench", "telemetry_stream/overhead")
            .field("samples", ratios.len())
            .field("median_ratio", median_ratio)
    );
}
