//! E14 — Sharded market scaling: partitioning a very large bidder
//! population into independently solved shards reconciled over shard
//! champions keeps per-round memory bounded by the largest shard (never by
//! N), is *bit-identical* to the monolithic mechanism on the top-K rounds
//! LOVM actually runs, and costs only a measured sliver of welfare on
//! budgeted rounds — demonstrated up to a 10⁶-bidder budgeted round at
//! `Sharded{64}`.
//!
//! Shard counts in every table are pinned in code (not taken from
//! `LOVM_SHARDS`), so the output is shard-count and thread-count
//! invariant and can be golden-pinned; only the timing column is masked.

use auction::pivots::PaymentStrategy;
use auction::shard::{solve_sharded_on, MarketTopology, ShardedRound};
use auction::valuation::Valuation;
use auction::vcg::{VcgAuction, VcgConfig};
use auction::wdp::{SolverKind, WdpInstance};
use bench::{header, random_bids, scaled};
use metrics::table::Table;
use std::time::Instant;
use workload::Scenario;

/// The instance every section shares: virtual scores `50·v − 5·c` over the
/// standard random bid population.
fn instance(n: usize, seed: u64) -> WdpInstance {
    let bids = random_bids(n, seed);
    VcgAuction::new(VcgConfig {
        value_weight: 50.0,
        cost_weight: 5.0,
        ..VcgConfig::default()
    })
    .instance(&bids, &Valuation::default())
}

/// Clarke payment total for a solved round: `Σᵢ cᵢ + max(W* − W*₋ᵢ, 0)/Q`
/// — the same formula `vcg::run_with_budget` applies, reproduced here so
/// the topology comparison can read payments straight off a
/// [`ShardedRound`].
fn total_payment(inst: &WdpInstance, round: &ShardedRound, q: f64) -> f64 {
    round
        .solution
        .selected
        .iter()
        .zip(&round.loo_welfares)
        .map(|(&i, &w_minus)| {
            inst.items[i].cost + (round.solution.objective - w_minus).max(0.0) / q
        })
        .sum()
}

fn topology_label(t: MarketTopology) -> String {
    match t {
        MarketTopology::Monolithic => "monolithic".to_string(),
        MarketTopology::Sharded { count } => format!("sharded{{{count}}}"),
    }
}

fn main() {
    let seed = 14u64;
    let n_small = scaled(20_000);
    let n_big = scaled(1_000_000);
    header(
        "E14",
        "sharded market engine: partition → per-shard solve → champion reconciliation",
        &Scenario::large(n_big),
        seed,
    );

    // ---- Section 1: top-K rounds are exact under sharding. -------------
    println!("### top-K exactness (no budget, cap 64): reconciliation over shard champions");
    let inst = {
        let mut i = instance(n_small, seed);
        i.max_winners = Some(64);
        i
    };
    let mono = solve_sharded_on(
        &inst,
        SolverKind::Exact,
        MarketTopology::Monolithic,
        PaymentStrategy::Incremental,
        par::Pool::auto(),
    );
    let mut table = Table::new(vec![
        "topology".into(),
        "winners".into(),
        "virtual welfare".into(),
        "bit-identical to monolithic".into(),
    ]);
    for topology in [
        MarketTopology::Monolithic,
        MarketTopology::Sharded { count: 4 },
        MarketTopology::Sharded { count: 64 },
    ] {
        let round = solve_sharded_on(
            &inst,
            SolverKind::Exact,
            topology,
            PaymentStrategy::Incremental,
            par::Pool::auto(),
        );
        let identical = round.solution.selected == mono.solution.selected
            && round.solution.objective.to_bits() == mono.solution.objective.to_bits()
            && round
                .loo_welfares
                .iter()
                .zip(&mono.loo_welfares)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        table.row(vec![
            topology_label(topology),
            round.solution.selected.len().to_string(),
            format!("{:.6}", round.solution.objective),
            if identical { "yes".into() } else { "NO".into() },
        ]);
    }
    println!("{}", table.to_markdown());

    // ---- Section 2: budgeted rounds trade a measured welfare sliver. ---
    println!("### budgeted welfare gap vs monolithic (budget = 1% of total reported cost)");
    let inst = {
        let mut i = instance(n_small, seed);
        let total_cost: f64 = i.items.iter().map(|it| it.cost).sum();
        i.budget = Some(0.01 * total_cost);
        i
    };
    let kind = SolverKind::Knapsack { grid: 512 };
    let mono = solve_sharded_on(
        &inst,
        kind,
        MarketTopology::Monolithic,
        PaymentStrategy::Incremental,
        par::Pool::auto(),
    );
    let mut table = Table::new(vec![
        "topology".into(),
        "winners".into(),
        "champions".into(),
        "virtual welfare".into(),
        "welfare / monolithic".into(),
        "payments".into(),
    ]);
    for topology in [
        MarketTopology::Monolithic,
        MarketTopology::Sharded { count: 4 },
        MarketTopology::Sharded { count: 16 },
        MarketTopology::Sharded { count: 64 },
    ] {
        let round = solve_sharded_on(
            &inst,
            kind,
            topology,
            PaymentStrategy::Incremental,
            par::Pool::auto(),
        );
        table.row(vec![
            topology_label(topology),
            round.solution.selected.len().to_string(),
            round.champions.len().to_string(),
            format!("{:.4}", round.solution.objective),
            format!("{:.5}", round.solution.objective / mono.solution.objective),
            format!("{:.2}", total_payment(&inst, &round, 5.0)),
        ]);
    }
    println!("{}", table.to_markdown());

    // ---- Section 3: the 10⁶-bidder budgeted round. ---------------------
    println!("### million-bidder budgeted round, sharded{{64}} (monolithic intentionally skipped: its DP tables alone scale with N)");
    let inst = {
        // Fixed absolute budget: the winner set — and with it the champion
        // pool, the reconciliation tables, and the payment pass — stays
        // O(budget), not O(N). That is the memory story of this experiment.
        let mut i = instance(n_big, seed);
        i.budget = Some(64.0);
        i
    };
    let topology = MarketTopology::Sharded { count: 64 };
    let start = Instant::now();
    let round = solve_sharded_on(
        &inst,
        kind,
        topology,
        PaymentStrategy::Incremental,
        par::Pool::auto(),
    );
    let elapsed = start.elapsed();
    let peak_shard = round.shard_stats.iter().map(|s| s.size).max().unwrap_or(0);
    let provisional: f64 = round.shard_stats.iter().map(|s| s.pivot_mass).sum();
    let mut table = Table::new(vec![
        "bidders".into(),
        "shards".into(),
        "peak shard".into(),
        "champions".into(),
        "winners".into(),
        "virtual welfare".into(),
        "payments".into(),
        "round time".into(),
    ]);
    table.row(vec![
        inst.items.len().to_string(),
        round.shards.to_string(),
        peak_shard.to_string(),
        round.champions.len().to_string(),
        round.solution.selected.len().to_string(),
        format!("{:.4}", round.solution.objective),
        format!("{:.2}", total_payment(&inst, &round, 5.0)),
        format!("{elapsed:?}"),
    ]);
    println!("{}", table.to_markdown());
    println!(
        "pivot mass: reconciliation {:.4} vs per-shard provisional {:.4} (how much champion-level competition re-prices the shard-local pivots)",
        round.pivot_mass(),
        provisional
    );
    println!("expected: top-K rows identical at every shard count; budgeted welfare ratio ≥ 0.99; the 10⁶ row completes at memory bounded by the peak shard + champion pool.");
}
