//! E1 — Cumulative social welfare vs rounds: LOVM tracks the offline
//! oracle and dominates every budget-feasible online baseline.
//!
//! Regenerates the paper-style "welfare vs time" figure as a checkpoint
//! table plus final competitive ratios.

use bench::{checkpoints, header, roster, scale_scenario, series_table};
use lovm_core::offline::{competitive_ratio, offline_benchmark};
use lovm_core::simulation::simulate;
use metrics::table::Table;
use workload::Scenario;

fn main() {
    let scenario = scale_scenario(Scenario::standard());
    let seed = 42;
    header(
        "E1",
        "cumulative social welfare vs rounds (higher is better)",
        &scenario,
        seed,
    );

    let points = checkpoints(scenario.horizon, 8);
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut finals: Vec<(String, f64, f64)> = Vec::new(); // (name, welfare, spend)
    let mut oracle_bids = None;

    for mech in &mut roster(&scenario, 50.0, seed) {
        let result = simulate(mech.as_mut(), &scenario, seed);
        let cum = result.cumulative_welfare();
        finals.push((
            result.mechanism.clone(),
            *cum.last().unwrap(),
            result.ledger.total_payment(),
        ));
        rows.push((result.mechanism.clone(), cum));
        if oracle_bids.is_none() {
            oracle_bids = Some(result.bids_per_round);
        }
    }

    let oracle = offline_benchmark(
        &oracle_bids.expect("at least one run"),
        &scenario.valuation,
        scenario.total_budget,
    );
    // The oracle is a single number; show it as a flat reference row.
    rows.push((
        "OfflineOracle(final)".into(),
        vec![oracle.welfare; scenario.horizon],
    ));

    println!(
        "{}",
        series_table("cumulative welfare", &points, &rows, 1).to_markdown()
    );
    let chart_series: Vec<(&str, &[f64])> = rows
        .iter()
        .map(|(name, s)| (name.as_str(), s.as_slice()))
        .collect();
    println!("{}", metrics::plot::ascii_chart(&chart_series, 72, 16));

    let mut summary = Table::new(vec![
        "mechanism".into(),
        "final welfare".into(),
        "competitive ratio".into(),
        "spend".into(),
        "budget-feasible".into(),
    ]);
    for (name, welfare, spend) in &finals {
        summary.row(vec![
            name.clone(),
            format!("{welfare:.1}"),
            format!("{:.3}", competitive_ratio(*welfare, &oracle)),
            format!("{spend:.1}"),
            if *spend <= scenario.total_budget * 1.02 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    summary.row(vec![
        "OfflineOracle".into(),
        format!("{:.1}", oracle.welfare),
        "1.000".into(),
        format!("{:.1}", oracle.spend),
        "yes".into(),
    ]);
    println!("{}", summary.to_markdown());
    println!(
        "fractional LP upper bound on any policy: {:.1}",
        oracle.fractional_bound
    );

    // Error bars: welfare mean ± std over 5 seeds for the headline
    // mechanisms (LOVM vs the best feasible myopic baseline vs the oracle).
    println!("\n### Multi-seed stability (5 seeds)\n");
    let seeds = [42u64, 43, 44, 45, 46];
    let mut stability = Table::new(vec![
        "mechanism".into(),
        "welfare mean".into(),
        "welfare std".into(),
        "ratio mean".into(),
    ]);
    let mut rows_stats: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for &s in &seeds {
        let mut lovm =
            lovm_core::lovm::Lovm::new(lovm_core::lovm::LovmConfig::for_scenario(&scenario, 50.0));
        let mut greedy = baselines::BudgetSplitGreedy::new(scenario.valuation, None);
        for (name, mech) in [
            (
                "LOVM(V=50)",
                &mut lovm as &mut dyn lovm_core::mechanism::Mechanism,
            ),
            (
                "BudgetSplitGreedy",
                &mut greedy as &mut dyn lovm_core::mechanism::Mechanism,
            ),
        ] {
            let r = simulate(mech, &scenario, s);
            let o = offline_benchmark(
                &r.bids_per_round,
                &scenario.valuation,
                scenario.total_budget,
            );
            let w = r.ledger.social_welfare();
            match rows_stats.iter_mut().find(|(n, _, _)| n == name) {
                Some((_, ws, rs)) => {
                    ws.push(w);
                    rs.push(competitive_ratio(w, &o));
                }
                None => {
                    rows_stats.push((name.to_string(), vec![w], vec![competitive_ratio(w, &o)]))
                }
            }
        }
    }
    for (name, ws, rs) in &rows_stats {
        let stat = metrics::stats::Summary::of(ws);
        let ratio_mean = rs.iter().sum::<f64>() / rs.len() as f64;
        stability.row(vec![
            name.clone(),
            format!("{:.1}", stat.mean),
            format!("{:.1}", stat.std),
            format!("{ratio_mean:.3}"),
        ]);
    }
    println!("{}", stability.to_markdown());
}
