//! E7 — Scalability: LOVM's per-round winner determination + payments are
//! O(n log n), so rounds stay sub-millisecond up to thousands of bidders;
//! welfare quality (vs the fractional bound on the same instance) does not
//! degrade with N.

use auction::bid::Bid;
use auction::valuation::Valuation;
use auction::vcg::{VcgAuction, VcgConfig};
use auction::wdp::{fractional_upper_bound, SolverKind};
use bench::{header, scale};
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::mechanism::{Mechanism, RoundInfo};
use metrics::table::Table;
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};
use std::time::Instant;
use workload::Scenario;

fn bids(n: usize, seed: u64) -> Vec<Bid> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Bid::new(
                i,
                rng.random_range(0.2..3.0),
                rng.random_range(50..500),
                rng.random_range(0.5..1.0),
            )
        })
        .collect()
}

fn main() {
    let scenario = Scenario::large(1000); // only used for the header
    let seed = 11;
    header(
        "E7",
        "per-round mechanism latency and welfare quality vs population size",
        &scenario,
        seed,
    );

    let mut table = Table::new(vec![
        "N bidders".into(),
        "round latency".into(),
        "rounds/sec".into(),
        "winners".into(),
        "virtual welfare / fractional bound".into(),
        "budgeted payments/round [incremental]".into(),
    ]);

    // Phase 1 (parallel over population sizes): warm each mechanism's queue
    // into steady state and compute the deterministic quality columns. Each
    // N is independent, so the rows land identically at any worker count.
    // `LOVM_SCALE < 1` trims the largest populations for smoke runs.
    let all_sizes = [50usize, 100, 200, 500, 1000, 2000, 5000, 10000];
    let max_n = ((10_000.0 * scale()) as usize).max(200);
    let sizes: Vec<usize> = all_sizes.iter().copied().filter(|&n| n <= max_n).collect();
    let prepared: Vec<(Lovm, Vec<Bid>, RoundInfo, usize, f64)> = par::par_map(&sizes, |&n| {
        let all_bids = bids(n, seed);
        let s = Scenario::large(n);
        let mut mech = Lovm::new(LovmConfig::for_scenario(&s, 50.0).with_max_winners(20));
        let info = RoundInfo {
            round: 0,
            horizon: s.horizon,
            total_budget: s.total_budget,
            spent_so_far: 0.0,
        };
        // Warm the queue so weights are in steady state.
        for _ in 0..20 {
            mech.select(&info, &all_bids);
        }
        // Quality: one more round, with the bound computed at the *same*
        // queue state the round will use.
        let inst = auction::vcg::VcgAuction::new(auction::vcg::VcgConfig {
            value_weight: mech.config().v,
            cost_weight: mech.queue_backlog().max(mech.config().min_cost_weight),
            max_winners: Some(20),
            ..VcgConfig::default()
        })
        .instance(&all_bids, &Valuation::default());
        let bound = fractional_upper_bound(&inst);
        let final_outcome = mech.select(&info, &all_bids);
        let quality = if bound > 0.0 {
            final_outcome.virtual_welfare / bound
        } else {
            1.0
        };
        (mech, all_bids, info, final_outcome.winners.len(), quality)
    });

    // Phase 2 (serial, one N at a time): time steady-state rounds without
    // worker contention polluting the latency measurement. The bids and
    // round info come back from phase 1, so the timed rounds run against
    // exactly the instances the mechanism was warmed on.
    for (&n, (mut mech, all_bids, info, winners, quality)) in sizes.iter().zip(prepared) {
        let reps = (200_000 / n).max(5);
        let start = Instant::now();
        for _ in 0..reps {
            mech.select(&info, &all_bids);
        }
        let elapsed = start.elapsed();
        let per_round = elapsed / reps as u32;

        // The paper's E7 claim covers payments too: time full budgeted
        // rounds (knapsack allocation + all Clarke pivots) on the
        // incremental leave-one-out engine, the default payment path.
        let auction = VcgAuction::new(VcgConfig {
            value_weight: 50.0,
            cost_weight: 5.0,
            max_winners: None,
            ..VcgConfig::default()
        });
        let budget = 0.4 * all_bids.iter().map(|b| b.cost).sum::<f64>();
        let pay_reps = (2_000 / n).max(1);
        let start = Instant::now();
        for _ in 0..pay_reps {
            auction.run_with_budget_on(
                &all_bids,
                &Valuation::default(),
                budget,
                SolverKind::Knapsack { grid: 1024 },
                par::Pool::auto(),
            );
        }
        let per_payment_round = start.elapsed() / pay_reps as u32;

        table.row(vec![
            n.to_string(),
            format!("{per_round:?}"),
            format!("{:.0}", 1.0 / per_round.as_secs_f64()),
            winners.to_string(),
            format!("{quality:.4}"),
            format!("{per_payment_round:?}"),
        ]);
    }
    println!("{}", table.to_markdown());
    println!("expected: latency grows ~n log n; quality stays 1.0000 (the solver is exact).");
    println!("payments column: one full budgeted VCG round (knapsack + all pivots) on the incremental engine — near-linear in N, not quadratic.");
}
