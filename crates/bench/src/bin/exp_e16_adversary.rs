//! E16 — Strategic-adversary simulator: the truthfulness theorem as a
//! standing empirical gate. Every (strategy × workload × topology ×
//! late-policy) cell replays the same seeded trace twice through the real
//! ingest → seal → VCG path — once with the focal client driven by the
//! strategy, once truthful — and reports the focal client's utility
//! *regret* for deviating. The paper's incentive-compatibility guarantee
//! predicts regret ≥ 0 everywhere; the binary exits nonzero if any cell
//! dips below −1e-9 or if no adversary strictly loses by deviating.
//!
//! Every knob is pinned in code: topologies are set explicitly per cell
//! (not from `LOVM_SHARDS`), the trace and churn draws are seeded, and
//! the per-round solves are pool-invariant — so the output is
//! golden-pinnable and byte-identical at any `LOVM_SHARDS`/`LOVM_THREADS`.

use advsim::{catalog, gate, regret_table, run_cell, Cell, CellReport, Trace, TraceWorkload};
use auction::MarketTopology;
use bench::scaled;
use ingest::{Backpressure, IngestConfig, LateBidPolicy};
use lovm_core::LovmConfig;
use std::process::ExitCode;

/// The per-cell ingestion policies: three late-bid policies under an
/// unbounded buffer, plus a saturated shedding buffer (capacity below the
/// per-round population) where submission *timing* changes admission.
fn policies() -> Vec<(String, IngestConfig)> {
    let base = IngestConfig {
        deadline: 0.75,
        ..IngestConfig::default()
    };
    vec![
        (
            "drop@0.75".into(),
            IngestConfig {
                late_policy: LateBidPolicy::Drop,
                ..base
            },
        ),
        (
            "defer@0.75".into(),
            IngestConfig {
                late_policy: LateBidPolicy::DeferToNext,
                ..base
            },
        ),
        (
            "grace:0.15@0.75".into(),
            IngestConfig {
                late_policy: LateBidPolicy::GraceWindow { grace: 0.15 },
                ..base
            },
        ),
        (
            "drop+shed:16".into(),
            IngestConfig {
                late_policy: LateBidPolicy::Drop,
                backpressure: Backpressure::Shed { watermark: 1.0 },
                capacity: 16,
                ..base
            },
        ),
    ]
}

fn main() -> ExitCode {
    let seed = 16u64;
    let bidders = 24usize;
    let rounds = scaled(120);
    // A slack budget keeps the virtual queue at zero so the per-round
    // weights are report-history-independent — the regime in which the
    // round-by-round DSIC theorem speaks; the cap keeps the focal client
    // genuinely contested for the marginal slot.
    let lovm_config = LovmConfig {
        v: 10.0,
        budget_per_round: 50.0,
        max_winners: Some(8),
        topology: MarketTopology::Monolithic, // overridden per cell
        ..LovmConfig::default()
    };
    println!("## E16: strategic adversaries vs the full ingest -> seal -> VCG pipeline");
    println!(
        "population {bidders} bidders x {rounds} rounds, seed {seed}, scale {}; \
         focal = median-true-cost client, paired counterfactual on the same seed\n",
        bench::scale()
    );

    let mut all: Vec<CellReport> = Vec::new();
    for workload in [TraceWorkload::Steady, TraceWorkload::LateRush] {
        let trace = Trace::seeded(workload, bidders, rounds, seed);
        for topology in [
            MarketTopology::Monolithic,
            MarketTopology::Sharded { count: 8 },
        ] {
            println!(
                "### workload {} x topology {}",
                workload.label(),
                advsim::topology_label(topology)
            );
            let mut reports = Vec::new();
            for (policy, ingest) in policies() {
                let cell = Cell {
                    workload: workload.label().into(),
                    policy,
                    topology,
                    ingest,
                };
                for strategy in catalog() {
                    reports.push(run_cell(
                        &trace,
                        &strategy,
                        &cell,
                        lovm_config,
                        seed,
                        par::Pool::auto(),
                    ));
                }
            }
            println!("{}", regret_table(&reports).to_markdown());
            all.extend(reports);
        }
    }

    let positive = all
        .iter()
        .filter(|r| r.strategy != "truthful" && r.regret > 1e-9)
        .count();
    let worst = all
        .iter()
        .min_by(|a, b| a.regret.partial_cmp(&b.regret).expect("finite regret"))
        .expect("at least one cell");
    println!(
        "gate: min regret {:+.9} ({} x {} x {} x {}); adversarial cells strictly losing: {}/{}",
        worst.regret,
        worst.strategy,
        worst.workload,
        worst.topology,
        worst.policy,
        positive,
        all.iter().filter(|r| r.strategy != "truthful").count()
    );
    let verdict = gate(&all, 1e-9).and_then(|()| {
        if positive == 0 {
            Err("no adversarial strategy strictly lost by deviating — the grid has lost its discriminating power".into())
        } else {
            Ok(())
        }
    });
    match verdict {
        Ok(()) => {
            println!(
                "expected: every regret cell >= -1e-9 (truthful rows exactly +0.000000 by paired construction), and overbidding/churning strictly lose — the truthfulness theorem holds on the full pipeline."
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            println!("GATE FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}
