//! E15 — Streaming bid ingestion: the event-driven round loop turns a
//! live arrival stream into sealed rounds through per-round deadlines, a
//! late-bid policy, and a bounded backpressured buffer — with a deadline
//! admitting every arrival it reproduces the batch round loop *bit
//! exactly*, tighter deadlines trade admitted bids for latency on a
//! measured curve, and a bounded buffer keeps occupancy capped under
//! sustained overload.
//!
//! Ingestion knobs in every table are pinned in code (not taken from
//! `LOVM_DEADLINE`/`LOVM_LATE_POLICY`/`LOVM_BUFFER`), and the virtual-time
//! driver is deterministic at any worker or shard count, so the output is
//! golden-pinnable with no masked columns.

use bench::{header, scale_scenario};
use ingest::driver::{StreamDriver, VirtualTimeDriver};
use ingest::{Backpressure, IngestConfig, LateBidPolicy};
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::simulation::simulate;
use metrics::table::Table;
use workload::arrivals::{ArrivalKind, ArrivalProcess, TimedBid};
use workload::Scenario;

fn policy_label(policy: LateBidPolicy) -> String {
    match policy {
        LateBidPolicy::Drop => "drop".into(),
        LateBidPolicy::DeferToNext => "defer".into(),
        LateBidPolicy::GraceWindow { grace } => format!("grace:{grace}"),
    }
}

fn lovm(scenario: &Scenario) -> Lovm {
    Lovm::new(LovmConfig::for_scenario(scenario, 10.0))
}

fn main() {
    let seed = 15u64;
    let scenario = scale_scenario(Scenario::standard());
    header(
        "E15",
        "streaming ingestion: deadlines, late-bid policy, and backpressure in front of the batch-exact VCG path",
        &scenario,
        seed,
    );

    // ---- Section 1: a full deadline reproduces the batch loop. ---------
    println!("### batch equivalence (deadline 1.0 admits every arrival)");
    let batch = simulate(&mut lovm(&scenario), &scenario, seed);
    let streamed = lovm(&scenario).run_stream(&scenario, seed, &IngestConfig::default());
    let identical = batch.outcomes == streamed.result.outcomes
        && batch.bids_per_round == streamed.result.bids_per_round
        && batch.ledger == streamed.result.ledger;
    println!(
        "sealed rounds vs batch bid vectors, outcomes, ledger: {}",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "arrivals {} / sealed {} / dropped {} / deferred {}\n",
        streamed.totals.arrivals,
        streamed.totals.sealed,
        streamed.totals.dropped,
        streamed.totals.deferred
    );

    // ---- Section 2: deadline sweep × late-bid policy. ------------------
    println!("### deadline sweep x late-bid policy (virtual-time driver, LOVM rounds)");
    let mut table = Table::new(vec![
        "deadline".into(),
        "policy".into(),
        "sealed/auction".into(),
        "admitted".into(),
        "late-admits".into(),
        "deferred".into(),
        "dropped".into(),
        "superseded".into(),
        "welfare".into(),
        "avg spend".into(),
        "peak backlog".into(),
    ]);
    for &deadline in &[0.8f64, 0.5, 0.25] {
        for policy in [
            LateBidPolicy::Drop,
            LateBidPolicy::DeferToNext,
            LateBidPolicy::GraceWindow { grace: 0.15 },
        ] {
            let cfg = IngestConfig {
                deadline,
                late_policy: policy,
                ..IngestConfig::default()
            };
            let mut mech = lovm(&scenario);
            let run = mech.run_stream(&scenario, seed, &cfg);
            let welfare: f64 = run
                .result
                .series
                .get("welfare")
                .map(|s| s.iter().sum())
                .unwrap_or(0.0);
            let avg_spend = *run.result.average_spend().last().unwrap();
            table.row(vec![
                format!("{deadline:.2}"),
                policy_label(policy),
                format!(
                    "{:.1}",
                    run.totals.sealed as f64 / run.totals.rounds.max(1) as f64
                ),
                (run.totals.sealed - run.totals.admitted_late - run.totals.deferred).to_string(),
                run.totals.admitted_late.to_string(),
                run.totals.deferred.to_string(),
                run.totals.dropped.to_string(),
                run.totals.superseded.to_string(),
                format!("{welfare:.2}"),
                format!("{avg_spend:.4}"),
                format!("{:.2}", mech.peak_backlog()),
            ]);
        }
    }
    println!("{}", table.to_markdown());

    // ---- Section 3: sustained overload, bounded buffer. ----------------
    println!("### sustained arrival rate vs a bounded buffer (capacity 256)");
    let capacity = 256usize;
    let rate = 400.0; // arrivals per round, far above what one seal drains
    let rounds = 40usize;
    let arrivals: Vec<TimedBid> = ArrivalProcess::new(ArrivalKind::Poisson { rate }, seed)
        .take_while(|tb| tb.at < rounds as f64)
        .collect();
    let bursty: Vec<TimedBid> = ArrivalProcess::new(
        ArrivalKind::Bursty {
            rate,
            burst_size: 64,
            spread: 0.05,
        },
        seed,
    )
    .take_while(|tb| tb.at < rounds as f64)
    .collect();
    let mut table = Table::new(vec![
        "stream".into(),
        "backpressure".into(),
        "arrivals".into(),
        "sealed".into(),
        "shed".into(),
        "blocked".into(),
        "peak occupancy".into(),
    ]);
    for (stream_label, stream) in [("poisson", &arrivals), ("bursty", &bursty)] {
        for (bp_label, backpressure) in [
            ("block", Backpressure::Block),
            ("shed:0.9", Backpressure::Shed { watermark: 0.9 }),
        ] {
            let cfg = IngestConfig {
                deadline: 0.8,
                late_policy: LateBidPolicy::Drop,
                backpressure,
                capacity,
                ..IngestConfig::default()
            };
            let run = VirtualTimeDriver.drive(stream, rounds, &cfg);
            table.row(vec![
                stream_label.into(),
                bp_label.into(),
                run.totals.arrivals.to_string(),
                run.totals.sealed.to_string(),
                run.totals.shed.to_string(),
                run.totals.blocked.to_string(),
                run.totals.buffer_peak.to_string(),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "expected: the batch-equivalence line reads bit-identical; shorter deadlines admit fewer bids per auction (defer recovers them next round, grace recovers a slice late); with shed:0.9 the peak occupancy stays at or below {} = 0.9 x capacity while block rides at capacity and above (transient unblock spikes).",
        (capacity as f64 * 0.9).floor() as usize
    );
}
