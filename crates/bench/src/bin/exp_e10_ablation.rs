//! E10 — Ablation: which LOVM ingredient buys what. Disabling the virtual
//! queue (fixed cost weight) breaks budget feasibility; shrinking the
//! winner cap K strangles welfare; growing K unboundedly inflates
//! information rents and wastes budget on payments instead of welfare.

use bench::{header, scale_scenario};
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::simulation::simulate;
use metrics::table::Table;
use workload::Scenario;

fn main() {
    let scenario = scale_scenario(Scenario::standard());
    let seed = 41;
    header(
        "E10",
        "LOVM component ablation (queue, winner cap, V)",
        &scenario,
        seed,
    );

    let mut table = Table::new(vec![
        "variant".into(),
        "welfare".into(),
        "spend".into(),
        "spend/B".into(),
        "client rents".into(),
        "feasible".into(),
    ]);

    let mut run = |label: &str, cfg: LovmConfig| {
        let mut mech = Lovm::new(cfg);
        let result = simulate(&mut mech, &scenario, seed);
        let spend = result.ledger.total_payment();
        table.row(vec![
            label.to_string(),
            format!("{:.1}", result.ledger.social_welfare()),
            format!("{spend:.1}"),
            format!("{:.3}", spend / scenario.total_budget),
            format!("{:.1}", result.ledger.client_utility()),
            if spend <= scenario.total_budget * 1.05 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    };

    let full = LovmConfig::for_scenario(&scenario, 50.0);
    run("LOVM (full)", full);

    // Ablation 1: no virtual queue. Fix the cost weight at its floor by
    // making the budget rate enormous (the queue never accumulates), i.e.
    // the mechanism prices costs with a constant Q = q_min forever.
    let mut no_queue = LovmConfig::for_scenario(&scenario, 50.0);
    no_queue.budget_per_round = 1e12;
    run("no queue (fixed Q = q_min)", no_queue);

    // Ablation 2: no winner cap (no payment competition).
    let mut no_cap = LovmConfig::for_scenario(&scenario, 50.0);
    no_cap.max_winners = None;
    run("no winner cap (K = inf)", no_cap);

    // Ablation 3: cap sweep.
    for k in [2usize, 4, 8, 16, 32] {
        run(
            &format!("K = {k}"),
            LovmConfig::for_scenario(&scenario, 50.0).with_max_winners(k),
        );
    }

    // Ablation 4: V extremes.
    run(
        "V = 1 (constraint-obsessed)",
        LovmConfig::for_scenario(&scenario, 1.0),
    );
    run(
        "V = 1000 (welfare-obsessed)",
        LovmConfig::for_scenario(&scenario, 1000.0),
    );

    println!("{}", table.to_markdown());
    println!(
        "expected: removing the queue destroys feasibility; tiny K destroys welfare; \
         K = inf keeps feasibility but diverts budget into rents (lower welfare than \
         a moderate K); V trades constraint transient against welfare."
    );
}
