//! E4 — Truthfulness (DSIC): a client's utility, as a function of its
//! misreport factor, peaks at truthful reporting under LOVM and the
//! truthful baselines; the non-truthful RandomK (pay-as-bid) control shows
//! the probe detecting profitable overbidding.

use auction::properties::probe_truthfulness;
use auction::valuation::Valuation;
use baselines::{BudgetSplitGreedy, MyopicVcg, RandomK};
use bench::header;
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::mechanism::{Mechanism, RoundInfo};
use metrics::table::Table;
use workload::population::generate;
use workload::Scenario;

fn main() {
    let scenario = Scenario::standard();
    let seed = 19;
    header(
        "E4",
        "client utility vs misreport factor (peak must be at 1.0x for truthful mechanisms)",
        &scenario,
        seed,
    );

    let profiles = generate(&scenario.population, seed);
    let bids: Vec<_> = profiles.iter().map(|p| p.truthful_bid()).collect();
    let factors = [0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0, 4.0];
    let info = RoundInfo {
        round: 0,
        horizon: scenario.horizon,
        total_budget: scenario.total_budget,
        spent_so_far: 0.0,
    };
    let valuation = Valuation::default();

    // Probe a representative sample of clients (cheap/expensive/median by
    // cost) for each mechanism; report per-factor utilities for the median
    // client and the max gain over all probed clients.
    let mut by_cost: Vec<usize> = (0..bids.len()).collect();
    by_cost.sort_by(|&a, &b| bids[a].cost.partial_cmp(&bids[b].cost).unwrap());
    let targets = [
        by_cost[2],
        by_cost[bids.len() / 4],
        by_cost[bids.len() / 2],
        by_cost[3 * bids.len() / 4],
        by_cost[bids.len() - 3],
    ];

    type MechFactory = Box<dyn Fn() -> Box<dyn Mechanism>>;
    let factories: Vec<(&str, MechFactory)> = vec![
        (
            "LOVM",
            Box::new({
                let s = scenario.clone();
                move || Box::new(Lovm::new(LovmConfig::for_scenario(&s, 50.0)))
            }),
        ),
        (
            "MyopicVCG",
            Box::new(move || Box::new(MyopicVcg::new(valuation, None))),
        ),
        (
            "BudgetSplitGreedy",
            Box::new(move || Box::new(BudgetSplitGreedy::new(valuation, None))),
        ),
        ("RandomK (non-truthful control)", {
            let n = bids.len();
            Box::new(move || Box::new(RandomK::new(n, valuation, 5)))
        }),
    ];

    let mut util_table = Table::new({
        let mut h = vec!["mechanism (median client)".to_string()];
        h.extend(factors.iter().map(|f| format!("{f}x")));
        h
    });
    let mut gain_table = Table::new(vec![
        "mechanism".into(),
        "max gain over probed clients".into(),
        "truthful".into(),
    ]);

    for (label, factory) in &factories {
        let mut max_gain = f64::NEG_INFINITY;
        let mut median_utilities = Vec::new();
        for &t in &targets {
            let report = probe_truthfulness(&bids, t, &factors, |b| {
                let mut m = factory();
                m.select(&info, b)
            });
            max_gain = max_gain.max(report.max_gain());
            if t == by_cost[bids.len() / 2] {
                median_utilities = report.utilities.clone();
            }
        }
        let mut cells = vec![label.to_string()];
        cells.extend(median_utilities.iter().map(|(_, u)| format!("{u:.3}")));
        util_table.row(cells);
        gain_table.row(vec![
            label.to_string(),
            format!("{max_gain:.4}"),
            if max_gain <= 1e-3 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }

    println!("{}", util_table.to_markdown());
    println!("{}", gain_table.to_markdown());
    println!(
        "expected shape: utility rows peak at the 1.0x column for every mechanism except the \
         RandomK pay-as-bid control, whose utility increases with overbidding."
    );
}
