//! E12 (extension) — Multi-constraint LOVM: a second virtual queue
//! enforces a long-term cap on average *energy drawn from the device
//! fleet* per round, on top of the money budget. Single-queue LOVM
//! violates the energy cap; MultiLOVM satisfies both at a modest welfare
//! cost.

use bench::{header, scale_scenario};
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::mechanism::Mechanism;
use lovm_core::multi::{Constraint, MultiLovm, MultiLovmConfig, ResourceUsage};
use lovm_core::simulation::{simulate, SimulationResult};
use metrics::table::Table;
use workload::Scenario;

const ENERGY_BASE: f64 = 0.2;
const ENERGY_PER_DATA: f64 = 0.004;

fn energy_of_run(result: &SimulationResult) -> Vec<f64> {
    let usage = ResourceUsage::EnergyAffine {
        base: ENERGY_BASE,
        per_data: ENERGY_PER_DATA,
    };
    result
        .outcomes
        .iter()
        .zip(&result.bids_per_round)
        .map(|(o, bids)| {
            o.winners
                .iter()
                .map(|w| {
                    let bid = bids
                        .iter()
                        .find(|b| b.bidder == w.bidder)
                        .expect("winner bid present");
                    usage.of(bid)
                })
                .sum::<f64>()
        })
        .collect()
}

fn main() {
    let scenario = scale_scenario(Scenario::standard());
    let seed = 47;
    header(
        "E12",
        "extension: joint money-budget + fleet-energy-draw constraints",
        &scenario,
        seed,
    );
    let energy_rate = 6.0; // allowed average fleet energy draw per round
    println!(
        "money rate rho = {:.2}/round; energy cap = {energy_rate:.2}/round \
         (usage = {ENERGY_BASE} + {ENERGY_PER_DATA}·data)\n",
        scenario.budget_per_round()
    );

    let mut table = Table::new(vec![
        "mechanism".into(),
        "welfare".into(),
        "avg spend".into(),
        "avg energy draw".into(),
        "money ok".into(),
        "energy ok".into(),
    ]);

    let mut row = |name: &str, result: &SimulationResult| {
        let rounds = result.outcomes.len() as f64;
        let avg_spend = result.ledger.total_payment() / rounds;
        let energy = energy_of_run(result);
        let avg_energy: f64 = energy.iter().sum::<f64>() / rounds;
        table.row(vec![
            name.to_string(),
            format!("{:.1}", result.ledger.social_welfare()),
            format!("{avg_spend:.3}"),
            format!("{avg_energy:.3}"),
            if avg_spend <= scenario.budget_per_round() * 1.05 {
                "yes".into()
            } else {
                "NO".into()
            },
            if avg_energy <= energy_rate * 1.05 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    };

    // Single-queue LOVM: money-feasible, energy-oblivious.
    let mut single = Lovm::new(LovmConfig::for_scenario(&scenario, 50.0));
    let r_single = simulate(&mut single, &scenario, seed);
    row(&single.name(), &r_single);

    // Multi-queue LOVM with the energy constraint.
    let mut multi = MultiLovm::new(MultiLovmConfig {
        v: 50.0,
        budget_per_round: scenario.budget_per_round(),
        constraints: vec![Constraint {
            name: "fleet-energy".into(),
            rate: energy_rate,
            usage: ResourceUsage::EnergyAffine {
                base: ENERGY_BASE,
                per_data: ENERGY_PER_DATA,
            },
        }],
        max_winners: Some(8),
        min_cost_weight: 1.0,
        valuation: scenario.valuation,
    });
    let r_multi = simulate(&mut multi, &scenario, seed);
    row(&multi.name(), &r_multi);

    println!("{}", table.to_markdown());
    println!(
        "expected: single-queue LOVM exceeds the energy cap; MultiLOVM meets both caps, \
         shifting recruitment toward lower-energy (smaller-data) clients at some welfare cost."
    );
}
