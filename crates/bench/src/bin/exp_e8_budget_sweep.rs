//! E8 — Budget sweep: as the long-term budget B varies from scarce to
//! abundant, LOVM's welfare scales gracefully and its feasibility holds at
//! every B, while the myopic cap baseline wastes scarce budgets (cannot
//! bank) and the fixed price cannot adapt at all.

use bench::{header, roster, scale_scenario};
use lovm_core::offline::{competitive_ratio, offline_benchmark};
use lovm_core::simulation::simulate;
use metrics::table::Table;
use workload::Scenario;

fn main() {
    let base = scale_scenario(Scenario::standard());
    let seed = 29;
    header(
        "E8",
        "welfare and feasibility vs total budget B",
        &base,
        seed,
    );

    let mut table = Table::new(vec![
        "B multiplier".into(),
        "mechanism".into(),
        "welfare".into(),
        "ratio to oracle".into(),
        "spend/B".into(),
        "feasible".into(),
    ]);

    // Sweep points are independent simulations: fan them out across the
    // worker pool and collect the row blocks in multiplier order, so the
    // table is identical at any worker count.
    let mults = [0.25, 0.5, 1.0, 2.0, 4.0];
    let blocks: Vec<Vec<Vec<String>>> = par::par_map(&mults, |&mult| {
        let mut s = base.clone();
        s.total_budget *= mult;
        let mut oracle = None;
        let mut rows = Vec::new();
        for mech in &mut roster(&s, 50.0, seed) {
            let result = simulate(mech.as_mut(), &s, seed);
            if oracle.is_none() {
                oracle = Some(offline_benchmark(
                    &result.bids_per_round,
                    &s.valuation,
                    s.total_budget,
                ));
            }
            let oracle = oracle.as_ref().unwrap();
            let welfare = result.ledger.social_welfare();
            let spend = result.ledger.total_payment();
            rows.push(vec![
                format!("{mult}x"),
                result.mechanism.clone(),
                format!("{welfare:.1}"),
                format!("{:.3}", competitive_ratio(welfare, oracle)),
                format!("{:.3}", spend / s.total_budget),
                if spend <= s.total_budget * 1.05 {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
        rows
    });
    for block in blocks {
        for row in block {
            table.row(row);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "expected: LOVM's ratio to oracle is the best feasible one at every B; scarcer \
         budgets widen the gap between LOVM and the myopic baselines."
    );
}
