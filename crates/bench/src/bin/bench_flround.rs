//! Federated-learning substrate microbenchmarks: one local training pass
//! and one server aggregation (the non-mechanism cost of a round).

use bench::harness::Bencher;
use fedsim::client::{LocalTrainer, LocalTrainerConfig};
use fedsim::data::partition::{partition, PartitionStrategy};
use fedsim::data::synth::{gaussian_blobs, BlobSpec};
use fedsim::model::{LogisticRegression, Mlp};
use fedsim::optim::OptimizerKind;
use fedsim::server::aggregate_weighted;
use std::hint::black_box;

fn main() {
    let mut train = Bencher::new("local_training_round");
    let ds = gaussian_blobs(&BlobSpec::new(10, 32, 100), 1);
    let parts = partition(&ds, 10, PartitionStrategy::Iid, 1);
    let shard = parts[0].dataset(&ds);
    let config = LocalTrainerConfig {
        local_epochs: 1,
        batch_size: 32,
        optimizer: OptimizerKind::Sgd { lr: 0.1 },
        ..LocalTrainerConfig::default()
    };

    let logistic = LogisticRegression::new(32, 10);
    let trainer = LocalTrainer::new(0, shard.clone(), config);
    train.bench("logistic_32f_10c", || {
        trainer.train(black_box(&logistic), 7)
    });

    let mlp = Mlp::new(32, 64, 10, 2);
    let trainer_mlp = LocalTrainer::new(0, shard, config);
    train.bench("mlp_32f_64h_10c", || trainer_mlp.train(black_box(&mlp), 7));

    let mut agg = Bencher::new("fedavg_aggregate");
    let ds = gaussian_blobs(&BlobSpec::new(10, 32, 40), 2);
    for n_clients in [10usize, 100] {
        let model = LogisticRegression::new(32, 10);
        let parts = partition(&ds, n_clients, PartitionStrategy::Iid, 2);
        let updates: Vec<_> = parts
            .iter()
            .map(|p| {
                let trainer =
                    LocalTrainer::new(p.client_id, p.dataset(&ds), LocalTrainerConfig::default());
                trainer.train(&model, p.client_id as u64)
            })
            .collect();
        agg.bench(&n_clients.to_string(), || {
            aggregate_weighted(black_box(&updates))
        });
    }
}
