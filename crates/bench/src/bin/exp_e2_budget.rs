//! E2 — Long-term budget feasibility and queue stability: LOVM's
//! time-average expenditure converges to the budget rate ρ from above
//! (after the O(V) transient) and its virtual queue stabilizes, while
//! budget-agnostic baselines drift.

use bench::{checkpoints, header, roster_with_upper_bound, scale_scenario, series_table};
use lovm_core::simulation::simulate;
use metrics::table::Table;
use workload::Scenario;

fn main() {
    let scenario = scale_scenario(Scenario::standard());
    let seed = 7;
    header(
        "E2",
        "time-average spend vs rounds (must approach rho) + LOVM queue stability",
        &scenario,
        seed,
    );
    let rho = scenario.budget_per_round();
    println!("budget rate rho = {rho:.3}\n");

    let points = checkpoints(scenario.horizon, 8);
    let mut avg_rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut backlog_row: Option<Vec<f64>> = None;
    let mut totals: Vec<(String, f64)> = Vec::new();

    for mech in &mut roster_with_upper_bound(&scenario, 50.0, seed) {
        let result = simulate(mech.as_mut(), &scenario, seed);
        avg_rows.push((result.mechanism.clone(), result.average_spend()));
        totals.push((result.mechanism.clone(), result.ledger.total_payment()));
        if result.mechanism.starts_with("LOVM") {
            backlog_row = Some(result.series.get("backlog").unwrap().to_vec());
        }
    }

    println!(
        "{}",
        series_table("avg spend/round", &points, &avg_rows, 3).to_markdown()
    );
    // Chart without the AllAvailable outlier so the interesting band is
    // visible.
    let chart_series: Vec<(&str, &[f64])> = avg_rows
        .iter()
        .filter(|(name, _)| !name.starts_with("AllAvailable"))
        .map(|(name, s)| (name.as_str(), s.as_slice()))
        .collect();
    println!("{}", metrics::plot::ascii_chart(&chart_series, 72, 14));

    if let Some(backlog) = backlog_row {
        println!(
            "{}",
            series_table(
                "LOVM queue backlog Q(t)",
                &points,
                &[("LOVM".to_string(), backlog.clone())],
                2
            )
            .to_markdown()
        );
        // Stability: Q(t)/t at the end.
        let rate = backlog.last().unwrap() / backlog.len() as f64;
        println!("final Q(t)/t = {rate:.5} (→ 0 means mean-rate stable)\n");
    }

    let mut summary = Table::new(vec![
        "mechanism".into(),
        "total spend".into(),
        "budget".into(),
        "violation %".into(),
    ]);
    for (name, spend) in &totals {
        let violation = ((spend / scenario.total_budget) - 1.0) * 100.0;
        summary.row(vec![
            name.clone(),
            format!("{spend:.1}"),
            format!("{:.1}", scenario.total_budget),
            format!("{:+.1}", violation),
        ]);
    }
    println!("{}", summary.to_markdown());
}
