//! E9 — Participation fairness: Jain's index and concentration of wins
//! across clients. Auction mechanisms concentrate on efficient clients (by
//! design); the table quantifies how much, and how the winner cap K
//! softens it.

use bench::{header, roster, scale_scenario};
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::simulation::simulate;
use metrics::stats::jain_fairness;
use metrics::table::Table;
use workload::Scenario;

fn fairness_row(name: &str, wins: &[f64], earned: &[f64]) -> Vec<String> {
    let total_wins: f64 = wins.iter().sum();
    let mut sorted = wins.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let top10 = (wins.len() / 10).max(1);
    let top10_share = if total_wins > 0.0 {
        sorted[..top10].iter().sum::<f64>() / total_wins
    } else {
        0.0
    };
    let participated = wins.iter().filter(|&&w| w > 0.0).count();
    vec![
        name.to_string(),
        format!("{:.3}", jain_fairness(wins)),
        format!("{:.3}", jain_fairness(earned)),
        format!("{:.2}", 100.0 * top10_share),
        format!("{participated}/{}", wins.len()),
    ]
}

fn main() {
    let scenario = scale_scenario(Scenario::standard());
    let seed = 37;
    header(
        "E9",
        "participation fairness across clients (Jain index, win concentration)",
        &scenario,
        seed,
    );

    let n = scenario.population.num_clients;
    let mut table = Table::new(vec![
        "mechanism".into(),
        "Jain(wins)".into(),
        "Jain(earnings)".into(),
        "top-10% win share %".into(),
        "clients ever selected".into(),
    ]);

    for mech in &mut roster(&scenario, 50.0, seed) {
        let result = simulate(mech.as_mut(), &scenario, seed);
        let wins = result.ledger.win_counts(n);
        let earned: Vec<f64> = (0..n)
            .map(|id| result.ledger.accounts().get(&id).map_or(0.0, |a| a.earned))
            .collect();
        table.row(fairness_row(&result.mechanism, &wins, &earned));
    }

    // K-sweep for LOVM: a larger winner cap spreads participation.
    for k in [4usize, 8, 16, 32] {
        let mut mech = Lovm::new(LovmConfig::for_scenario(&scenario, 50.0).with_max_winners(k));
        let result = simulate(&mut mech, &scenario, seed);
        let wins = result.ledger.win_counts(n);
        let earned: Vec<f64> = (0..n)
            .map(|id| result.ledger.accounts().get(&id).map_or(0.0, |a| a.earned))
            .collect();
        table.row(fairness_row(&format!("LOVM K={k}"), &wins, &earned));
    }

    println!("{}", table.to_markdown());
    println!(
        "expected: RandomK is the fairness upper reference (uniform); auctions concentrate \
         wins on efficient clients; increasing K spreads LOVM's participation."
    );
}
