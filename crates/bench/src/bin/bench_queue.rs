//! Drift-plus-penalty controller microbenchmarks: queue update and weight
//! computation throughput (these sit on the mechanism's per-round critical
//! path).

use bench::harness::Bencher;
use lyapunov::dpp::{DppConfig, DriftPlusPenalty};
use lyapunov::queue::VirtualQueue;
use std::hint::black_box;

fn main() {
    let mut b = Bencher::new("lyapunov");

    let mut q = VirtualQueue::new();
    let mut x = 0.0f64;
    b.bench("virtual_queue_update", || {
        x = (x + 1.3) % 5.0;
        q.update(black_box(x), black_box(2.0))
    });

    let mut ctl = DriftPlusPenalty::new(DppConfig {
        v: 50.0,
        budget_per_round: 2.0,
        min_cost_weight: 1.0,
    });
    let mut y = 0.0f64;
    b.bench("dpp_weights_plus_observe", || {
        let w = ctl.weights();
        y = (y + 0.7) % 4.0;
        ctl.observe_spend(black_box(y));
        black_box(w)
    });
}
