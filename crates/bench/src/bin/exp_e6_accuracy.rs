//! E6 — Federated test accuracy under a long-term budget: LOVM's
//! recruitment reaches accuracy close to budget-agnostic FedAvg
//! (AllAvailable) while staying on budget; value-blind selection (RandomK,
//! FixedPrice) learns more slowly per unit of budget.

use auction::valuation::{ClientValue, Valuation};
use baselines::{AllAvailable, BudgetSplitGreedy, FixedPrice, MyopicVcg, RandomK};
use bench::{header, scaled};
use fedsim::data::partition::{partition, PartitionStrategy};
use fedsim::data::synth::{synthetic_digits, DigitsSpec};
use fedsim::model::LogisticRegression;
use fedsim::training::{FederatedRun, RunConfig};
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::mechanism::{HardBudgetCap, Mechanism};
use lovm_core::orchestrator::{align_profiles_to_shards, run_fl, run_fl_market};
use lovm_core::simulation::Market;
use metrics::table::Table;
use workload::population::{CostDistribution, PopulationConfig};
use workload::{AvailabilityKind, Scenario};

fn scenario() -> Scenario {
    Scenario {
        name: "fl-accuracy".into(),
        population: PopulationConfig {
            num_clients: 40,
            cost: CostDistribution::Uniform { lo: 0.5, hi: 2.0 },
            data_size: (10, 10), // overwritten by shard alignment
            quality: (0.7, 1.0),
            energy_groups: Vec::new(),
        },
        // Globally bursty presence: scarce and abundant rounds alternate,
        // which is where banking budget across rounds (LOVM) matters.
        availability: AvailabilityKind::Wave {
            period: 50,
            min_p: 0.1,
            max_p: 0.9,
        },
        horizon: scaled(300),
        total_budget: 3.0 * scaled(300) as f64,
        training_energy: 1.0,
        valuation: auction::valuation::Valuation::default(),
    }
}

fn federation(seed: u64) -> (FederatedRun<LogisticRegression>, fedsim::data::Dataset) {
    let mut spec = DigitsSpec::new(160);
    spec.noise = 1.6; // heavy class overlap: accuracy saturates below 1.0
    let ds = synthetic_digits(&spec, seed);
    let (train, test) = ds.split_at(1300);
    let parts = partition(
        &train,
        40,
        PartitionStrategy::Dirichlet { alpha: 0.3 },
        seed,
    );
    let run = FederatedRun::new(
        LogisticRegression::new(train.num_features(), train.num_classes()),
        parts,
        train,
        RunConfig::default(),
    );
    (run, test)
}

fn main() {
    let s = scenario();
    let seed = 31;
    header(
        "E6",
        "test accuracy vs rounds under a long-term budget",
        &s,
        seed,
    );
    let valuation = Valuation::Log(ClientValue {
        value_per_unit: 0.25,
        base_value: 0.5,
    });

    // Every candidate runs under the same *hard* budget rule: once B is
    // exhausted, no further recruitment. AllAvailable stays uncapped as the
    // unconstrained accuracy upper bound.
    let mut mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(HardBudgetCap::new(Lovm::new(
            LovmConfig::for_scenario(&s, 15.0).with_valuation(valuation),
        ))),
        Box::new(HardBudgetCap::new(MyopicVcg::new(valuation, None))),
        Box::new(HardBudgetCap::new(BudgetSplitGreedy::new(valuation, None))),
        Box::new(HardBudgetCap::new(FixedPrice::new(1.2, valuation, None))),
        Box::new(AllAvailable::new(valuation)),
    ];

    let eval_every = (s.horizon / 6).max(1);
    let mut table: Option<Table> = None;
    let mut summary = Table::new(vec![
        "mechanism".into(),
        "final accuracy".into(),
        "spend".into(),
        "budget-feasible".into(),
        "winners/round".into(),
    ]);

    // The non-truthful pay-as-bid baseline faces a *strategic* population:
    // with no incentive to report truthfully, clients inflate asks (2x here
    // — a conservative stand-in for the unbounded best response).
    let mut strategic_random: Box<dyn Mechanism> =
        Box::new(HardBudgetCap::new(RandomK::new(4, valuation, seed)));
    let mut results = Vec::new();
    for mech in &mut mechanisms {
        let (mut run, test) = federation(seed);
        results.push(run_fl(mech.as_mut(), &mut run, &test, &s, eval_every, seed));
    }
    {
        let (mut run, test) = federation(seed);
        let base = Market::new(&s, seed);
        let aligned = align_profiles_to_shards(base.profiles(), &run.shard_sizes());
        let market = Market::with_profiles(&s, aligned, seed).with_uniform_misreport(2.0);
        strategic_random.reset();
        let mut res = run_fl_market(
            strategic_random.as_mut(),
            &mut run,
            &test,
            &s,
            market,
            eval_every,
        );
        res.mechanism = "Random4 (strategic 2x bids)+cap".into();
        results.push(res);
    }

    for result in &results {
        if table.is_none() {
            let mut headers = vec!["accuracy @round".to_string()];
            headers.extend(result.accuracy.iter().map(|&(r, _)| r.to_string()));
            table = Some(Table::new(headers));
        }
        let mut cells = vec![result.mechanism.clone()];
        cells.extend(result.accuracy.iter().map(|&(_, a)| format!("{a:.3}")));
        table.as_mut().unwrap().row(cells);

        let winners = result.series.get("winners").unwrap();
        let mean_winners: f64 = winners.iter().sum::<f64>() / winners.len() as f64;
        let spend = result.ledger.total_payment();
        summary.row(vec![
            result.mechanism.clone(),
            format!("{:.3}", result.final_accuracy()),
            format!("{spend:.1}"),
            if spend <= s.total_budget * 1.05 {
                "yes".into()
            } else {
                "NO".into()
            },
            format!("{mean_winners:.2}"),
        ]);
    }

    println!("{}", table.unwrap().to_markdown());
    println!("{}", summary.to_markdown());
    println!(
        "expected: AllAvailable reaches the highest accuracy but is budget-agnostic; among \
         budget-feasible mechanisms LOVM reaches the best accuracy-per-budget."
    );
}
