//! Payment-rule microbenchmarks: one full VCG round (allocation + Clarke
//! pivots), the incremental-vs-naive leave-one-out engine comparison, and
//! critical-value bisection payments.
//!
//! Row names carry the payment engine in use (`naive` = per-winner
//! re-solve, `incremental` = shared forward/backward pass —
//! `auction::pivots`). The `payment_engine` group is the scaling report the
//! CI gate reads: at n = 1024 the incremental engine must beat the naive
//! one on a single worker, because the win is algorithmic (O(n·G) total vs
//! O(n²·G)), not core-count-dependent.

use auction::bid::Bid;
use auction::critical::critical_value;
use auction::pivots::PaymentStrategy;
use auction::shard::MarketTopology;
use auction::valuation::Valuation;
use auction::vcg::{VcgAuction, VcgConfig};
use auction::wdp::SolverKind;
use bench::harness::Bencher;
use bench::random_bids as bids;
use par::Pool;
use std::hint::black_box;

fn main() {
    let valuation = Valuation::default();

    let mut vcg = Bencher::new("vcg_full_round");
    for n in [100usize, 1000, 10000] {
        let all = bids(n, 1);
        let auction = VcgAuction::new(VcgConfig {
            value_weight: 50.0,
            cost_weight: 5.0,
            max_winners: Some(20),
            ..VcgConfig::default()
        });
        vcg.bench(&format!("{n}_incremental"), || {
            auction.run(black_box(&all), &valuation)
        });
    }

    // The engine comparison: identical budgeted instances, payments
    // computed by the naive per-winner re-solve vs the incremental
    // leave-one-out engine, both pinned to one worker so the measured gap
    // is the algorithm, not the core count. The two rows produce
    // bit-identical outcomes (differential suite), so this is a pure
    // like-for-like timing.
    let mut engines = Bencher::new("payment_engine");
    for n in [64usize, 256, 1024] {
        let all = bids(n, 3);
        let auction = VcgAuction::new(VcgConfig {
            value_weight: 50.0,
            cost_weight: 5.0,
            max_winners: None,
            ..VcgConfig::default()
        });
        // ~40% of total reported cost keeps roughly half the population
        // winning, so there are Θ(n) pivots to price.
        let budget = 0.4 * all.iter().map(|b| b.cost).sum::<f64>();
        let kind = SolverKind::Knapsack { grid: 512 };
        let naive_ns = engines
            .bench(&format!("{n}_naive"), || {
                auction.run_with_budget_strategy_on(
                    black_box(&all),
                    &valuation,
                    budget,
                    kind,
                    PaymentStrategy::Naive,
                    Pool::serial(),
                )
            })
            .median_ns;
        let incremental_ns = engines
            .bench(&format!("{n}_incremental"), || {
                auction.run_with_budget_strategy_on(
                    black_box(&all),
                    &valuation,
                    budget,
                    kind,
                    PaymentStrategy::Incremental,
                    Pool::serial(),
                )
            })
            .median_ns;
        eprintln!(
            "payment_engine/{n}: incremental {:.2}x faster than naive (1 worker)",
            naive_ns / incremental_ns
        );
    }

    // Shard scale: at n = 4096 the naive engine is far out of budget, so
    // the trajectory is tracked monolithic-vs-sharded on the incremental
    // engine. Rows carry the topology; the budget is tight enough to bind
    // inside every shard (the regime sharding is for), and one worker
    // keeps the comparison about the pipeline, not the core count.
    {
        let n = 4096usize;
        let all = bids(n, 3);
        let budget = 0.02 * all.iter().map(|b| b.cost).sum::<f64>();
        let kind = SolverKind::Knapsack { grid: 512 };
        let mut row = |label: &str, topology: MarketTopology| {
            let auction = VcgAuction::new(VcgConfig {
                value_weight: 50.0,
                cost_weight: 5.0,
                topology,
                ..VcgConfig::default()
            });
            engines
                .bench(&format!("{n}_{label}_incremental"), || {
                    auction.run_with_budget_strategy_on(
                        black_box(&all),
                        &valuation,
                        budget,
                        kind,
                        PaymentStrategy::Incremental,
                        Pool::serial(),
                    )
                })
                .median_ns
        };
        let mono_ns = row("monolithic", MarketTopology::Monolithic);
        let sharded_ns = row("sharded16", MarketTopology::Sharded { count: 16 });
        eprintln!(
            "payment_engine/{n}: sharded{{16}} {:.2}x vs monolithic (1 worker)",
            mono_ns / sharded_ns
        );
    }

    // Pool scaling of the incremental engine's per-winner merge fan-out
    // (the residual parallel surface once the DP tables are shared).
    let mut loo = Bencher::new("vcg_loo_pivots");
    let threads = par::configured_threads();
    for n in [64usize, 128] {
        let all = bids(n, 3);
        let auction = VcgAuction::new(VcgConfig {
            value_weight: 50.0,
            cost_weight: 5.0,
            max_winners: None,
            ..VcgConfig::default()
        });
        let budget = 0.4 * all.iter().map(|b| b.cost).sum::<f64>();
        let serial_ns = loo
            .bench(&format!("{n}_incremental_serial"), || {
                auction.run_with_budget_on(
                    black_box(&all),
                    &valuation,
                    budget,
                    SolverKind::Exact,
                    Pool::serial(),
                )
            })
            .median_ns;
        let pool_ns = loo
            .bench(&format!("{n}_incremental_threads{threads}"), || {
                auction.run_with_budget_on(
                    black_box(&all),
                    &valuation,
                    budget,
                    SolverKind::Exact,
                    Pool::auto(),
                )
            })
            .median_ns;
        eprintln!(
            "vcg_loo_pivots/{n}: speedup {:.2}x at {threads} thread(s)",
            serial_ns / pool_ns
        );
    }

    let mut crit = Bencher::new("critical_value_bisection");
    for n in [50usize, 200] {
        let all = bids(n, 2);
        // Monotone rule: top-10 by value/cost density.
        let wins = move |bs: &[Bid]| -> bool {
            let mut order: Vec<usize> = (0..bs.len()).collect();
            order.sort_by(|&a, &b| {
                let da = valuation.client_value(&bs[a]) / bs[a].cost.max(1e-9);
                let db = valuation.client_value(&bs[b]) / bs[b].cost.max(1e-9);
                db.partial_cmp(&da).unwrap()
            });
            order[..10].contains(&0)
        };
        crit.bench(&n.to_string(), || {
            critical_value(black_box(&all), 0, 10.0, 1e-6, wins)
        });
    }
}
