//! Payment-rule microbenchmarks: one full VCG round (allocation + Clarke
//! pivots) vs critical-value bisection payments.

use auction::bid::Bid;
use auction::critical::critical_value;
use auction::valuation::Valuation;
use auction::vcg::{VcgAuction, VcgConfig};
use auction::wdp::SolverKind;
use bench::harness::Bencher;
use bench::random_bids as bids;
use par::Pool;
use std::hint::black_box;

fn main() {
    let valuation = Valuation::default();

    let mut vcg = Bencher::new("vcg_full_round");
    for n in [100usize, 1000, 10000] {
        let all = bids(n, 1);
        let auction = VcgAuction::new(VcgConfig {
            value_weight: 50.0,
            cost_weight: 5.0,
            max_winners: Some(20),
            reserve_price: None,
        });
        vcg.bench(&n.to_string(), || auction.run(black_box(&all), &valuation));
    }

    // The budgeted payment path: W*₋ᵢ re-solved from scratch for every
    // winner (n independent knapsack solves). This is the path `crates/par`
    // accelerates; we measure it serial and on the configured pool and
    // report the speedup. `LOVM_THREADS=1` makes both rows equal.
    let mut loo = Bencher::new("vcg_loo_pivots");
    let threads = par::configured_threads();
    for n in [64usize, 128] {
        let all = bids(n, 3);
        let auction = VcgAuction::new(VcgConfig {
            value_weight: 50.0,
            cost_weight: 5.0,
            max_winners: None,
            reserve_price: None,
        });
        // A budget around 40% of total reported cost keeps roughly half the
        // population winning, so there are ≥ n/4 leave-one-out solves.
        let budget = 0.4 * all.iter().map(|b| b.cost).sum::<f64>();
        let serial_ns = loo
            .bench(&format!("{n}_serial"), || {
                auction.run_with_budget_on(
                    black_box(&all),
                    &valuation,
                    budget,
                    SolverKind::Exact,
                    Pool::serial(),
                )
            })
            .median_ns;
        let pool_ns = loo
            .bench(&format!("{n}_threads{threads}"), || {
                auction.run_with_budget_on(
                    black_box(&all),
                    &valuation,
                    budget,
                    SolverKind::Exact,
                    Pool::auto(),
                )
            })
            .median_ns;
        eprintln!(
            "vcg_loo_pivots/{n}: speedup {:.2}x at {threads} thread(s)",
            serial_ns / pool_ns
        );
    }

    let mut crit = Bencher::new("critical_value_bisection");
    for n in [50usize, 200] {
        let all = bids(n, 2);
        // Monotone rule: top-10 by value/cost density.
        let wins = move |bs: &[Bid]| -> bool {
            let mut order: Vec<usize> = (0..bs.len()).collect();
            order.sort_by(|&a, &b| {
                let da = valuation.client_value(&bs[a]) / bs[a].cost.max(1e-9);
                let db = valuation.client_value(&bs[b]) / bs[b].cost.max(1e-9);
                db.partial_cmp(&da).unwrap()
            });
            order[..10].contains(&0)
        };
        crit.bench(&n.to_string(), || {
            critical_value(black_box(&all), 0, 10.0, 1e-6, wins)
        });
    }
}
