//! E5 — Individual rationality: across a full simulated horizon, every
//! winner of every truthful mechanism is paid at least its cost; the
//! payment−cost margin distribution is reported per mechanism.

use bench::{header, roster, scale_scenario};
use lovm_core::simulation::simulate;
use metrics::stats::Summary;
use metrics::table::Table;
use workload::Scenario;

fn main() {
    let scenario = scale_scenario(Scenario::standard());
    let seed = 23;
    header(
        "E5",
        "payment >= reported cost for every winner (IR), margin distribution",
        &scenario,
        seed,
    );

    let mut table = Table::new(vec![
        "mechanism".into(),
        "winner-rounds".into(),
        "IR violations".into(),
        "min margin".into(),
        "mean margin".into(),
        "median margin".into(),
        "max margin".into(),
    ]);

    for mech in &mut roster(&scenario, 50.0, seed) {
        let result = simulate(mech.as_mut(), &scenario, seed);
        let mut margins = Vec::new();
        let mut violations = 0usize;
        for outcome in &result.outcomes {
            for w in &outcome.winners {
                let margin = w.payment - w.cost;
                if margin < -1e-6 {
                    violations += 1;
                }
                margins.push(margin);
            }
        }
        let s = Summary::of(&margins);
        table.row(vec![
            result.mechanism.clone(),
            s.n.to_string(),
            violations.to_string(),
            format!("{:.4}", s.min),
            format!("{:.4}", s.mean),
            format!("{:.4}", s.median),
            format!("{:.4}", s.max),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "expected: zero violations everywhere (RandomK pays exactly the bid, margin 0; \
         auction mechanisms pay information rents, margin > 0)."
    );
}
