//! End-to-end mechanism round benchmarks: the full LOVM round (scoring +
//! exact WDP + Clarke payments + queue update) vs the baselines, at
//! realistic population sizes.

use auction::valuation::Valuation;
use baselines::{BudgetSplitGreedy, FixedPrice, MyopicVcg};
use bench::harness::Bencher;
use bench::random_bids as bids;
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::mechanism::{Mechanism, RoundInfo};
use std::hint::black_box;
use workload::Scenario;

fn info(n: usize) -> RoundInfo {
    let s = Scenario::large(n);
    RoundInfo {
        round: 50,
        horizon: s.horizon,
        total_budget: s.total_budget,
        spent_so_far: 40.0 * n as f64 / 100.0,
    }
}

fn main() {
    let mut lovm = Bencher::new("lovm_round");
    for n in [100usize, 1000, 10000] {
        let all = bids(n, 1);
        let s = Scenario::large(n);
        let mut mech = Lovm::new(LovmConfig::for_scenario(&s, 50.0).with_max_winners(20));
        let ri = info(n);
        lovm.bench(&n.to_string(), || {
            mech.select(black_box(&ri), black_box(&all))
        });
    }

    let mut base = Bencher::new("baseline_round_n200");
    let n = 200;
    let all = bids(n, 2);
    let ri = info(n);
    let valuation = Valuation::default();

    let mut myopic = MyopicVcg::new(valuation, None).with_grid(400);
    base.bench("myopic_vcg_critical", || {
        myopic.select(black_box(&ri), black_box(&all))
    });

    let mut greedy = BudgetSplitGreedy::new(valuation, None);
    base.bench("budget_split_greedy", || {
        greedy.select(black_box(&ri), black_box(&all))
    });

    let mut fixed = FixedPrice::new(1.2, valuation, None);
    base.bench("fixed_price", || {
        fixed.select(black_box(&ri), black_box(&all))
    });
}
