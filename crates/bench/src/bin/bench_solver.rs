//! Solver roofline: the arena-backed branchless knapsack/top-K path
//! (`auction::wdp::SolverArena`) against the legacy allocating solver
//! (`auction::wdp::solve_view`), across n × grid × constraint-combo.
//!
//! Every row reports ns/solve (median), DP cells touched per ns, and heap
//! bytes allocated per solve (counted by a wrapping `#[global_allocator]`,
//! measured outside the timed region). Before any row is timed, the two
//! implementations are asserted **bit-identical** on that row's instance —
//! a benchmark comparing diverging solvers would be meaningless.
//!
//! Output contract:
//! * stdout — one JSON line per benchmark (the `Bencher` contract; the CI
//!   gate reads `solver/budget_n4096_g4000_{legacy,arena}` median_ns),
//! * stderr — the human roofline table,
//! * `BENCH_solver.json` — the machine-readable roofline (validated by
//!   re-parsing with `metrics::json` before the process exits 0).

use auction::wdp::{
    solve_view, SolverArena, SolverKind, WdpInstance, WdpItem, WdpSolution, WdpView,
};
use bench::harness::Bencher;
use metrics::json::JsonValue;
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The standard roofline population: same cost range as `bench::random_bids`
/// with pre-scored weights (a mix of winners and losers, some negative so
/// the candidate filter does real work).
fn items(n: usize, seed: u64) -> Vec<WdpItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| WdpItem {
            bidder: i,
            weight: rng.random_range(-3.0..12.0),
            cost: rng.random_range(0.2..3.0),
        })
        .collect()
}

/// DP cells the budgeted solve touches: candidates × grid width × count
/// rows. Valid while `m·cells` stays under the solver's coarsening
/// threshold (`1 << 28`) — the row sizes below are chosen to stay under it,
/// and the assert guards the invariant if someone scales the table up.
fn dp_cells(inst: &WdpInstance, grid: usize, cap: Option<usize>) -> u64 {
    let budget = inst.budget.expect("budgeted combos only");
    let m = inst
        .items
        .iter()
        .filter(|it| it.weight > 0.0 && it.cost <= budget + 1e-12)
        .count() as u64;
    let width = grid as u64 + 1;
    let rows = cap.map_or(1, |k| (k as u64).min(m) + 1);
    let cells = m * width * rows;
    assert!(
        cells < 1 << 28,
        "row exceeds the coarsening threshold; cells/ns would be wrong"
    );
    cells
}

/// Heap bytes per solve, measured over `reps` warm solves (outside the
/// timed region, so counting overhead never pollutes the ns columns).
fn bytes_per_solve(mut solve: impl FnMut(), reps: u64) -> u64 {
    solve(); // warm-up: capacity growth is not steady-state behavior
    let before = ALLOC_BYTES.load(Ordering::Relaxed);
    for _ in 0..reps {
        solve();
    }
    (ALLOC_BYTES.load(Ordering::Relaxed) - before) / reps
}

struct Row {
    name: String,
    n: usize,
    grid: usize,
    combo: &'static str,
    implementation: &'static str,
    median_ns: f64,
    cells: u64,
    bytes: u64,
}

/// `bench_solver --check <path>`: parse a previously written roofline with
/// `metrics::json` and validate its shape, without running any benchmark.
/// The CI gate uses this to prove the committed artifact is valid JSON.
fn check_artifact(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let doc = JsonValue::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e}"));
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("lovm.bench_solver.v1"),
        "{path}: wrong or missing schema tag"
    );
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .unwrap_or_else(|| panic!("{path}: missing rows array"));
    assert!(!rows.is_empty(), "{path}: empty rows array");
    for row in rows {
        for key in ["bench", "impl", "median_ns", "bytes_per_solve"] {
            assert!(row.get(key).is_some(), "{path}: row missing {key:?}");
        }
    }
    eprintln!("# {path}: valid ({} rows)", rows.len());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--check" {
        check_artifact(&args[2]);
        return;
    }
    let mut bencher = Bencher::new("solver");
    let mut rows: Vec<Row> = Vec::new();
    let mut arena = SolverArena::new();
    let mut out = WdpSolution::default();

    // Budgeted knapsack combos: budget alone, budget + cardinality cap.
    // The cap of 8 keeps rows·width·m under the 2-D coarsening threshold at
    // every size, so the cells column is the literal DP trip count.
    for n in [256usize, 1024, 4096] {
        let base = items(n, 0x50F7_0000 + n as u64);
        let total_cost: f64 = base.iter().map(|it| it.cost).sum();
        for grid in [1000usize, 4000] {
            let kind = SolverKind::Knapsack { grid };
            for (combo, cap) in [("budget", None), ("budgetcap", Some(8usize))] {
                let mut inst = WdpInstance::new(base.clone()).with_budget(0.3 * total_cost);
                if let Some(k) = cap {
                    inst = inst.with_max_winners(k);
                }
                let cells = dp_cells(&inst, grid, cap);
                let view = WdpView::full(&inst);

                // Bit-identity first; timing a divergent pair is nonsense.
                let legacy_sol = solve_view(&view, kind);
                arena.solve_view_into(&view, kind, &mut out);
                assert_eq!(legacy_sol.selected, out.selected, "{combo} n={n} g={grid}");
                assert_eq!(
                    legacy_sol.objective.to_bits(),
                    out.objective.to_bits(),
                    "{combo} n={n} g={grid}"
                );

                for implementation in ["legacy", "arena"] {
                    let name = format!("{combo}_n{n}_g{grid}_{implementation}");
                    let bytes = match implementation {
                        "legacy" => bytes_per_solve(
                            || {
                                black_box(solve_view(&view, kind).objective);
                            },
                            4,
                        ),
                        _ => bytes_per_solve(|| arena.solve_view_into(&view, kind, &mut out), 4),
                    };
                    let median_ns = match implementation {
                        "legacy" => bencher.bench(&name, || solve_view(black_box(&view), kind)),
                        _ => bencher.bench(&name, || {
                            arena.solve_view_into(black_box(&view), kind, &mut out);
                            out.objective
                        }),
                    }
                    .median_ns;
                    rows.push(Row {
                        name: format!("solver/{name}"),
                        n,
                        grid,
                        combo,
                        implementation,
                        median_ns,
                        cells,
                        bytes,
                    });
                }
            }
        }
    }

    // Top-K rows (no budget → preference-order path; grid is irrelevant).
    for n in [1024usize, 4096] {
        let base = items(n, 0x50F7_1000 + n as u64);
        let inst = WdpInstance::new(base).with_max_winners(64);
        let view = WdpView::full(&inst);
        let kind = SolverKind::Exact;
        let legacy_sol = solve_view(&view, kind);
        arena.solve_view_into(&view, kind, &mut out);
        assert_eq!(legacy_sol.selected, out.selected, "topk n={n}");
        assert_eq!(legacy_sol.objective.to_bits(), out.objective.to_bits());
        for implementation in ["legacy", "arena"] {
            let name = format!("topk_n{n}_{implementation}");
            let bytes = match implementation {
                "legacy" => bytes_per_solve(
                    || {
                        black_box(solve_view(&view, kind).objective);
                    },
                    8,
                ),
                _ => bytes_per_solve(|| arena.solve_view_into(&view, kind, &mut out), 8),
            };
            let median_ns = match implementation {
                "legacy" => bencher.bench(&name, || solve_view(black_box(&view), kind)),
                _ => bencher.bench(&name, || {
                    arena.solve_view_into(black_box(&view), kind, &mut out);
                    out.objective
                }),
            }
            .median_ns;
            rows.push(Row {
                name: format!("solver/{name}"),
                n,
                grid: 0,
                combo: "topk",
                implementation,
                median_ns,
                cells: 0,
                bytes,
            });
        }
    }

    // Human roofline table (stderr, like the bench rows themselves).
    eprintln!();
    eprintln!(
        "{:<38} {:>12} {:>10} {:>12}",
        "row", "ns/solve", "cells/ns", "bytes/solve"
    );
    for row in &rows {
        let cells_per_ns = if row.cells > 0 {
            format!("{:.2}", row.cells as f64 / row.median_ns)
        } else {
            "-".to_string()
        };
        eprintln!(
            "{:<38} {:>12.0} {:>10} {:>12}",
            row.name, row.median_ns, cells_per_ns, row.bytes
        );
    }
    for (a, b) in rows.iter().zip(rows.iter().skip(1)) {
        if a.implementation == "legacy" && b.implementation == "arena" && a.combo == b.combo {
            eprintln!(
                "solver/{}_n{}_g{}: arena {:.2}x vs legacy",
                a.combo,
                a.n,
                a.grid,
                a.median_ns / b.median_ns
            );
        }
    }

    // Machine-readable roofline, then prove it re-parses before exiting 0.
    let mut table = JsonValue::array();
    for row in &rows {
        table = table.item(
            JsonValue::object()
                .field("bench", row.name.as_str())
                .field("n", row.n)
                .field("grid", row.grid)
                .field("combo", row.combo)
                .field("impl", row.implementation)
                .field("median_ns", row.median_ns)
                .field("cells", row.cells)
                .field(
                    "cells_per_ns",
                    if row.cells > 0 {
                        row.cells as f64 / row.median_ns
                    } else {
                        0.0
                    },
                )
                .field("bytes_per_solve", row.bytes),
        );
    }
    let doc = JsonValue::object()
        .field("schema", "lovm.bench_solver.v1")
        .field("rows", table);
    let text = doc.to_string();
    let parsed = JsonValue::parse(&text).expect("BENCH_solver.json must be valid JSON");
    let row_count = parsed
        .get("rows")
        .and_then(|r| r.as_array())
        .map(<[JsonValue]>::len)
        .expect("rows array survives the roundtrip");
    assert_eq!(row_count, rows.len(), "roundtrip dropped rows");
    std::fs::write("BENCH_solver.json", text + "\n").expect("write BENCH_solver.json");
    eprintln!("# wrote BENCH_solver.json ({row_count} rows)");
}
