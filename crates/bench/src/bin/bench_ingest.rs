//! Ingestion-throughput microbenchmarks: sealed-rounds/sec for the
//! virtual-time driver vs the threaded (`std::sync::mpsc`) driver on
//! pre-generated Poisson arrival streams of 10⁴–10⁶ bids.
//!
//! Rows are named `{arrivals}_{driver}`; the human summary on stderr
//! converts each median into sealed-rounds/sec and arrivals/sec. The
//! drivers produce bit-identical sealed rounds in lossless mode (see
//! `ingest::driver`), so this is a like-for-like pipeline comparison:
//! the virtual driver measures the pure ingestion loop, the threaded
//! driver adds real channel hops and thread wakeups.
//!
//! The 10⁶ row re-drives a million-arrival stream per sample; to keep the
//! default run short it caps its sample count at 5 (`LOVM_BENCH_SAMPLES`
//! below 5 is honored).

use bench::harness::{BenchConfig, Bencher};
use ingest::driver::{StreamDriver, ThreadedDriver, VirtualTimeDriver};
use ingest::{IngestConfig, LateBidPolicy};
use std::hint::black_box;
use workload::arrivals::{ArrivalKind, ArrivalProcess, TimedBid};

const RATE: f64 = 1000.0; // arrivals per round

fn stream(n: usize) -> (Vec<TimedBid>, usize) {
    let arrivals: Vec<TimedBid> = ArrivalProcess::new(ArrivalKind::Poisson { rate: RATE }, 7)
        .take(n)
        .collect();
    let rounds = (arrivals.last().map(|tb| tb.at).unwrap_or(0.0)).ceil() as usize;
    (arrivals, rounds.max(1))
}

fn main() {
    let cfg = IngestConfig {
        deadline: 0.8,
        late_policy: LateBidPolicy::DeferToNext,
        capacity: 16_384,
        ..IngestConfig::default()
    };
    let threads = par::configured_threads();

    for n in [10_000usize, 100_000, 1_000_000] {
        let (arrivals, rounds) = stream(n);
        // A single drive over 10⁶ arrivals is ~10⁶ heap operations; cap
        // the expensive row's samples so the default run stays short.
        let base = BenchConfig::default();
        let config = BenchConfig {
            samples: if n >= 1_000_000 {
                base.samples.min(5)
            } else {
                base.samples
            },
            ..base
        };
        let mut group = Bencher::with_config("ingest_drive", config);

        let virtual_ns = group
            .bench(&format!("{n}_virtual"), || {
                VirtualTimeDriver.drive(black_box(&arrivals), rounds, &cfg)
            })
            .median_ns;
        let threaded_ns = group
            .bench(&format!("{n}_threaded{threads}"), || {
                ThreadedDriver::new(&par::Pool::auto()).drive(black_box(&arrivals), rounds, &cfg)
            })
            .median_ns;

        let per_sec = |ns: f64| rounds as f64 / (ns * 1e-9);
        eprintln!(
            "ingest_drive/{n}: virtual {:.0} sealed-rounds/s ({:.2}M arrivals/s), \
             threaded({threads}p) {:.0} sealed-rounds/s ({:.2}M arrivals/s), ratio {:.2}x",
            per_sec(virtual_ns),
            n as f64 / (virtual_ns * 1e-9) / 1e6,
            per_sec(threaded_ns),
            n as f64 / (threaded_ns * 1e-9) / 1e6,
            threaded_ns / virtual_ns
        );
    }
}
