//! E11 — Robustness across energy-harvesting regimes: LOVM keeps budget
//! feasibility and welfare across constant, bursty (Bernoulli), correlated
//! (Markov on/off), and diurnal (solar) harvesting, adapting recruitment
//! to whoever currently has energy.

use bench::{header, scale_scenario};
use energy::harvest::HarvesterKind;
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::simulation::simulate;
use metrics::stats::jain_fairness;
use metrics::table::Table;
use workload::population::EnergyGroup;
use workload::Scenario;

/// Builds the energy-heterogeneous scenario with every group using the
/// given harvesting family at matched mean rates.
fn with_harvesting(kind_of: impl Fn(f64, usize) -> HarvesterKind, name: &str) -> Scenario {
    let mut s = Scenario::energy_heterogeneous();
    s.name = name.to_string();
    let cycles = [1.0, 5.0, 10.0, 20.0];
    s.population.energy_groups = cycles
        .iter()
        .enumerate()
        .map(|(g, &cycle)| EnergyGroup {
            harvester: kind_of(s.training_energy / cycle, g),
            battery_capacity: 2.0 * s.training_energy,
        })
        .collect();
    s
}

fn main() {
    let base = scale_scenario(Scenario::energy_heterogeneous());
    let seed = 43;
    header(
        "E11",
        "welfare/feasibility/participation across harvesting processes (matched mean rates)",
        &base,
        seed,
    );

    let scenarios: Vec<Scenario> = vec![
        with_harvesting(|rate, _| HarvesterKind::Constant { rate }, "constant"),
        with_harvesting(
            |rate, _| HarvesterKind::Bernoulli {
                p: 0.2,
                amount: rate / 0.2,
            },
            "bernoulli-bursts",
        ),
        with_harvesting(
            |rate, _| HarvesterKind::MarkovOnOff {
                p_on_off: 0.1,
                p_off_on: 0.1,
                rate_on: 2.0 * rate, // stationary P(on) = 0.5
            },
            "markov-on-off",
        ),
        with_harvesting(
            |rate, g| HarvesterKind::Solar {
                day_length: 48,
                peak: rate * std::f64::consts::PI, // mean = peak/pi
                phase: g * 12,
                noise: 0.3,
            },
            "solar-diurnal",
        ),
    ];

    let mut table = Table::new(vec![
        "harvesting".into(),
        "welfare".into(),
        "spend/B".into(),
        "feasible".into(),
        "avg bidders/round".into(),
        "avg winners/round".into(),
        "Jain(wins)".into(),
    ]);

    for mut s in scenarios {
        s = scale_scenario(s);
        let mut mech = Lovm::new(LovmConfig::for_scenario(&s, 40.0));
        let result = simulate(&mut mech, &s, seed);
        let spend = result.ledger.total_payment();
        let winners = result.series.get("winners").unwrap();
        let avg_winners: f64 = winners.iter().sum::<f64>() / winners.len() as f64;
        let avg_bidders: f64 = result
            .bids_per_round
            .iter()
            .map(|b| b.len() as f64)
            .sum::<f64>()
            / result.bids_per_round.len() as f64;
        let wins = result.ledger.win_counts(s.population.num_clients);
        table.row(vec![
            s.name.clone(),
            format!("{:.1}", result.ledger.social_welfare()),
            format!("{:.3}", spend / s.total_budget),
            if spend <= s.total_budget * 1.05 {
                "yes".into()
            } else {
                "NO".into()
            },
            format!("{avg_bidders:.1}"),
            format!("{avg_winners:.2}"),
            format!("{:.3}", jain_fairness(&wins)),
        ]);
    }

    println!("{}", table.to_markdown());
    println!(
        "expected: feasibility holds in every regime; bursty/diurnal regimes reduce the \
         available bidder pool but LOVM's queue re-times spending to compensate."
    );
}
