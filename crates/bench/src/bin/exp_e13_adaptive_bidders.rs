//! E13 (robustness) — Adaptive strategic bidders: clients that hill-climb
//! their misreport factor on realized utility converge to (near-)truthful
//! reporting under LOVM and the truthful baselines, and drift to maximal
//! overbidding under a pay-as-bid control. Dominant-strategy truthfulness
//! is thereby demonstrated *dynamically*, without assuming rational agents
//! know the mechanism.

use auction::outcome::{AuctionOutcome, Award};
use auction::valuation::Valuation;
use baselines::{BudgetSplitGreedy, MyopicVcg};
use bench::{header, scaled};
use lovm_core::adaptive::{run_adaptive, AdaptiveConfig};
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::mechanism::{Mechanism, RoundInfo};
use metrics::table::Table;
use workload::Scenario;

/// Pay-as-bid control: recruit everyone, pay the report.
struct PayAsBid(Valuation);

impl Mechanism for PayAsBid {
    fn name(&self) -> String {
        "PayAsBid (control)".into()
    }
    fn select(&mut self, _info: &RoundInfo, bids: &[auction::bid::Bid]) -> AuctionOutcome {
        let awards = bids
            .iter()
            .map(|b| Award {
                bidder: b.bidder,
                cost: b.cost,
                value: self.0.client_value(b),
                payment: b.cost,
            })
            .collect();
        AuctionOutcome::new(awards, 0.0)
    }
    fn reset(&mut self) {}
}

fn main() {
    let scenario = Scenario::standard();
    let seed = 53;
    header(
        "E13",
        "adaptive bidders: mean |ln(report/true)| over learning epochs (→ 0 = truth)",
        &scenario,
        seed,
    );
    let epochs = scaled(60);
    let config = AdaptiveConfig::default();
    println!(
        "epochs {epochs} x {} rounds; exploration step {}, p={}\n",
        config.epoch_len, config.step, config.explore_prob
    );
    let valuation = scenario.valuation;

    let mut mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(Lovm::new(LovmConfig::for_scenario(&scenario, 50.0))),
        Box::new(MyopicVcg::new(valuation, None)),
        Box::new(BudgetSplitGreedy::new(valuation, None)),
        Box::new(PayAsBid(valuation)),
    ];

    let sample_epochs: Vec<usize> = (1..=6).map(|i| epochs * i / 6).collect();
    let mut headers = vec!["dishonesty @epoch".to_string()];
    headers.extend(sample_epochs.iter().map(|e| e.to_string()));
    let mut table = Table::new(headers);
    let mut summary = Table::new(vec![
        "mechanism".into(),
        "final dishonesty".into(),
        "factors > 1.5".into(),
        "platform spend".into(),
    ]);

    for mech in &mut mechanisms {
        let result = run_adaptive(mech.as_mut(), &scenario, &config, epochs, seed);
        let mut cells = vec![result.mechanism.clone()];
        for &e in &sample_epochs {
            cells.push(format!("{:.3}", result.dishonesty[e - 1]));
        }
        table.row(cells);
        let inflated = result.final_factors.iter().filter(|&&f| f > 1.5).count();
        summary.row(vec![
            result.mechanism.clone(),
            format!("{:.3}", result.final_dishonesty()),
            format!("{inflated}/{}", result.final_factors.len()),
            format!("{:.1}", result.ledger.total_payment()),
        ]);
    }

    println!("{}", table.to_markdown());
    println!("{}", summary.to_markdown());
    println!(
        "expected: truthful mechanisms hold dishonesty at the exploration-noise floor; \
         the pay-as-bid control climbs as learners discover overbidding (its spend \
         inflates correspondingly)."
    );
}
