//! E3 — The `[O(1/V), O(V)]` tradeoff: sweeping the Lyapunov weight `V`
//! trades welfare (improves like `O(1/V)` toward the optimum) against
//! queue backlog / convergence transient (grows like `O(V)`).

use bench::{header, scale_scenario};
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::offline::{competitive_ratio, offline_benchmark};
use lovm_core::simulation::simulate;
use lyapunov::analysis::welfare_gap_bound;
use metrics::table::Table;
use workload::Scenario;

fn main() {
    let scenario = scale_scenario(Scenario::standard());
    let seed = 3;
    header(
        "E3",
        "welfare and backlog vs V (the O(1/V)/O(V) tradeoff)",
        &scenario,
        seed,
    );

    let mut table = Table::new(vec![
        "V".into(),
        "welfare".into(),
        "ratio to oracle".into(),
        "peak backlog".into(),
        "final avg spend".into(),
        "welfare gap bound ~ B/V".into(),
    ]);

    // One oracle per bid stream; the stream differs per V only through
    // energy (none here) so compute it from the first run.
    let mut oracle = None;
    // An arbitrary-but-fixed Lyapunov constant for the bound column: the
    // point is the 1/V *shape*, quoted in the same units across rows.
    let b_const = 200.0;

    for v in [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0] {
        let mut mech = Lovm::new(LovmConfig::for_scenario(&scenario, v));
        let result = simulate(&mut mech, &scenario, seed);
        if oracle.is_none() {
            oracle = Some(offline_benchmark(
                &result.bids_per_round,
                &scenario.valuation,
                scenario.total_budget,
            ));
        }
        let oracle = oracle.as_ref().unwrap();
        let welfare = result.ledger.social_welfare();
        let backlog = result.series.get("backlog").unwrap();
        let peak = backlog.iter().cloned().fold(0.0, f64::max);
        table.row(vec![
            format!("{v}"),
            format!("{welfare:.1}"),
            format!("{:.3}", competitive_ratio(welfare, oracle)),
            format!("{peak:.1}"),
            format!("{:.3}", result.average_spend().last().unwrap()),
            format!("{:.2}", welfare_gap_bound(b_const, v)),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "expected shape: ratio increases (saturating) in V; peak backlog grows ~linearly in V."
    );
}
