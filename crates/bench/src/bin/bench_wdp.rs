//! Winner-determination solver microbenchmarks (supports E7's latency
//! table): exact top-K vs greedy density vs knapsack DP across instance
//! sizes.

use auction::wdp::{solve, SolverKind, WdpInstance, WdpItem};
use bench::harness::Bencher;
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};
use std::hint::black_box;

fn instance(n: usize, seed: u64) -> WdpInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<WdpItem> = (0..n)
        .map(|bidder| WdpItem {
            bidder,
            weight: rng.random_range(-1.0..10.0),
            cost: rng.random_range(0.1..3.0),
        })
        .collect();
    WdpInstance::new(items)
}

fn main() {
    let mut topk = Bencher::new("wdp_topk_exact");
    for n in [100usize, 1000, 10000] {
        let inst = instance(n, 1).with_max_winners(20);
        topk.bench(&n.to_string(), || {
            solve(black_box(&inst), SolverKind::Exact)
        });
    }

    let mut greedy = Bencher::new("wdp_greedy_density");
    for n in [100usize, 1000, 10000] {
        let inst = instance(n, 2)
            .with_budget(n as f64 * 0.2)
            .with_max_winners(20);
        greedy.bench(&n.to_string(), || {
            solve(black_box(&inst), SolverKind::GreedyDensity)
        });
    }

    let mut knapsack = Bencher::new("wdp_knapsack_dp");
    for n in [50usize, 200, 1000] {
        let inst = instance(n, 3).with_budget(n as f64 * 0.2);
        knapsack.bench(&n.to_string(), || {
            solve(black_box(&inst), SolverKind::Knapsack { grid: 800 })
        });
    }
}
