//! Payment-rule microbenchmarks: one full VCG round (allocation + Clarke
//! pivots) vs critical-value bisection payments.

use auction::bid::Bid;
use auction::critical::critical_value;
use auction::valuation::Valuation;
use auction::vcg::{VcgAuction, VcgConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bids(n: usize, seed: u64) -> Vec<Bid> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Bid::new(
                i,
                rng.random_range(0.2..3.0),
                rng.random_range(50..500),
                rng.random_range(0.5..1.0),
            )
        })
        .collect()
}

fn bench_vcg_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("vcg_full_round");
    let valuation = Valuation::default();
    for n in [100usize, 1000, 10000] {
        let all = bids(n, 1);
        let auction = VcgAuction::new(VcgConfig {
            value_weight: 50.0,
            cost_weight: 5.0,
            max_winners: Some(20),
            reserve_price: None,
        });
        group.bench_with_input(BenchmarkId::from_parameter(n), &all, |b, all| {
            b.iter(|| auction.run(black_box(all), &valuation))
        });
    }
    group.finish();
}

fn bench_critical_value(c: &mut Criterion) {
    let mut group = c.benchmark_group("critical_value_bisection");
    let valuation = Valuation::default();
    for n in [50usize, 200] {
        let all = bids(n, 2);
        // Monotone rule: top-10 by value/cost density.
        let wins = move |bs: &[Bid]| -> bool {
            let mut order: Vec<usize> = (0..bs.len()).collect();
            order.sort_by(|&a, &b| {
                let da = valuation.client_value(&bs[a]) / bs[a].cost.max(1e-9);
                let db = valuation.client_value(&bs[b]) / bs[b].cost.max(1e-9);
                db.partial_cmp(&da).unwrap()
            });
            order[..10].contains(&0)
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &all, |b, all| {
            b.iter(|| critical_value(black_box(all), 0, 10.0, 1e-6, wins))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vcg_round, bench_critical_value);
criterion_main!(benches);
