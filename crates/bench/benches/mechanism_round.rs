//! End-to-end mechanism round benchmarks: the full LOVM round (scoring +
//! exact WDP + Clarke payments + queue update) vs the baselines, at
//! realistic population sizes.

use auction::bid::Bid;
use auction::valuation::Valuation;
use baselines::{BudgetSplitGreedy, FixedPrice, MyopicVcg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lovm_core::lovm::{Lovm, LovmConfig};
use lovm_core::mechanism::{Mechanism, RoundInfo};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use workload::Scenario;

fn bids(n: usize, seed: u64) -> Vec<Bid> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Bid::new(
                i,
                rng.random_range(0.2..3.0),
                rng.random_range(50..500),
                rng.random_range(0.5..1.0),
            )
        })
        .collect()
}

fn info(n: usize) -> RoundInfo {
    let s = Scenario::large(n);
    RoundInfo {
        round: 50,
        horizon: s.horizon,
        total_budget: s.total_budget,
        spent_so_far: 40.0 * n as f64 / 100.0,
    }
}

fn bench_lovm_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("lovm_round");
    for n in [100usize, 1000, 10000] {
        let all = bids(n, 1);
        let s = Scenario::large(n);
        let mut mech = Lovm::new(LovmConfig::for_scenario(&s, 50.0).with_max_winners(20));
        let ri = info(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &all, |b, all| {
            b.iter(|| mech.select(black_box(&ri), black_box(all)))
        });
    }
    group.finish();
}

fn bench_baseline_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_round_n200");
    group.sample_size(20);
    let n = 200;
    let all = bids(n, 2);
    let ri = info(n);
    let valuation = Valuation::default();

    let mut myopic = MyopicVcg::new(valuation, None).with_grid(400);
    group.bench_function("myopic_vcg_critical", |b| {
        b.iter(|| myopic.select(black_box(&ri), black_box(&all)))
    });

    let mut greedy = BudgetSplitGreedy::new(valuation, None);
    group.bench_function("budget_split_greedy", |b| {
        b.iter(|| greedy.select(black_box(&ri), black_box(&all)))
    });

    let mut fixed = FixedPrice::new(1.2, valuation, None);
    group.bench_function("fixed_price", |b| {
        b.iter(|| fixed.select(black_box(&ri), black_box(&all)))
    });
    group.finish();
}

criterion_group!(benches, bench_lovm_round, bench_baseline_rounds);
criterion_main!(benches);
