//! Drift-plus-penalty controller microbenchmarks: queue update and weight
//! computation throughput (these sit on the mechanism's per-round critical
//! path).

use criterion::{criterion_group, criterion_main, Criterion};
use lyapunov::dpp::{DppConfig, DriftPlusPenalty};
use lyapunov::queue::VirtualQueue;
use std::hint::black_box;

fn bench_queue_update(c: &mut Criterion) {
    c.bench_function("virtual_queue_update", |b| {
        let mut q = VirtualQueue::new();
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 1.3) % 5.0;
            q.update(black_box(x), black_box(2.0))
        })
    });
}

fn bench_dpp_round(c: &mut Criterion) {
    c.bench_function("dpp_weights_plus_observe", |b| {
        let mut ctl = DriftPlusPenalty::new(DppConfig {
            v: 50.0,
            budget_per_round: 2.0,
            min_cost_weight: 1.0,
        });
        let mut x = 0.0f64;
        b.iter(|| {
            let w = ctl.weights();
            x = (x + 0.7) % 4.0;
            ctl.observe_spend(black_box(x));
            black_box(w)
        })
    });
}

criterion_group!(benches, bench_queue_update, bench_dpp_round);
criterion_main!(benches);
