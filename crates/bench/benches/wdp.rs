//! Winner-determination solver microbenchmarks (supports E7's latency
//! table): exact top-K vs greedy density vs knapsack DP across instance
//! sizes.

use auction::wdp::{solve, SolverKind, WdpInstance, WdpItem};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn instance(n: usize, seed: u64) -> WdpInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<WdpItem> = (0..n)
        .map(|bidder| WdpItem {
            bidder,
            weight: rng.random_range(-1.0..10.0),
            cost: rng.random_range(0.1..3.0),
        })
        .collect();
    WdpInstance::new(items)
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("wdp_topk_exact");
    for n in [100usize, 1000, 10000] {
        let inst = instance(n, 1).with_max_winners(20);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| solve(black_box(inst), SolverKind::Exact))
        });
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("wdp_greedy_density");
    for n in [100usize, 1000, 10000] {
        let inst = instance(n, 2).with_budget(n as f64 * 0.2).with_max_winners(20);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| solve(black_box(inst), SolverKind::GreedyDensity))
        });
    }
    group.finish();
}

fn bench_knapsack(c: &mut Criterion) {
    let mut group = c.benchmark_group("wdp_knapsack_dp");
    group.sample_size(20);
    for n in [50usize, 200, 1000] {
        let inst = instance(n, 3).with_budget(n as f64 * 0.2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| solve(black_box(inst), SolverKind::Knapsack { grid: 800 }))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk, bench_greedy, bench_knapsack);
criterion_main!(benches);
