//! Golden-output regression suite: every `exp_e*` binary's stdout, pinned.
//!
//! Each test runs one experiment binary at `LOVM_SCALE=0.1` /
//! `LOVM_THREADS=1`, normalizes away wall-clock noise
//! (see `bench::golden::normalize`), and diffs the result against the
//! checked-in snapshot under `tests/golden/` at the repo root. Any change
//! to selection, payments, queue dynamics, training, or table layout shows
//! up as a failing diff here before it can silently drift.
//!
//! Re-record intentionally changed outputs with:
//!
//! ```sh
//! LOVM_BLESS=1 cargo test -p bench --test golden_experiments
//! ```
//!
//! The determinism contract (`crates/par`, `tests/determinism.rs`) makes
//! these snapshots valid at any `LOVM_THREADS`; `scripts/ci.sh` runs the
//! suite under both 1 and 4 workers to hold that line.

use bench::golden::{assert_golden, normalize};
use std::process::Command;

fn run_and_check(exe: &str, name: &str) {
    // Snapshots are thread-count invariant (determinism contract), so an
    // ambient LOVM_THREADS — e.g. the ci.sh 4-worker pass — is honored;
    // otherwise pin to fully serial.
    let threads = std::env::var("LOVM_THREADS").unwrap_or_else(|_| "1".to_string());
    let out = Command::new(exe)
        .env("LOVM_SCALE", "0.1")
        .env("LOVM_THREADS", threads)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {exe}: {e}"));
    assert!(
        out.status.success(),
        "{name} exited with {:?}; stderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout)
        .unwrap_or_else(|e| panic!("{name} produced non-UTF8 stdout: {e}"));
    assert_golden(name, &normalize(&stdout));
}

macro_rules! golden {
    ($test:ident, $bin:ident, $name:literal) => {
        #[test]
        fn $test() {
            run_and_check(env!(concat!("CARGO_BIN_EXE_", stringify!($bin))), $name);
        }
    };
}

golden!(e1_welfare, exp_e1_welfare, "e1_welfare");
golden!(e2_budget, exp_e2_budget, "e2_budget");
golden!(e3_v_tradeoff, exp_e3_v_tradeoff, "e3_v_tradeoff");
golden!(e4_truthfulness, exp_e4_truthfulness, "e4_truthfulness");
golden!(e5_ir, exp_e5_ir, "e5_ir");
golden!(e6_accuracy, exp_e6_accuracy, "e6_accuracy");
golden!(e7_scalability, exp_e7_scalability, "e7_scalability");
golden!(e8_budget_sweep, exp_e8_budget_sweep, "e8_budget_sweep");
golden!(e9_fairness, exp_e9_fairness, "e9_fairness");
golden!(e10_ablation, exp_e10_ablation, "e10_ablation");
golden!(e11_energy, exp_e11_energy, "e11_energy");
golden!(
    e12_multi_constraint,
    exp_e12_multi_constraint,
    "e12_multi_constraint"
);
golden!(
    e13_adaptive_bidders,
    exp_e13_adaptive_bidders,
    "e13_adaptive_bidders"
);
// e14 pins its shard counts in code, so its snapshot is shard-count
// invariant on top of the usual thread-count invariance.
golden!(e14_sharding, exp_e14_sharding, "e14_sharding");
// e15 pins its ingestion knobs in code (not LOVM_DEADLINE etc.) and runs
// on the deterministic virtual-time driver, so its snapshot is invariant
// across worker and shard counts with no masked columns at all.
golden!(e15_streaming, exp_e15_streaming, "e15_streaming");
// e16 pins every topology per cell in code and replays seeded traces
// through the deterministic ingest path, so its snapshot — regret tables
// included — is byte-identical at any shard or worker count; the binary
// itself exits nonzero if any regret cell breaks the truthfulness gate.
golden!(e16_adversary, exp_e16_adversary, "e16_adversary");
