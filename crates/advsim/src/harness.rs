//! The paired-counterfactual replay harness.
//!
//! Each experiment *cell* fixes a trace (workload × seed), a market
//! topology, and an ingestion policy, then replays the trace twice
//! through the identical ingest → seal → VCG path: once with the focal
//! client(s) driven by a [`Strategy`], once with everyone truthful. Both
//! replays share every byte of configuration and every seed, so the only
//! difference between them is the focal deviation — the comparison is a
//! *paired counterfactual*, not two noisy samples.
//!
//! **Regret** is `u_truthful − u_strategy`, where both utilities are
//! quasi-linear in the focal client's *true* cost
//! ([`auction::properties::utility`] against [`Trace::true_cost`]).
//! Positive regret means the deviation lost money relative to honest
//! play; the paper's truthfulness theorem predicts regret ≥ 0 for every
//! unilateral deviation, and exactly 0 for [`Strategy::Truthful`]
//! (bit-identical paired runs). That prediction is what
//! [`gate`] checks and `scripts/ci.sh` enforces.
//!
//! **Focal selection** is deterministic: the median-true-cost bidder (a
//! client that genuinely competes — the cheapest bidder nearly always
//! wins and the dearest nearly always loses, both of which flatten every
//! strategy into a no-op). A [`Strategy::ColludingPair`] adds the
//! same-shard bidder with the closest true cost, so the pair actually
//! co-resides in one shard under `Sharded{k}` topologies.

use crate::strategy::Strategy;
use crate::trace::Trace;
use auction::properties::utility;
use auction::shard::{shard_of, MarketTopology, SHARD_SEED};
use ingest::{IngestConfig, RoundCollector};
use lovm_core::{Lovm, LovmConfig};
use metrics::table::Table;

/// One (strategy × workload × topology × late-policy) experiment cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Human-readable workload label (e.g. `steady`, `late-rush`).
    pub workload: String,
    /// Human-readable ingestion-policy label (e.g. `drop@0.75`).
    pub policy: String,
    /// Market topology for the VCG rounds.
    pub topology: MarketTopology,
    /// Ingestion configuration the trace replays through.
    pub ingest: IngestConfig,
}

/// Aggregates of one replay (one arm of a cell).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Replay {
    focal_utility: f64,
    focal_wins: usize,
    focal_sealed: usize,
    focal_offered: usize,
    total_payment: f64,
}

/// The paired result of running one strategy through one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Strategy label ([`Strategy::label`]).
    pub strategy: String,
    /// Workload label from the [`Cell`].
    pub workload: String,
    /// Topology label (`mono` or `shard:k`).
    pub topology: String,
    /// Ingestion-policy label from the [`Cell`].
    pub policy: String,
    /// Focal bidder ids (one, or two for a colluding pair).
    pub focal: Vec<usize>,
    /// Focal utility (true-cost quasi-linear) under the strategy.
    pub utility: f64,
    /// Focal utility in the truthful counterfactual.
    pub truthful_utility: f64,
    /// `truthful_utility − utility`: what deviating cost the focal client.
    pub regret: f64,
    /// Focal round wins under the strategy / truthfully.
    pub wins: usize,
    /// Focal round wins in the truthful counterfactual.
    pub truthful_wins: usize,
    /// Focal bids that reached a sealed round under the strategy.
    pub sealed: usize,
    /// Focal arrivals offered to ingestion under the strategy.
    pub offered: usize,
    /// Market-wide payment total under the strategy.
    pub total_payment: f64,
    /// Market-wide payment delta vs the truthful counterfactual.
    pub payment_delta: f64,
}

impl CellReport {
    /// Focal admission rate under the strategy (sealed / offered; 1.0 for
    /// an empty denominator, e.g. a churner that withheld everything).
    pub fn admission_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.sealed as f64 / self.offered as f64
        }
    }
}

/// A topology's stable table label.
pub fn topology_label(topology: MarketTopology) -> String {
    match topology {
        MarketTopology::Monolithic => "mono".into(),
        MarketTopology::Sharded { count } => format!("shard:{count}"),
    }
}

/// The deterministic focal client: the bidder whose true cost is the
/// median of the population (ties broken toward the lower id by the sort).
///
/// # Panics
///
/// Panics on an empty trace.
pub fn pick_focal(trace: &Trace) -> usize {
    let mut by_cost: Vec<(f64, usize)> = trace
        .bidders()
        .into_iter()
        .map(|b| (trace.true_cost(b), b))
        .collect();
    assert!(
        !by_cost.is_empty(),
        "cannot pick a focal client from an empty trace"
    );
    by_cost.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
    by_cost[by_cost.len() / 2].1
}

/// The focal client's colluding partner: among bidders sharing its shard
/// under `topology` (everyone, when monolithic), the one with the closest
/// true cost — the most natural co-conspirator, since close costs compete
/// for the same marginal slot.
///
/// # Panics
///
/// Panics if the focal client has no shard-mate (population of one).
pub fn pick_partner(trace: &Trace, focal: usize, topology: MarketTopology) -> usize {
    let bidders = trace.bidders();
    let shards = topology.effective_shards(bidders.len());
    let home = shard_of(focal, shards, SHARD_SEED);
    let focal_cost = trace.true_cost(focal);
    bidders
        .into_iter()
        .filter(|&b| b != focal && shard_of(b, shards, SHARD_SEED) == home)
        .min_by(|&a, &b| {
            let da = (trace.true_cost(a) - focal_cost).abs();
            let db = (trace.true_cost(b) - focal_cost).abs();
            da.partial_cmp(&db).expect("finite costs").then(a.cmp(&b))
        })
        .expect("focal client has no shard-mate to collude with")
}

/// Replays `arrivals` through ingest → seal → VCG for `rounds` rounds,
/// mirroring the virtual-time driver loop: offer everything with
/// `at ≤ seal_time(round)`, then seal. Utilities and wins are charged to
/// the focal set at *true* costs from `trace`.
fn replay(
    trace: &Trace,
    arrivals: &[workload::arrivals::TimedBid],
    focal: &[usize],
    cell: &Cell,
    lovm_config: LovmConfig,
    rounds: usize,
    pool: par::Pool,
) -> Replay {
    let mut collector = RoundCollector::new(&cell.ingest);
    let mut lovm = Lovm::new(lovm_config.with_topology(cell.topology));
    let mut run = Replay {
        focal_utility: 0.0,
        focal_wins: 0,
        focal_sealed: 0,
        focal_offered: arrivals
            .iter()
            .filter(|tb| focal.contains(&tb.bid.bidder))
            .count(),
        total_payment: 0.0,
    };
    let mut i = 0usize;
    for round in 0..rounds {
        let seal = collector.schedule().seal_time(round);
        while i < arrivals.len() && arrivals[i].at <= seal {
            collector.offer(arrivals[i]);
            i += 1;
        }
        let collected = collector.seal_next();
        run.focal_sealed += collected
            .sealed
            .bids()
            .iter()
            .filter(|b| focal.contains(&b.bidder))
            .count();
        let outcome = lovm.round_on(collected.sealed.bids(), pool);
        for &f in focal {
            run.focal_utility += utility(&outcome, f, trace.true_cost(f));
            if outcome.is_winner(f) {
                run.focal_wins += 1;
            }
        }
        run.total_payment += outcome.total_payment();
    }
    run
}

/// Runs one strategy through one cell: the strategy arm and its truthful
/// counterfactual (same trace, same seeds, same configuration), paired
/// into a [`CellReport`].
pub fn run_cell(
    trace: &Trace,
    strategy: &Strategy,
    cell: &Cell,
    lovm_config: LovmConfig,
    seed: u64,
    pool: par::Pool,
) -> CellReport {
    let focal_one = pick_focal(trace);
    let focal: Vec<usize> = if strategy.is_pair() {
        let partner = pick_partner(trace, focal_one, cell.topology);
        vec![focal_one, partner]
    } else {
        vec![focal_one]
    };
    let schedule = RoundCollector::new(&cell.ingest).schedule();
    let rounds = trace.rounds();
    let deviant = strategy.apply(trace.arrivals(), &focal, &schedule, seed);
    let arm = replay(trace, &deviant, &focal, cell, lovm_config, rounds, pool);
    let base = replay(
        trace,
        trace.arrivals(),
        &focal,
        cell,
        lovm_config,
        rounds,
        pool,
    );
    CellReport {
        strategy: strategy.label(),
        workload: cell.workload.clone(),
        topology: topology_label(cell.topology),
        policy: cell.policy.clone(),
        focal,
        utility: arm.focal_utility,
        truthful_utility: base.focal_utility,
        regret: base.focal_utility - arm.focal_utility,
        wins: arm.focal_wins,
        truthful_wins: base.focal_wins,
        sealed: arm.focal_sealed,
        offered: arm.focal_offered,
        total_payment: arm.total_payment,
        payment_delta: arm.total_payment - base.total_payment,
    }
}

/// Renders cell reports as the canonical regret table.
pub fn regret_table(reports: &[CellReport]) -> Table {
    let mut table = Table::new(vec![
        "strategy".into(),
        "workload".into(),
        "topology".into(),
        "policy".into(),
        "regret".into(),
        "utility".into(),
        "wins".into(),
        "admit%".into(),
        "pay_delta".into(),
    ]);
    for r in reports {
        table.row(vec![
            r.strategy.clone(),
            r.workload.clone(),
            r.topology.clone(),
            r.policy.clone(),
            format!("{:+.6}", r.regret),
            format!("{:.6}", r.utility),
            format!("{}/{}", r.wins, r.truthful_wins),
            format!("{:.1}", 100.0 * r.admission_rate()),
            format!("{:+.6}", r.payment_delta),
        ]);
    }
    table
}

/// The headline truthfulness gate: every truthful cell's regret must be
/// ≥ −eps (it is bitwise 0 by construction — a violation means the paired
/// replay lost determinism), and every *adversarial* cell's regret must
/// be ≥ −eps (a profitable deviation falsifies the mechanism's
/// truthfulness on the full pipeline).
///
/// Returns `Err` with a human-readable list of violating cells.
pub fn gate(reports: &[CellReport], eps: f64) -> Result<(), String> {
    let violations: Vec<String> = reports
        .iter()
        .filter(|r| r.regret < -eps)
        .map(|r| {
            format!(
                "{} × {} × {} × {}: regret {:+.9}",
                r.strategy, r.workload, r.topology, r.policy, r.regret
            )
        })
        .collect();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "truthfulness gate: {} cell(s) with regret < -{eps}:\n  {}",
            violations.len(),
            violations.join("\n  ")
        ))
    }
}

/// Single-round regret of a cost-misreport strategy against an arbitrary
/// one-shot mechanism: `u_truthful − u_strategy` at the focal bidder's
/// true cost. Timing strategies are identity here (a one-shot mechanism
/// sees the full bid vector); `Churner` withholds per its seeded draw.
/// Used by the mechanism matrix to check `CostShader` regret against a
/// brute-force oracle.
pub fn single_round_regret(
    bids: &[auction::Bid],
    focal: usize,
    strategy: &Strategy,
    seed: u64,
    mechanism: impl Fn(&[auction::Bid]) -> auction::AuctionOutcome,
) -> f64 {
    let schedule = ingest::RoundSchedule::new(1.0, 0.75, 0.0);
    let arrivals: Vec<workload::arrivals::TimedBid> = bids
        .iter()
        .map(|b| workload::arrivals::TimedBid { at: 0.1, bid: *b })
        .collect();
    let true_cost = bids
        .iter()
        .find(|b| b.bidder == focal)
        .expect("focal bidder present")
        .cost;
    let deviant: Vec<auction::Bid> = strategy
        .apply(&arrivals, &[focal], &schedule, seed)
        .into_iter()
        .map(|tb| tb.bid)
        .collect();
    let u_truthful = utility(&mechanism(bids), focal, true_cost);
    let u_strategy = utility(&mechanism(&deviant), focal, true_cost);
    u_truthful - u_strategy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceWorkload;
    use ingest::LateBidPolicy;

    fn cell(topology: MarketTopology) -> Cell {
        Cell {
            workload: "steady".into(),
            policy: "drop@0.75".into(),
            topology,
            ingest: IngestConfig {
                deadline: 0.75,
                late_policy: LateBidPolicy::Drop,
                ..IngestConfig::default()
            },
        }
    }

    fn lovm_config() -> LovmConfig {
        LovmConfig {
            v: 10.0,
            budget_per_round: 40.0,
            max_winners: Some(8),
            topology: MarketTopology::Monolithic,
            ..LovmConfig::default()
        }
    }

    #[test]
    fn focal_is_the_median_cost_bidder() {
        let trace = Trace::seeded(TraceWorkload::Steady, 9, 2, 11);
        let focal = pick_focal(&trace);
        let mut costs: Vec<f64> = trace
            .bidders()
            .iter()
            .map(|&b| trace.true_cost(b))
            .collect();
        costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(trace.true_cost(focal), costs[4]);
    }

    #[test]
    fn partner_shares_the_focal_shard() {
        let trace = Trace::seeded(TraceWorkload::Steady, 24, 2, 11);
        let topology = MarketTopology::Sharded { count: 8 };
        let focal = pick_focal(&trace);
        let partner = pick_partner(&trace, focal, topology);
        assert_ne!(partner, focal);
        let shards = topology.effective_shards(24);
        assert_eq!(
            shard_of(focal, shards, SHARD_SEED),
            shard_of(partner, shards, SHARD_SEED)
        );
    }

    #[test]
    fn truthful_cell_has_bitwise_zero_regret() {
        let trace = Trace::seeded(TraceWorkload::Steady, 12, 6, 3);
        let report = run_cell(
            &trace,
            &Strategy::Truthful,
            &cell(MarketTopology::Monolithic),
            lovm_config(),
            3,
            par::Pool::serial(),
        );
        assert_eq!(report.regret, 0.0, "paired truthful runs must be identical");
        assert_eq!(report.wins, report.truthful_wins);
        assert_eq!(report.payment_delta, 0.0);
    }

    #[test]
    fn reports_are_pool_invariant() {
        let trace = Trace::seeded(TraceWorkload::LateRush, 12, 6, 5);
        let c = cell(MarketTopology::Sharded { count: 8 });
        let s = Strategy::CostShader { factor: 0.5 };
        let serial = run_cell(&trace, &s, &c, lovm_config(), 5, par::Pool::serial());
        let pooled = run_cell(&trace, &s, &c, lovm_config(), 5, par::Pool::with_threads(4));
        assert_eq!(serial, pooled, "worker pool must not change any bit");
    }

    #[test]
    fn gate_flags_negative_regret_cells() {
        let trace = Trace::seeded(TraceWorkload::Steady, 12, 4, 3);
        let mut report = run_cell(
            &trace,
            &Strategy::Truthful,
            &cell(MarketTopology::Monolithic),
            lovm_config(),
            3,
            par::Pool::serial(),
        );
        assert!(gate(&[report.clone()], 1e-9).is_ok());
        report.regret = -1e-6;
        let err = gate(&[report], 1e-9).unwrap_err();
        assert!(err.contains("truthful"), "{err}");
        assert!(err.contains("regret"), "{err}");
    }

    #[test]
    fn single_round_overbid_regret_is_non_negative() {
        // An always-winning focal bidder's payment is report-invariant
        // while it keeps winning, and overbidding out of the winner set
        // forfeits positive rent — either way regret ≥ 0.
        let bids = vec![
            auction::Bid::new(0, 1.0, 100, 0.9),
            auction::Bid::new(1, 1.2, 120, 0.8),
            auction::Bid::new(2, 2.0, 90, 0.7),
            auction::Bid::new(3, 2.5, 60, 0.95),
        ];
        let mechanism = |profile: &[auction::Bid]| {
            let mut lovm = Lovm::new(lovm_config());
            lovm.round_on(profile, par::Pool::serial())
        };
        for factor in [1.5, 2.0, 4.0] {
            let r = single_round_regret(&bids, 1, &Strategy::OverBidder { factor }, 0, mechanism);
            assert!(r >= -1e-9, "overbid {factor} produced regret {r}");
        }
    }
}
