//! Strategic-adversary simulator: the truthfulness theorem as a standing
//! empirical gate.
//!
//! The paper's central guarantee is incentive compatibility: no client
//! can gain by misreporting its cost or gaming its submission timing.
//! The property tests in `auction::properties` pin this for isolated VCG
//! rounds; this crate pins it for the *whole pipeline* — arrivals flow
//! through the real ingest → seal → VCG/sharded path while one focal
//! client is driven by a pluggable [`Strategy`] agent, and its realized
//! utility is compared against the paired counterfactual where the same
//! client played truthfully on the same seed.
//!
//! Three layers:
//!
//! * [`trace`] — recorded (`at,bidder,cost,data,quality` CSV) or seeded
//!   arrival streams carrying every bidder's *true* private cost;
//! * [`strategy`] — the adversary catalog: cost shading, overbidding,
//!   deadline sniping, churn, and pairwise collusion;
//! * [`harness`] — paired-counterfactual cell replays, regret tables,
//!   and the CI [`gate`] (`truthful regret ≥ −ε` in every cell).
//!
//! Consumed by the `exp_e16_adversary` experiment binary (golden-pinned)
//! and the `lovm attack` CLI subcommand.

pub mod harness;
pub mod strategy;
pub mod trace;

pub use harness::{
    gate, pick_focal, pick_partner, regret_table, run_cell, single_round_regret, topology_label,
    Cell, CellReport,
};
pub use strategy::{catalog, Strategy};
pub use trace::{Trace, TraceError, TraceWorkload, CSV_HEADER};
