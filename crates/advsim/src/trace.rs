//! Bid traces: the arrival streams the adversary harness replays.
//!
//! A [`Trace`] is a time-sorted list of [`TimedBid`] arrivals plus the
//! *true* cost of every bidder in it. Traces come from two places:
//!
//! * [`Trace::seeded`] — a synthetic persistent population: every bidder
//!   submits one bid per round with a constant private cost and a seeded
//!   arrival offset shaped by the [`TraceWorkload`];
//! * [`Trace::from_csv`] — a recorded trace (`lovm attack --trace`), one
//!   `at,bidder,cost,data,quality` row per arrival.
//!
//! The CSV parser rejects malformed rows with an error that names the
//! offending field and line — same contract as
//! `ingest::IngestConfig::from_env_values`: a silently mangled trace is
//! worse than a refusal at the door. In particular NaN or negative costs
//! and out-of-order timestamps never reach `auction::Bid`.
//!
//! **True costs.** The trace's costs *are* the true private costs;
//! strategies misreport by rewriting the cost of the focal client's
//! arrivals, while regret accounting always evaluates utilities against
//! [`Trace::true_cost`]. A bidder's true cost is the cost of its first
//! arrival (seeded traces hold it constant per bidder; recorded traces
//! are documented to do the same for any bidder under strategy focus).

use auction::bid::Bid;
use simrng::rngs::StdRng;
use simrng::{derive_seed, RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use workload::arrivals::TimedBid;

/// Salt separating the trace generator's RNG stream from every other
/// consumer of a run seed.
const TRACE_SALT: u64 = 0x0AD5_111A_D000_5EED;

/// Shape of the synthetic arrival offsets within each round span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceWorkload {
    /// Offsets uniform over the whole round span.
    Steady,
    /// Offsets biased toward the end of the span (`1 − u²`): most bids
    /// arrive close to the seal, stressing deadlines and late policies.
    LateRush,
}

impl TraceWorkload {
    /// Stable label used in tables and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            TraceWorkload::Steady => "steady",
            TraceWorkload::LateRush => "late-rush",
        }
    }
}

/// A recorded or seeded arrival stream (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    arrivals: Vec<TimedBid>,
    true_costs: BTreeMap<usize, f64>,
}

/// A named-field trace-parse error: which line, which field, what was
/// wrong. Rendered as `trace line N: field `x` …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number in the CSV input (the header is line 1).
    pub line: usize,
    /// Human-readable description naming the offending field.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// The CSV header every recorded trace must start with.
pub const CSV_HEADER: &str = "at,bidder,cost,data,quality";

impl Trace {
    /// Builds a trace from pre-sorted arrivals.
    ///
    /// # Panics
    ///
    /// Panics if timestamps are not non-decreasing (recorded traces go
    /// through [`Trace::from_csv`], which reports the line instead).
    pub fn new(arrivals: Vec<TimedBid>) -> Self {
        assert!(
            arrivals.windows(2).all(|w| w[0].at <= w[1].at),
            "trace arrivals must be sorted by non-decreasing timestamp"
        );
        let mut true_costs = BTreeMap::new();
        for tb in &arrivals {
            true_costs.entry(tb.bid.bidder).or_insert(tb.bid.cost);
        }
        Trace {
            arrivals,
            true_costs,
        }
    }

    /// A synthetic persistent population: `bidders` clients each submit
    /// one bid per round for `rounds` rounds. Costs (`0.2..3.0`), data
    /// sizes (`50..500`), and qualities (`0.5..1.0`) are drawn once per
    /// bidder and held constant — they are the private types the
    /// mechanism is supposed to elicit truthfully. Arrival offsets are
    /// drawn per `(seed, round)` and shaped by `workload`.
    pub fn seeded(workload: TraceWorkload, bidders: usize, rounds: usize, seed: u64) -> Self {
        assert!(bidders > 0 && rounds > 0, "trace needs bidders and rounds");
        let mut type_rng = StdRng::seed_from_u64(derive_seed(seed ^ TRACE_SALT, 0));
        let types: Vec<Bid> = (0..bidders)
            .map(|b| {
                Bid::new(
                    b,
                    type_rng.random_range(0.2..3.0),
                    type_rng.random_range(50..500usize),
                    type_rng.random_range(0.5..1.0),
                )
            })
            .collect();
        let mut arrivals = Vec::with_capacity(bidders * rounds);
        for round in 0..rounds {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed ^ TRACE_SALT, 1 + round as u64));
            let base = round as f64;
            let below_next = (base + 1.0).next_down();
            let mut batch: Vec<TimedBid> = types
                .iter()
                .map(|bid| {
                    let u = rng.random::<f64>();
                    let offset = match workload {
                        TraceWorkload::Steady => u,
                        TraceWorkload::LateRush => 1.0 - u * u,
                    };
                    TimedBid {
                        at: (base + offset).min(below_next),
                        bid: *bid,
                    }
                })
                .collect();
            batch.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite timestamps"));
            arrivals.extend(batch);
        }
        Trace::new(arrivals)
    }

    /// Parses a recorded `at,bidder,cost,data,quality` CSV trace,
    /// rejecting malformed input with a [`TraceError`] that names the
    /// offending field and line: non-finite or negative costs (NaN
    /// included), qualities outside `[0, 1]`, negative or non-finite
    /// timestamps, and out-of-order timestamps all refuse to parse.
    pub fn from_csv(text: &str) -> Result<Trace, TraceError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| TraceError {
            line: 1,
            message: format!("empty trace; expected header `{CSV_HEADER}`"),
        })?;
        if header.trim() != CSV_HEADER {
            return Err(TraceError {
                line: 1,
                message: format!("header must be `{CSV_HEADER}`, got `{}`", header.trim()),
            });
        }
        let mut arrivals: Vec<TimedBid> = Vec::new();
        let mut last_at = f64::NEG_INFINITY;
        for (idx, raw) in lines {
            let line = idx + 1; // enumerate is 0-based, humans count from 1
            if raw.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = raw.split(',').map(str::trim).collect();
            if fields.len() != 5 {
                return Err(TraceError {
                    line,
                    message: format!("expected 5 fields `{CSV_HEADER}`, got {}", fields.len()),
                });
            }
            let named = |field: &str, raw: &str, why: &str| TraceError {
                line,
                message: format!("field `{field}` must be {why}, got `{raw}`"),
            };
            let at = fields[0]
                .parse::<f64>()
                .ok()
                .filter(|a| a.is_finite() && *a >= 0.0)
                .ok_or_else(|| named("at", fields[0], "a finite timestamp >= 0"))?;
            if at < last_at {
                return Err(TraceError {
                    line,
                    message: format!("field `at` must be non-decreasing, got {at} after {last_at}"),
                });
            }
            last_at = at;
            let bidder = fields[1]
                .parse::<usize>()
                .map_err(|_| named("bidder", fields[1], "a non-negative integer id"))?;
            let cost = fields[2]
                .parse::<f64>()
                .ok()
                .filter(|c| c.is_finite() && *c >= 0.0)
                .ok_or_else(|| named("cost", fields[2], "a finite number >= 0 (NaN rejected)"))?;
            let data = fields[3]
                .parse::<usize>()
                .map_err(|_| named("data", fields[3], "a non-negative integer size"))?;
            let quality = fields[4]
                .parse::<f64>()
                .ok()
                .filter(|q| q.is_finite() && (0.0..=1.0).contains(q))
                .ok_or_else(|| named("quality", fields[4], "a number in [0, 1]"))?;
            arrivals.push(TimedBid {
                at,
                bid: Bid::new(bidder, cost, data, quality),
            });
        }
        Ok(Trace::new(arrivals))
    }

    /// The time-sorted arrivals.
    pub fn arrivals(&self) -> &[TimedBid] {
        &self.arrivals
    }

    /// Number of full round spans the trace covers (ceil of the last
    /// timestamp), i.e. how many rounds a replay should seal.
    pub fn rounds(&self) -> usize {
        self.arrivals
            .last()
            .map_or(0, |tb| tb.at.floor() as usize + 1)
    }

    /// Distinct bidder ids, ascending.
    pub fn bidders(&self) -> Vec<usize> {
        self.true_costs.keys().copied().collect()
    }

    /// The true private cost of `bidder` (its first arrival's cost).
    ///
    /// # Panics
    ///
    /// Panics if the bidder never appears in the trace.
    pub fn true_cost(&self, bidder: usize) -> f64 {
        *self
            .true_costs
            .get(&bidder)
            .unwrap_or_else(|| panic!("bidder {bidder} not in trace"))
    }

    /// Arrivals of one bidder.
    pub fn arrivals_of(&self, bidder: usize) -> usize {
        self.arrivals
            .iter()
            .filter(|tb| tb.bid.bidder == bidder)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_traces_are_deterministic_and_sorted() {
        let a = Trace::seeded(TraceWorkload::Steady, 6, 5, 42);
        let b = Trace::seeded(TraceWorkload::Steady, 6, 5, 42);
        assert_eq!(a, b);
        assert_eq!(a.arrivals().len(), 30);
        assert_eq!(a.rounds(), 5);
        assert!(a.arrivals().windows(2).all(|w| w[0].at <= w[1].at));
        let c = Trace::seeded(TraceWorkload::Steady, 6, 5, 43);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn seeded_costs_are_constant_per_bidder() {
        let t = Trace::seeded(TraceWorkload::LateRush, 4, 8, 7);
        for b in t.bidders() {
            let costs: Vec<f64> = t
                .arrivals()
                .iter()
                .filter(|tb| tb.bid.bidder == b)
                .map(|tb| tb.bid.cost)
                .collect();
            assert_eq!(costs.len(), 8);
            assert!(costs.iter().all(|c| *c == t.true_cost(b)));
        }
    }

    #[test]
    fn late_rush_skews_offsets_late() {
        let steady = Trace::seeded(TraceWorkload::Steady, 20, 20, 3);
        let rush = Trace::seeded(TraceWorkload::LateRush, 20, 20, 3);
        let mean_offset = |t: &Trace| {
            t.arrivals().iter().map(|tb| tb.at.fract()).sum::<f64>() / t.arrivals().len() as f64
        };
        assert!(mean_offset(&rush) > mean_offset(&steady) + 0.1);
    }

    #[test]
    fn csv_round_trips_a_valid_trace() {
        let text = "at,bidder,cost,data,quality\n\
                    0.1,0,1.5,100,0.9\n\
                    0.4,1,2.0,200,0.8\n\
                    \n\
                    1.2,0,1.5,100,0.9\n";
        let t = Trace::from_csv(text).expect("valid trace");
        assert_eq!(t.arrivals().len(), 3);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.bidders(), vec![0, 1]);
        assert_eq!(t.true_cost(1), 2.0);
    }

    /// Satellite contract: NaN/negative costs and out-of-order timestamps
    /// are refused with an error naming the field and line — the style of
    /// `IngestConfig::from_env_values`, but as a `Result` because trace
    /// files are user input, not operator configuration.
    #[test]
    fn csv_rejects_bad_fields_with_named_errors() {
        let parse = |rows: &str| Trace::from_csv(&format!("{CSV_HEADER}\n{rows}")).unwrap_err();

        let e = parse("0.1,0,NaN,100,0.9");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("`cost`"), "{e}");
        assert!(e.to_string().contains("trace line 2"), "{e}");

        let e = parse("0.1,0,-1.0,100,0.9");
        assert!(e.message.contains("`cost`"), "{e}");
        let e = parse("0.1,0,inf,100,0.9");
        assert!(e.message.contains("`cost`"), "{e}");

        let e = parse("0.1,0,1.0,100,0.9\n0.3,1,1.0,100,0.9\n0.2,2,1.0,100,0.9");
        assert_eq!(e.line, 4);
        assert!(e.message.contains("`at`"), "{e}");
        assert!(e.message.contains("non-decreasing"), "{e}");

        let e = parse("-0.5,0,1.0,100,0.9");
        assert!(e.message.contains("`at`"), "{e}");
        let e = parse("0.1,zero,1.0,100,0.9");
        assert!(e.message.contains("`bidder`"), "{e}");
        let e = parse("0.1,0,1.0,many,0.9");
        assert!(e.message.contains("`data`"), "{e}");
        let e = parse("0.1,0,1.0,100,1.5");
        assert!(e.message.contains("`quality`"), "{e}");

        let e = parse("0.1,0,1.0,100");
        assert!(e.message.contains("expected 5 fields"), "{e}");

        let e = Trace::from_csv("when,who,price\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains(CSV_HEADER), "{e}");
        let e = Trace::from_csv("").unwrap_err();
        assert!(e.message.contains("empty trace"), "{e}");
    }
}
