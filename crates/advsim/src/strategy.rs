//! Strategy agents: how a focal client deviates from truthful play.
//!
//! A [`Strategy`] rewrites the focal client's arrivals in a trace —
//! misreported costs, delayed submissions, withheld bids — while every
//! other client stays untouched. The harness (`crate::harness`) then
//! replays both the rewritten trace and the truthful original through the
//! identical pipeline and charges the difference to the strategy.
//!
//! Two modeling rules keep the comparison honest:
//!
//! * **Delay-only timing.** A client can *wait* to submit a bid it has,
//!   but cannot submit before the bid exists. [`Strategy::DeadlineSniper`]
//!   therefore moves arrivals *forward* to `deadline − ε` and never
//!   backward — sniping is procrastination, not time travel.
//! * **Seeded withholding.** [`Strategy::Churner`] draws its drop
//!   decisions from an RNG stream derived per `(seed, round, bidder)`, so
//!   a cell's paired runs and any replay see the same churn pattern.

use ingest::RoundSchedule;
use simrng::rngs::StdRng;
use simrng::{derive_seed, RngExt, SeedableRng};
use workload::arrivals::TimedBid;

/// Salt separating churn decisions from every other RNG consumer.
const CHURN_SALT: u64 = 0xC4C1_2A11_D120_55ED;

/// A pluggable deviation from truthful play (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Submit exactly the trace: the control arm of every cell.
    Truthful,
    /// Report `factor × cost` with `factor ∈ (0, 1)`: understate the
    /// private cost to look cheaper than you are.
    CostShader {
        /// Multiplier applied to the true cost.
        factor: f64,
    },
    /// Report `factor × cost` with `factor > 1`: inflate the cost hoping
    /// the pivot payment inflates with it.
    OverBidder {
        /// Multiplier applied to the true cost.
        factor: f64,
    },
    /// Hold every bid until `deadline − epsilon` into its round span
    /// (fractions of a round; delay-only — an arrival already past that
    /// instant keeps its own timestamp).
    DeadlineSniper {
        /// How far before the deadline the sniped bid lands.
        epsilon: f64,
    },
    /// Withhold each round's bid with probability `p_drop` (seeded).
    Churner {
        /// Per-round probability of not submitting.
        p_drop: f64,
    },
    /// Two shard-mates both shade to `factor × cost`, coordinating to
    /// distort their shard's prices; regret is charged to their *joint*
    /// utility.
    ColludingPair {
        /// Multiplier both colluders apply to their true costs.
        factor: f64,
    },
}

impl Strategy {
    /// Stable label used in tables and the CLI.
    pub fn label(&self) -> String {
        match *self {
            Strategy::Truthful => "truthful".into(),
            Strategy::CostShader { factor } => format!("shade:{factor}"),
            Strategy::OverBidder { factor } => format!("overbid:{factor}"),
            Strategy::DeadlineSniper { epsilon } => format!("snipe:{epsilon}"),
            Strategy::Churner { p_drop } => format!("churn:{p_drop}"),
            Strategy::ColludingPair { factor } => format!("collude:{factor}"),
        }
    }

    /// Whether the strategy controls a pair of clients rather than one.
    pub fn is_pair(&self) -> bool {
        matches!(self, Strategy::ColludingPair { .. })
    }

    /// Validates the strategy's parameters against the round geometry.
    ///
    /// # Panics
    ///
    /// Panics on out-of-domain parameters (a shading factor outside
    /// `(0, 1)`, an overbid factor ≤ 1, a snipe epsilon not inside the
    /// deadline, a drop probability outside `[0, 1]`).
    pub fn validate(&self, schedule: &RoundSchedule) {
        match *self {
            Strategy::Truthful => {}
            Strategy::CostShader { factor } | Strategy::ColludingPair { factor } => assert!(
                factor > 0.0 && factor < 1.0,
                "shading factor must be in (0, 1), got {factor}"
            ),
            Strategy::OverBidder { factor } => assert!(
                factor > 1.0 && factor.is_finite(),
                "overbid factor must be > 1, got {factor}"
            ),
            Strategy::DeadlineSniper { epsilon } => assert!(
                epsilon > 0.0 && epsilon < schedule.deadline(),
                "snipe epsilon must be in (0, deadline {}), got {epsilon}",
                schedule.deadline()
            ),
            Strategy::Churner { p_drop } => assert!(
                (0.0..=1.0).contains(&p_drop),
                "drop probability must be in [0, 1], got {p_drop}"
            ),
        }
    }

    /// Rewrites a trace's arrivals: every arrival of a bidder in `focal`
    /// passes through the strategy, everything else is copied verbatim.
    /// The result is re-sorted by timestamp (stable, so the original
    /// `(time, seq)` tie-break of untouched arrivals is preserved).
    pub fn apply(
        &self,
        arrivals: &[TimedBid],
        focal: &[usize],
        schedule: &RoundSchedule,
        seed: u64,
    ) -> Vec<TimedBid> {
        self.validate(schedule);
        let mut out: Vec<TimedBid> = Vec::with_capacity(arrivals.len());
        for tb in arrivals {
            if !focal.contains(&tb.bid.bidder) {
                out.push(*tb);
                continue;
            }
            match *self {
                Strategy::Truthful => out.push(*tb),
                Strategy::CostShader { factor }
                | Strategy::OverBidder { factor }
                | Strategy::ColludingPair { factor } => out.push(TimedBid {
                    at: tb.at,
                    bid: tb.bid.with_cost(tb.bid.cost * factor),
                }),
                Strategy::DeadlineSniper { epsilon } => {
                    let span = schedule.span_of(tb.at);
                    let snipe =
                        (span as f64 + schedule.deadline() - epsilon) * schedule.round_len();
                    out.push(TimedBid {
                        at: tb.at.max(snipe), // delay-only: never travel back
                        bid: tb.bid,
                    });
                }
                Strategy::Churner { p_drop } => {
                    let span = schedule.span_of(tb.at) as u64;
                    let mut rng = StdRng::seed_from_u64(derive_seed(
                        derive_seed(seed ^ CHURN_SALT, span),
                        tb.bid.bidder as u64,
                    ));
                    if rng.random::<f64>() >= p_drop {
                        out.push(*tb);
                    }
                }
            }
        }
        out.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite timestamps"));
        out
    }
}

/// The standard strategy catalog the experiment harness and the CLI run:
/// one control arm plus five adversaries.
pub fn catalog() -> Vec<Strategy> {
    vec![
        Strategy::Truthful,
        Strategy::CostShader { factor: 0.5 },
        Strategy::OverBidder { factor: 2.0 },
        Strategy::DeadlineSniper { epsilon: 0.05 },
        Strategy::Churner { p_drop: 0.5 },
        Strategy::ColludingPair { factor: 0.6 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::bid::Bid;

    fn schedule() -> RoundSchedule {
        RoundSchedule::new(1.0, 0.75, 0.0)
    }

    fn arrivals() -> Vec<TimedBid> {
        vec![
            TimedBid {
                at: 0.1,
                bid: Bid::new(0, 1.0, 100, 0.9),
            },
            TimedBid {
                at: 0.2,
                bid: Bid::new(1, 2.0, 200, 0.8),
            },
            TimedBid {
                at: 1.3,
                bid: Bid::new(0, 1.0, 100, 0.9),
            },
        ]
    }

    #[test]
    fn truthful_is_identity() {
        let a = arrivals();
        assert_eq!(Strategy::Truthful.apply(&a, &[0], &schedule(), 1), a);
    }

    #[test]
    fn shading_rewrites_only_focal_costs() {
        let out = Strategy::CostShader { factor: 0.5 }.apply(&arrivals(), &[0], &schedule(), 1);
        assert_eq!(out[0].bid.cost, 0.5);
        assert_eq!(out[1].bid.cost, 2.0, "non-focal untouched");
        assert_eq!(out[2].bid.cost, 0.5);
        assert_eq!(out[0].at, 0.1, "timing untouched");
    }

    #[test]
    fn sniper_delays_to_deadline_minus_epsilon_but_never_rewinds() {
        let sched = schedule();
        let out = Strategy::DeadlineSniper { epsilon: 0.05 }.apply(&arrivals(), &[0], &sched, 1);
        // 0.1 → 0.70; the non-focal 0.2 stays, so order changes (re-sorted).
        assert_eq!(out[0].bid.bidder, 1);
        assert!((out[1].at - 0.70).abs() < 1e-12);
        assert!((out[2].at - 1.70).abs() < 1e-12);
        // An arrival already past the snipe instant keeps its timestamp.
        let late = vec![TimedBid {
            at: 0.9,
            bid: Bid::new(0, 1.0, 100, 0.9),
        }];
        let kept = Strategy::DeadlineSniper { epsilon: 0.05 }.apply(&late, &[0], &sched, 1);
        assert_eq!(kept[0].at, 0.9);
    }

    #[test]
    fn churner_is_seeded_and_drops_roughly_p() {
        let many: Vec<TimedBid> = (0..400)
            .map(|r| TimedBid {
                at: r as f64 + 0.5,
                bid: Bid::new(0, 1.0, 100, 0.9),
            })
            .collect();
        let s = Strategy::Churner { p_drop: 0.5 };
        let a = s.apply(&many, &[0], &schedule(), 9);
        let b = s.apply(&many, &[0], &schedule(), 9);
        assert_eq!(a, b, "churn must be seed-deterministic");
        let kept = a.len() as f64 / many.len() as f64;
        assert!((0.35..0.65).contains(&kept), "kept fraction {kept}");
        assert_ne!(
            a,
            s.apply(&many, &[0], &schedule(), 10),
            "different seeds churn differently (with overwhelming probability)"
        );
    }

    #[test]
    fn colluding_pair_shades_both_members() {
        let out =
            Strategy::ColludingPair { factor: 0.6 }.apply(&arrivals(), &[0, 1], &schedule(), 1);
        assert!((out[0].bid.cost - 0.6).abs() < 1e-12);
        assert!((out[1].bid.cost - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "snipe epsilon")]
    fn sniper_epsilon_must_fit_inside_deadline() {
        Strategy::DeadlineSniper { epsilon: 0.9 }.apply(&arrivals(), &[0], &schedule(), 1);
    }

    #[test]
    fn catalog_has_one_control_and_five_adversaries() {
        let c = catalog();
        assert_eq!(c.len(), 6);
        assert_eq!(c[0], Strategy::Truthful);
        assert!(c.iter().skip(1).all(|s| *s != Strategy::Truthful));
    }
}
