//! The mechanism interface shared by LOVM and every baseline.

use auction::bid::Bid;
use auction::outcome::AuctionOutcome;

/// Public per-round information every mechanism may condition on.
///
/// Online mechanisms must not see the future; this struct is the complete
/// observable state at round `round`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundInfo {
    /// Current round, `0 ≤ round < horizon`.
    pub round: usize,
    /// Total number of rounds.
    pub horizon: usize,
    /// Total long-term budget.
    pub total_budget: f64,
    /// Expenditure already committed in previous rounds.
    pub spent_so_far: f64,
}

impl RoundInfo {
    /// Budget rate ρ = total budget / horizon.
    pub fn budget_per_round(&self) -> f64 {
        self.total_budget / self.horizon.max(1) as f64
    }

    /// Budget not yet spent (can be negative if the mechanism overran).
    pub fn remaining_budget(&self) -> f64 {
        self.total_budget - self.spent_so_far
    }

    /// Rounds left including the current one.
    pub fn rounds_remaining(&self) -> usize {
        self.horizon.saturating_sub(self.round)
    }
}

/// An online client-recruitment mechanism.
///
/// Implementations decide winners and payments from the current round's
/// sealed bids and their own internal state. The simulator calls
/// [`Mechanism::select`] once per round, in order, and never reveals future
/// bids.
pub trait Mechanism {
    /// Stable display name used in tables and figures.
    fn name(&self) -> String;

    /// Runs one auction round.
    fn select(&mut self, info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome;

    /// Optional internal-state telemetry (e.g. LOVM's virtual-queue
    /// backlog), recorded by the simulator when present.
    fn backlog(&self) -> Option<f64> {
        None
    }

    /// Resets all internal state so the same instance can run a fresh
    /// simulation.
    fn reset(&mut self);
}

/// Enforces a *hard* total budget around any inner mechanism: once a
/// round's payments would push cumulative expenditure past
/// [`RoundInfo::total_budget`], the round is cancelled (no winners).
///
/// Used by the accuracy experiment (E6) to compare mechanisms under the
/// same hard feasibility rule: budget-agnostic mechanisms burn out early
/// and stop learning, while pacing mechanisms keep recruiting to the end.
#[derive(Debug, Clone)]
pub struct HardBudgetCap<M> {
    inner: M,
    spent: f64,
}

impl<M: Mechanism> HardBudgetCap<M> {
    /// Wraps the inner mechanism.
    pub fn new(inner: M) -> Self {
        HardBudgetCap { inner, spent: 0.0 }
    }

    /// Expenditure committed so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }
}

impl<M: Mechanism> Mechanism for HardBudgetCap<M> {
    fn name(&self) -> String {
        format!("{}+cap", self.inner.name())
    }

    fn select(&mut self, info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome {
        let outcome = self.inner.select(info, bids);
        let payment = outcome.total_payment();
        if self.spent + payment > info.total_budget + 1e-9 {
            // Cancel the round; the inner mechanism has already updated its
            // internal state (e.g. LOVM's queue sees the spend), which is
            // the conservative behaviour.
            return AuctionOutcome::default();
        }
        self.spent += payment;
        outcome
    }

    fn backlog(&self) -> Option<f64> {
        self.inner.backlog()
    }

    fn reset(&mut self) {
        self.spent = 0.0;
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::bid::Bid;
    use auction::outcome::Award;

    /// Test double that always awards one winner at a fixed payment.
    struct FlatPay(f64);
    impl Mechanism for FlatPay {
        fn name(&self) -> String {
            "FlatPay".into()
        }
        fn select(&mut self, _info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome {
            if bids.is_empty() {
                return AuctionOutcome::default();
            }
            AuctionOutcome::new(
                vec![Award {
                    bidder: bids[0].bidder,
                    cost: bids[0].cost,
                    value: 1.0,
                    payment: self.0,
                }],
                1.0,
            )
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn hard_cap_cancels_rounds_beyond_budget() {
        let mut capped = HardBudgetCap::new(FlatPay(3.0));
        let info = RoundInfo {
            round: 0,
            horizon: 10,
            total_budget: 7.0,
            spent_so_far: 0.0,
        };
        let bids = vec![Bid::new(0, 1.0, 10, 1.0)];
        assert_eq!(capped.select(&info, &bids).winners.len(), 1); // 3
        assert_eq!(capped.select(&info, &bids).winners.len(), 1); // 6
        assert!(capped.select(&info, &bids).winners.is_empty()); // 9 > 7
        assert_eq!(capped.spent(), 6.0);
        capped.reset();
        assert_eq!(capped.spent(), 0.0);
        assert_eq!(capped.name(), "FlatPay+cap");
    }

    #[test]
    fn round_info_derived_quantities() {
        let info = RoundInfo {
            round: 10,
            horizon: 100,
            total_budget: 500.0,
            spent_so_far: 120.0,
        };
        assert!((info.budget_per_round() - 5.0).abs() < 1e-12);
        assert!((info.remaining_budget() - 380.0).abs() < 1e-12);
        assert_eq!(info.rounds_remaining(), 90);
    }

    #[test]
    fn round_info_degenerate() {
        let info = RoundInfo {
            round: 5,
            horizon: 0,
            total_budget: 10.0,
            spent_so_far: 20.0,
        };
        assert_eq!(info.budget_per_round(), 10.0);
        assert_eq!(info.remaining_budget(), -10.0);
        assert_eq!(info.rounds_remaining(), 0);
    }
}
