//! The event-sourced market server behind `lovm serve`.
//!
//! A [`MarketSession`] is one long-lived auction market: bids arrive over
//! time, rounds seal on demand, and *every* state transition — arrival,
//! seal, outcome — is journaled as one JSON line (`crates/journal`)
//! before it is applied. The outcome line is fsynced, making it the
//! commit record: a `SIGKILL` at any instant loses at most the un-sealed
//! round in flight, and [`MarketSession::open`] recovers by truncating
//! the torn tail, optionally fast-forwarding from the latest snapshot,
//! and replaying the remaining events through the *same* code path the
//! live server runs — verifying the recomputed digest against every
//! journaled outcome, so a recovered session is bit-identical to one
//! that never crashed.
//!
//! [`MarketServer`] wraps sessions in a zero-dependency
//! `std::net::TcpListener` accept loop: one thread per connection, each
//! connection a reader-producer feeding a bounded `mpsc` channel into
//! the market loop (the same producer/consumer discipline as
//! `ingest::ThreadedDriver` — a disconnected peer is a graceful stop,
//! never a panic). Many sessions run concurrently, each with its own
//! journal file keyed by the client-chosen session name.
//!
//! Environment: `LOVM_JOURNAL` points the CLI at the journal directory
//! and `LOVM_SNAPSHOT_EVERY` sets the snapshot cadence in sealed rounds
//! (0 disables snapshots; malformed values panic at startup, a silently
//! ignored override being worse than a crash).

use crate::lovm::{Lovm, LovmConfig};
use auction::bid::Bid;
use auction::outcome::AuctionOutcome;
use ingest::stats::IngestStats;
use ingest::{Admission, CollectedRound, IngestConfig, RoundCollector};
use journal::{Digest, JournalEvent, JournalWriter, Snapshot};
use metrics::json::JsonValue;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use workload::arrivals::TimedBid;

/// Environment variable naming the server's journal directory.
pub const JOURNAL_ENV: &str = "LOVM_JOURNAL";

/// Environment variable setting the snapshot cadence in sealed rounds
/// (`LOVM_SNAPSHOT_EVERY=8`; 0 disables snapshots).
pub const SNAPSHOT_EVERY_ENV: &str = "LOVM_SNAPSHOT_EVERY";

/// Snapshot cadence from the environment (default 8).
///
/// # Panics
///
/// Panics with a descriptive message when `LOVM_SNAPSHOT_EVERY` is set
/// to anything but an unsigned round count.
pub fn snapshot_every_from_env() -> usize {
    parse_snapshot_every(std::env::var(SNAPSHOT_EVERY_ENV).ok().as_deref())
}

fn parse_snapshot_every(raw: Option<&str>) -> usize {
    match raw {
        None => 8,
        Some(raw) => raw.trim().parse::<usize>().unwrap_or_else(|_| {
            panic!(
                "{SNAPSHOT_EVERY_ENV} must be a sealed-round count \
                 (0 disables snapshots), got `{raw}`"
            )
        }),
    }
}

/// Journal directory from the environment (default `lovm-journal`).
pub fn journal_dir_from_env() -> PathBuf {
    std::env::var_os(JOURNAL_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("lovm-journal"))
}

/// Configuration of one journaled market session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The append-only journal file.
    pub journal: PathBuf,
    /// Snapshot file (`None` disables snapshots entirely).
    pub snapshot: Option<PathBuf>,
    /// Snapshot every this many sealed rounds (0 disables).
    pub snapshot_every: usize,
    /// Mechanism configuration — must match across restarts for the
    /// replay-equality guarantee to hold (the digest check catches a
    /// mismatch at recovery).
    pub lovm: LovmConfig,
    /// Ingestion configuration — same caveat as `lovm`.
    pub ingest: IngestConfig,
}

impl SessionConfig {
    /// A session journaling to `journal`, with the snapshot beside it
    /// (`<journal>.snapshot`) at the default cadence.
    pub fn new(journal: impl Into<PathBuf>) -> Self {
        let journal = journal.into();
        let mut snapshot = journal.clone().into_os_string();
        snapshot.push(".snapshot");
        SessionConfig {
            journal,
            snapshot: Some(PathBuf::from(snapshot)),
            snapshot_every: 8,
            lovm: LovmConfig::default(),
            ingest: IngestConfig::default(),
        }
    }
}

/// What [`MarketSession::seal`] hands back (and journals).
#[derive(Debug, Clone, PartialEq)]
pub struct SealedOutcome {
    /// Round index just sealed.
    pub round: usize,
    /// Ingestion telemetry of the round.
    pub stats: IngestStats,
    /// The auction outcome.
    pub outcome: AuctionOutcome,
    /// Virtual-queue backlog after the round.
    pub backlog: f64,
    /// Running state digest after the round.
    pub digest: u64,
}

/// One event-sourced market: collector + mechanism + journal (see the
/// module docs for the durability contract).
#[derive(Debug)]
pub struct MarketSession {
    cfg: SessionConfig,
    writer: JournalWriter,
    collector: RoundCollector,
    lovm: Lovm,
    pool: par::Pool,
    digest: Digest,
    welfare: f64,
    spend: f64,
    next_seq: u64,
    rounds_since_snapshot: usize,
    recovered_rounds: usize,
}

fn corrupt(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// A snapshot is usable only when the journal's committed prefix still
/// covers it *and* the event right at its boundary is the outcome whose
/// digest the snapshot recorded. A snapshot ahead of a truncated journal
/// (or from a diverged history) fails this and recovery falls back to a
/// full replay — the snapshot is an accelerator, never the truth.
fn snapshot_covers(snap: &Snapshot, events: &[JournalEvent]) -> bool {
    let n = snap.events as usize;
    if n == 0 || n > events.len() {
        return false;
    }
    matches!(&events[n - 1], JournalEvent::Outcome { digest, .. } if *digest == snap.digest)
}

impl MarketSession {
    /// Opens (or resumes) the session: recovers the journal — truncating
    /// any torn or uncommitted tail — then rebuilds the market state by
    /// snapshot fast-forward plus replay, verifying the recomputed
    /// digest against every replayed outcome line.
    ///
    /// # Errors
    ///
    /// I/O errors, plus `InvalidData` when replay diverges from the
    /// journal (a committed-region corruption or a config mismatch).
    pub fn open(cfg: SessionConfig) -> std::io::Result<MarketSession> {
        cfg.ingest.validate();
        let recovered = journal::recover(&cfg.journal)?;
        let committed = recovered.events.len() as u64;
        let snapshot = match &cfg.snapshot {
            Some(path) => {
                journal::read_snapshot(path)?.filter(|s| snapshot_covers(s, &recovered.events))
            }
            None => None,
        };
        let writer = if cfg.journal.exists() {
            JournalWriter::open_append(&cfg.journal, committed)?
        } else {
            JournalWriter::create(&cfg.journal)?
        };
        let mut lovm = Lovm::new(cfg.lovm);
        let (collector, digest, welfare, spend, next_seq, replay_from) = match &snapshot {
            Some(snap) => {
                lovm.restore_backlog(snap.backlog);
                (
                    RoundCollector::restore(&cfg.ingest, cfg.ingest.capacity, &snap.collector),
                    Digest::resume(snap.digest),
                    snap.welfare,
                    snap.spend,
                    snap.collector.next_seq,
                    snap.events as usize,
                )
            }
            None => (
                RoundCollector::new(&cfg.ingest),
                Digest::new(),
                0.0,
                0.0,
                0,
                0,
            ),
        };
        let mut session = MarketSession {
            cfg,
            writer,
            collector,
            lovm,
            pool: par::Pool::auto(),
            digest,
            welfare,
            spend,
            next_seq,
            rounds_since_snapshot: 0,
            recovered_rounds: 0,
        };
        for ev in &recovered.events[replay_from..] {
            session.replay_event(ev)?;
        }
        session.recovered_rounds = session.collector.next_round();
        Ok(session)
    }

    /// Re-applies one committed journal event through the live code
    /// path, verifying outcomes bitwise via the running digest.
    fn replay_event(&mut self, ev: &JournalEvent) -> std::io::Result<()> {
        match ev {
            JournalEvent::Arrival { seq, at, bid } => {
                self.next_seq = self.next_seq.max(seq + 1);
                self.collector
                    .offer_at(*seq, TimedBid { at: *at, bid: *bid });
            }
            JournalEvent::Seal { round, sealed } => {
                let (collected, _) = self.run_round();
                if collected.sealed.round() != *round
                    || collected.sealed.bids() != sealed.as_slice()
                {
                    return Err(corrupt(format!(
                        "replay diverged at the seal of round {round}: the journal's \
                         sealed set does not match the recomputed one"
                    )));
                }
            }
            JournalEvent::Outcome {
                round,
                backlog,
                digest,
                ..
            } => {
                if self.collector.next_round() != round + 1
                    || self.digest.value() != *digest
                    || self.lovm.queue_backlog().to_bits() != backlog.to_bits()
                {
                    return Err(corrupt(format!(
                        "replay diverged at the outcome of round {round}: recomputed \
                         digest {:016x} vs journaled {digest:016x}",
                        self.digest.value()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Seals the next round and folds everything economic — sealed bids,
    /// awards, welfare, spend, backlog — into the running digest. Shared
    /// verbatim by the live path and replay: that sharing *is* the
    /// recovery guarantee.
    fn run_round(&mut self) -> (CollectedRound, AuctionOutcome) {
        let collected = self.collector.seal_next();
        let outcome = self.lovm.round_on(collected.sealed.bids(), self.pool);
        let backlog = self.lovm.queue_backlog();
        self.digest.fold_usize(collected.sealed.round());
        for b in collected.sealed.bids() {
            self.digest.fold_usize(b.bidder);
            self.digest.fold_f64(b.cost);
            self.digest.fold_usize(b.data_size);
            self.digest.fold_f64(b.quality);
        }
        for a in &outcome.winners {
            self.digest.fold_usize(a.bidder);
            self.digest.fold_f64(a.cost);
            self.digest.fold_f64(a.value);
            self.digest.fold_f64(a.payment);
        }
        self.digest.fold_f64(outcome.virtual_welfare);
        self.digest.fold_f64(outcome.total_payment());
        self.digest.fold_f64(backlog);
        self.welfare += outcome.virtual_welfare;
        self.spend += outcome.total_payment();
        (collected, outcome)
    }

    /// Accepts one bid arrival: journals it (write-ahead, flushed but
    /// not yet durable — the next seal's fsync commits it), then offers
    /// it to the collector under a session-owned sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not finite.
    pub fn offer(&mut self, at: f64, bid: Bid) -> std::io::Result<(u64, Admission)> {
        assert!(at.is_finite(), "arrival time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.writer
            .append(&JournalEvent::Arrival { seq, at, bid })?;
        let admission = self.collector.offer_at(seq, TimedBid { at, bid });
        Ok((seq, admission))
    }

    /// Seals the next round: runs the topology-aware VCG path, journals
    /// the seal and outcome lines, fsyncs (the commit point), and writes
    /// a snapshot if the cadence says so.
    pub fn seal(&mut self) -> std::io::Result<SealedOutcome> {
        let (collected, outcome) = self.run_round();
        let round = collected.sealed.round();
        let backlog = self.lovm.queue_backlog();
        self.writer.append(&JournalEvent::Seal {
            round,
            sealed: collected.sealed.bids().to_vec(),
        })?;
        self.writer.append(&JournalEvent::Outcome {
            round,
            awards: outcome.winners.clone(),
            virtual_welfare: outcome.virtual_welfare,
            spend: outcome.total_payment(),
            backlog,
            digest: self.digest.value(),
        })?;
        self.writer.sync()?;
        self.maybe_snapshot()?;
        Ok(SealedOutcome {
            round,
            stats: collected.stats,
            outcome,
            backlog,
            digest: self.digest.value(),
        })
    }

    fn maybe_snapshot(&mut self) -> std::io::Result<()> {
        let Some(path) = &self.cfg.snapshot else {
            return Ok(());
        };
        if self.cfg.snapshot_every == 0 {
            return Ok(());
        }
        self.rounds_since_snapshot += 1;
        if self.rounds_since_snapshot < self.cfg.snapshot_every {
            return Ok(());
        }
        self.rounds_since_snapshot = 0;
        let snap = Snapshot {
            events: self.writer.events(),
            collector: self.collector.export_state(),
            backlog: self.lovm.queue_backlog(),
            welfare: self.welfare,
            spend: self.spend,
            digest: self.digest.value(),
        };
        journal::write_snapshot(path, &snap)
    }

    /// Rounds sealed so far (including recovered ones).
    pub fn rounds_sealed(&self) -> usize {
        self.collector.next_round()
    }

    /// Rounds the session resumed with at [`MarketSession::open`].
    pub fn recovered_rounds(&self) -> usize {
        self.recovered_rounds
    }

    /// Running state digest (see `journal::Digest`).
    pub fn digest(&self) -> u64 {
        self.digest.value()
    }

    /// Current virtual-queue backlog.
    pub fn backlog(&self) -> f64 {
        self.lovm.queue_backlog()
    }

    /// Cumulative virtual welfare over all sealed rounds.
    pub fn welfare(&self) -> f64 {
        self.welfare
    }

    /// Cumulative payments over all sealed rounds.
    pub fn total_spend(&self) -> f64 {
        self.spend
    }

    /// Committed + appended journal events.
    pub fn journal_events(&self) -> u64 {
        self.writer.events()
    }
}

// ---------------------------------------------------------------------
// The wire protocol: one JSON object per line, both directions.
// ---------------------------------------------------------------------

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
enum Request {
    Hello { session: String },
    Bid { at: f64, bid: Bid },
    Seal,
    State,
    Quit,
}

fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// Parses one request line. Total: hostile input yields `Err`, never a
/// panic — the bid domain is re-validated before `Bid::new`.
fn parse_request(line: &str) -> Result<Request, String> {
    let v = JsonValue::parse(line).map_err(|e| format!("bad json: {}", e.message))?;
    let cmd = v
        .get("cmd")
        .and_then(JsonValue::as_str)
        .ok_or("missing `cmd`")?;
    match cmd {
        "hello" => {
            let session = v
                .get("session")
                .and_then(JsonValue::as_str)
                .ok_or("hello needs a `session` name")?;
            if !valid_session_name(session) {
                return Err(format!(
                    "session name must be 1-64 chars of [A-Za-z0-9_-], got `{session}`"
                ));
            }
            Ok(Request::Hello {
                session: session.to_string(),
            })
        }
        "bid" => {
            let at = v
                .get("at")
                .and_then(JsonValue::as_f64)
                .filter(|t| t.is_finite())
                .ok_or("bid needs a finite `at`")?;
            let bidder = v
                .get("bidder")
                .and_then(JsonValue::as_usize)
                .ok_or("bid needs a `bidder` id")?;
            let cost = v
                .get("cost")
                .and_then(JsonValue::as_f64)
                .filter(|c| c.is_finite() && *c >= 0.0)
                .ok_or("bid needs a non-negative finite `cost`")?;
            let data = v
                .get("data")
                .and_then(JsonValue::as_usize)
                .ok_or("bid needs a `data` size")?;
            let quality = v
                .get("quality")
                .and_then(JsonValue::as_f64)
                .filter(|q| (0.0..=1.0).contains(q))
                .ok_or("bid needs a `quality` in [0, 1]")?;
            Ok(Request::Bid {
                at,
                bid: Bid::new(bidder, cost, data, quality),
            })
        }
        "seal" => Ok(Request::Seal),
        "state" => Ok(Request::State),
        "quit" => Ok(Request::Quit),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

fn admission_name(a: Admission) -> &'static str {
    match a {
        Admission::Stored => "stored",
        Admission::Shed => "shed",
        Admission::Blocked => "blocked",
    }
}

fn error_response(message: &str) -> JsonValue {
    JsonValue::object()
        .field("event", "error")
        .field("message", message)
}

fn sealed_response(s: &SealedOutcome) -> JsonValue {
    let mut winners = JsonValue::array();
    for a in &s.outcome.winners {
        winners = winners.item(
            JsonValue::object()
                .field("bidder", a.bidder)
                .field("payment", a.payment),
        );
    }
    JsonValue::object()
        .field("event", "sealed")
        .field("round", s.round)
        .field("sealed", s.stats.sealed)
        .field("winners", winners)
        .field("welfare", s.outcome.virtual_welfare)
        .field("spend", s.outcome.total_payment())
        .field("backlog", s.backlog)
        .field("digest", journal::u64_hex(s.digest))
}

fn state_response(session: &MarketSession) -> JsonValue {
    JsonValue::object()
        .field("event", "state")
        .field("rounds", session.rounds_sealed())
        .field("welfare", session.welfare())
        .field("spend", session.total_spend())
        .field("backlog", session.backlog())
        .field("digest", journal::u64_hex(session.digest()))
}

fn respond(out: &mut TcpStream, v: JsonValue) -> std::io::Result<()> {
    let mut line = v.to_string();
    line.push('\n');
    out.write_all(line.as_bytes())
}

// ---------------------------------------------------------------------
// The accept loop.
// ---------------------------------------------------------------------

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port — read it
    /// back from [`MarketServer::local_addr`]).
    pub addr: String,
    /// Directory holding one journal (+ snapshot) per session name.
    pub journal_dir: PathBuf,
    /// Snapshot cadence in sealed rounds (0 disables).
    pub snapshot_every: usize,
    /// Mechanism configuration shared by every session.
    pub lovm: LovmConfig,
    /// Ingestion configuration shared by every session.
    pub ingest: IngestConfig,
}

impl ServeConfig {
    /// A server on `addr` journaling under `journal_dir`, defaults
    /// elsewhere.
    pub fn new(addr: impl Into<String>, journal_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: addr.into(),
            journal_dir: journal_dir.into(),
            snapshot_every: 8,
            lovm: LovmConfig::default(),
            ingest: IngestConfig::default(),
        }
    }
}

/// The TCP market server (see module docs).
#[derive(Debug)]
pub struct MarketServer {
    listener: TcpListener,
    cfg: ServeConfig,
    active: Arc<Mutex<HashSet<String>>>,
}

/// Releases a claimed session name when the connection ends, however it
/// ends.
struct SessionClaim {
    name: String,
    active: Arc<Mutex<HashSet<String>>>,
}

impl Drop for SessionClaim {
    fn drop(&mut self) {
        self.active.lock().unwrap().remove(&self.name);
    }
}

impl MarketServer {
    /// Creates the journal directory and binds the listener.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<MarketServer> {
        std::fs::create_dir_all(&cfg.journal_dir)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(MarketServer {
            listener,
            cfg,
            active: Arc::new(Mutex::new(HashSet::new())),
        })
    }

    /// The actually-bound address (resolves an ephemeral `:0` port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one handler thread per connection.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            let Ok(stream) = stream else { continue };
            let cfg = self.cfg.clone();
            let active = Arc::clone(&self.active);
            std::thread::spawn(move || {
                // A dropped peer is a normal way for a connection to end.
                let _ = handle_connection(stream, &cfg, active);
            });
        }
        Ok(())
    }
}

fn handle_connection(
    stream: TcpStream,
    cfg: &ServeConfig,
    active: Arc<Mutex<HashSet<String>>>,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    // The reader half is its own producer thread feeding a bounded
    // channel, mirroring `ingest::ThreadedDriver`: when the market loop
    // goes away the send fails and the producer stops — gracefully.
    let (tx, rx) = mpsc::sync_channel::<Result<Request, String>>(cfg.ingest.capacity.min(4096));
    std::thread::spawn(move || {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if tx.send(parse_request(&line)).is_err() {
                return;
            }
        }
        // EOF (or a read error) quits the session like a polite client.
        let _ = tx.send(Ok(Request::Quit));
    });

    // The conversation starts with `hello`, which names the session.
    let name = loop {
        match rx.recv() {
            Ok(Ok(Request::Hello { session })) => break session,
            Ok(Ok(Request::Quit)) | Err(_) => {
                let _ = respond(&mut out, JsonValue::object().field("event", "bye"));
                return Ok(());
            }
            Ok(Ok(_)) => respond(&mut out, error_response("say hello first"))?,
            Ok(Err(msg)) => respond(&mut out, error_response(&msg))?,
        }
    };
    if !active.lock().unwrap().insert(name.clone()) {
        respond(
            &mut out,
            error_response(&format!("session `{name}` is already being served")),
        )?;
        return Ok(());
    }
    let _claim = SessionClaim {
        name: name.clone(),
        active,
    };

    let mut session_cfg = SessionConfig::new(cfg.journal_dir.join(format!("{name}.jsonl")));
    session_cfg.snapshot = Some(cfg.journal_dir.join(format!("{name}.snapshot.json")));
    session_cfg.snapshot_every = cfg.snapshot_every;
    session_cfg.lovm = cfg.lovm;
    session_cfg.ingest = cfg.ingest;
    let mut session = match MarketSession::open(session_cfg) {
        Ok(s) => s,
        Err(e) => {
            respond(
                &mut out,
                error_response(&format!("cannot open session `{name}`: {e}")),
            )?;
            return Ok(());
        }
    };
    respond(
        &mut out,
        JsonValue::object()
            .field("event", "welcome")
            .field("session", name.as_str())
            .field("rounds", session.rounds_sealed())
            .field("backlog", session.backlog())
            .field("digest", journal::u64_hex(session.digest())),
    )?;

    loop {
        match rx.recv() {
            Ok(Ok(Request::Bid { at, bid })) => {
                let (seq, admission) = session.offer(at, bid)?;
                respond(
                    &mut out,
                    JsonValue::object()
                        .field("event", "bid")
                        .field("seq", seq)
                        .field("admission", admission_name(admission)),
                )?;
            }
            Ok(Ok(Request::Seal)) => {
                let sealed = session.seal()?;
                respond(&mut out, sealed_response(&sealed))?;
            }
            Ok(Ok(Request::State)) => respond(&mut out, state_response(&session))?,
            Ok(Ok(Request::Hello { .. })) => {
                respond(&mut out, error_response("already in a session"))?;
            }
            Ok(Ok(Request::Quit)) | Err(_) => {
                let _ = respond(&mut out, JsonValue::object().field("event", "bye"));
                return Ok(());
            }
            Ok(Err(msg)) => respond(&mut out, error_response(&msg))?,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lovm-serve-test-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn session_cfg(dir: &Path, snapshot_every: usize) -> SessionConfig {
        let mut cfg = SessionConfig::new(dir.join("market.jsonl"));
        cfg.snapshot = Some(dir.join("market.snapshot.json"));
        cfg.snapshot_every = snapshot_every;
        cfg.lovm = LovmConfig {
            v: 20.0,
            budget_per_round: 2.0,
            max_winners: Some(3),
            ..LovmConfig::default()
        };
        cfg
    }

    /// Deterministic offers for round `r`: a handful of bidders whose
    /// costs/sizes vary by round, timestamped inside the round span.
    fn offers_for_round(r: usize) -> Vec<(f64, Bid)> {
        (0..5)
            .map(|i| {
                let at = r as f64 + (i as f64 + 0.5) / 6.0;
                let cost = 0.6 + ((r * 7 + i * 3) % 11) as f64 * 0.21;
                let data = 80 + ((r * 13 + i * 29) % 300);
                let quality = 0.55 + ((r + i) % 5) as f64 * 0.09;
                (at, Bid::new(i, cost, data, quality))
            })
            .collect()
    }

    fn drive_rounds(
        session: &mut MarketSession,
        rounds: std::ops::Range<usize>,
    ) -> Vec<SealedOutcome> {
        rounds
            .map(|r| {
                for (at, bid) in offers_for_round(r) {
                    session.offer(at, bid).unwrap();
                }
                session.seal().unwrap()
            })
            .collect()
    }

    #[test]
    fn snapshot_every_parses_or_panics() {
        assert_eq!(parse_snapshot_every(None), 8);
        assert_eq!(parse_snapshot_every(Some("0")), 0);
        assert_eq!(parse_snapshot_every(Some(" 12 ")), 12);
        for bad in ["abc", "", "-1", "2.5", "8 rounds"] {
            let result = std::panic::catch_unwind(|| parse_snapshot_every(Some(bad)));
            assert!(result.is_err(), "`{bad}` must panic");
        }
    }

    /// The tentpole contract: kill a session mid-round, reopen it, and
    /// the recovered server continues bit-identically with a reference
    /// that never crashed — with and without snapshots in play.
    #[test]
    fn crash_recovery_is_bit_identical() {
        for snapshot_every in [0usize, 2] {
            let ref_dir = temp_dir("ref");
            let crash_dir = temp_dir("crash");
            let mut reference = MarketSession::open(session_cfg(&ref_dir, snapshot_every)).unwrap();
            let ref_outcomes = drive_rounds(&mut reference, 0..7);

            let mut victim = MarketSession::open(session_cfg(&crash_dir, snapshot_every)).unwrap();
            let pre_crash = drive_rounds(&mut victim, 0..4);
            assert_eq!(pre_crash, ref_outcomes[..4].to_vec());
            // Round 4 in flight: arrivals journaled but never sealed —
            // then the crash (drop without sealing).
            for (at, bid) in offers_for_round(4) {
                victim.offer(at, bid).unwrap();
            }
            drop(victim);

            let mut recovered =
                MarketSession::open(session_cfg(&crash_dir, snapshot_every)).unwrap();
            assert_eq!(recovered.recovered_rounds(), 4);
            assert_eq!(recovered.digest(), ref_outcomes[3].digest);
            assert_eq!(
                recovered.backlog().to_bits(),
                ref_outcomes[3].backlog.to_bits()
            );
            // The unsealed arrivals were truncated; the client re-sends
            // them and the continuation matches the reference bitwise.
            let continued = drive_rounds(&mut recovered, 4..7);
            assert_eq!(continued, ref_outcomes[4..].to_vec());
            assert_eq!(recovered.digest(), reference.digest());
            assert_eq!(recovered.welfare().to_bits(), reference.welfare().to_bits());
            assert_eq!(
                recovered.total_spend().to_bits(),
                reference.total_spend().to_bits()
            );
            std::fs::remove_dir_all(&ref_dir).ok();
            std::fs::remove_dir_all(&crash_dir).ok();
        }
    }

    /// A recovery-of-a-recovery is still exact (the journal keeps
    /// growing across generations of the process).
    #[test]
    fn repeated_recoveries_keep_continuing() {
        let dir = temp_dir("regen");
        let mut all = Vec::new();
        for generation in 0..4usize {
            let mut session = MarketSession::open(session_cfg(&dir, 2)).unwrap();
            assert_eq!(session.rounds_sealed(), generation * 2);
            all.extend(drive_rounds(
                &mut session,
                generation * 2..generation * 2 + 2,
            ));
        }
        let ref_dir = temp_dir("regen-ref");
        let mut reference = MarketSession::open(session_cfg(&ref_dir, 2)).unwrap();
        let expect = drive_rounds(&mut reference, 0..8);
        assert_eq!(all, expect);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }

    /// A snapshot pointing past the journal's committed prefix (its
    /// fsynced rename survived a crash that tore the journal tail) is
    /// ignored and recovery falls back to full replay.
    #[test]
    fn snapshot_ahead_of_journal_falls_back_to_replay() {
        let dir = temp_dir("ahead");
        let mut session = MarketSession::open(session_cfg(&dir, 2)).unwrap();
        drive_rounds(&mut session, 0..4);
        let digest_r2 = {
            // Reference digest at round 2: replay a fresh twin.
            let tw = temp_dir("ahead-twin");
            let mut twin = MarketSession::open(session_cfg(&tw, 0)).unwrap();
            let outs = drive_rounds(&mut twin, 0..2);
            std::fs::remove_dir_all(&tw).ok();
            outs[1].digest
        };
        drop(session);
        // Truncate the journal back to round 1's outcome while keeping
        // the (now too-new) snapshot from round 3 in place.
        let journal_path = dir.join("market.jsonl");
        let lines = journal::committed_lines(&journal_path).unwrap();
        let keep: Vec<&String> = {
            let mut outcomes = 0;
            lines
                .iter()
                .take_while(|l| {
                    let done = outcomes >= 2;
                    if l.contains("\"event\":\"outcome\"") {
                        outcomes += 1;
                    }
                    !done
                })
                .collect()
        };
        let mut text = keep
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        text.push('\n');
        std::fs::write(&journal_path, text).unwrap();
        let recovered = MarketSession::open(session_cfg(&dir, 2)).unwrap();
        assert_eq!(recovered.recovered_rounds(), 2);
        assert_eq!(recovered.digest(), digest_r2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_parsing_is_total() {
        assert_eq!(
            parse_request(r#"{"cmd":"hello","session":"m-1"}"#),
            Ok(Request::Hello {
                session: "m-1".into()
            })
        );
        assert_eq!(
            parse_request(
                r#"{"cmd":"bid","at":0.5,"bidder":3,"cost":1.25,"data":100,"quality":0.9}"#
            ),
            Ok(Request::Bid {
                at: 0.5,
                bid: Bid::new(3, 1.25, 100, 0.9)
            })
        );
        assert_eq!(parse_request(r#"{"cmd":"seal"}"#), Ok(Request::Seal));
        assert_eq!(parse_request(r#"{"cmd":"state"}"#), Ok(Request::State));
        assert_eq!(parse_request(r#"{"cmd":"quit"}"#), Ok(Request::Quit));
        // Hostile input errors instead of panicking (out-of-domain bids
        // would assert inside Bid::new).
        for bad in [
            "not json",
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"hello","session":"../escape"}"#,
            r#"{"cmd":"hello","session":""}"#,
            r#"{"cmd":"bid","at":0.5,"bidder":0,"cost":-1,"data":1,"quality":0.5}"#,
            r#"{"cmd":"bid","at":0.5,"bidder":0,"cost":1,"data":1,"quality":1.5}"#,
            r#"{"cmd":"bid","at":1e999,"bidder":0,"cost":1,"data":1,"quality":0.5}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    fn send(out: &mut TcpStream, line: &str) {
        out.write_all(line.as_bytes()).unwrap();
        out.write_all(b"\n").unwrap();
    }

    fn read_event(reader: &mut BufReader<TcpStream>) -> JsonValue {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        JsonValue::parse(line.trim()).unwrap()
    }

    /// End-to-end over real sockets: a session drives rounds, quits,
    /// reconnects, and resumes with the same digest; a concurrent claim
    /// of a busy session name is refused.
    #[test]
    fn tcp_sessions_survive_reconnection() {
        let dir = temp_dir("tcp");
        let server = MarketServer::bind(ServeConfig::new("127.0.0.1:0", &dir)).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let connect = || {
            let stream = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            (stream, reader)
        };
        let (mut out, mut reader) = connect();
        send(&mut out, r#"{"cmd":"hello","session":"alpha"}"#);
        let welcome = read_event(&mut reader);
        assert_eq!(welcome.get("event").unwrap().as_str(), Some("welcome"));
        assert_eq!(welcome.get("rounds").unwrap().as_usize(), Some(0));

        // A second connection cannot claim the same live session.
        let (mut out2, mut reader2) = connect();
        send(&mut out2, r#"{"cmd":"hello","session":"alpha"}"#);
        let refused = read_event(&mut reader2);
        assert_eq!(refused.get("event").unwrap().as_str(), Some("error"));
        drop((out2, reader2));

        for (at, bid) in offers_for_round(0) {
            send(
                &mut out,
                &format!(
                    r#"{{"cmd":"bid","at":{at},"bidder":{},"cost":{},"data":{},"quality":{}}}"#,
                    bid.bidder, bid.cost, bid.data_size, bid.quality
                ),
            );
            let ack = read_event(&mut reader);
            assert_eq!(ack.get("event").unwrap().as_str(), Some("bid"));
            assert_eq!(ack.get("admission").unwrap().as_str(), Some("stored"));
        }
        send(&mut out, r#"{"cmd":"seal"}"#);
        let sealed = read_event(&mut reader);
        assert_eq!(sealed.get("event").unwrap().as_str(), Some("sealed"));
        assert_eq!(sealed.get("round").unwrap().as_usize(), Some(0));
        let digest = sealed.get("digest").unwrap().as_str().unwrap().to_string();
        send(&mut out, r#"{"cmd":"quit"}"#);
        let bye = read_event(&mut reader);
        assert_eq!(bye.get("event").unwrap().as_str(), Some("bye"));
        drop((out, reader));

        // Reconnect: the journal brings the session back, same digest.
        let (mut out, mut reader) = connect();
        send(&mut out, r#"{"cmd":"hello","session":"alpha"}"#);
        let welcome = read_event(&mut reader);
        assert_eq!(welcome.get("rounds").unwrap().as_usize(), Some(1));
        assert_eq!(
            welcome.get("digest").unwrap().as_str(),
            Some(digest.as_str())
        );
        // Garbage on the wire is answered, not fatal.
        send(&mut out, "not json at all");
        let err = read_event(&mut reader);
        assert_eq!(err.get("event").unwrap().as_str(), Some("error"));
        send(&mut out, r#"{"cmd":"state"}"#);
        let state = read_event(&mut reader);
        assert_eq!(state.get("event").unwrap().as_str(), Some("state"));
        assert_eq!(state.get("rounds").unwrap().as_usize(), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }
}
