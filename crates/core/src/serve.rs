//! The event-sourced market server behind `lovm serve`.
//!
//! A [`MarketSession`] is one long-lived auction market: bids arrive over
//! time, rounds seal on demand, and *every* state transition — arrival,
//! seal, outcome — is journaled as one JSON line (`crates/journal`)
//! before it is applied. The outcome line is fsynced, making it the
//! commit record: a `SIGKILL` at any instant loses at most the un-sealed
//! round in flight, and [`MarketSession::open`] recovers by truncating
//! the torn tail, optionally fast-forwarding from the latest snapshot,
//! and replaying the remaining events through the *same* code path the
//! live server runs — verifying the recomputed digest against every
//! journaled outcome, so a recovered session is bit-identical to one
//! that never crashed.
//!
//! Long-lived sessions stay bounded on disk: every `compact_every`
//! sealed rounds the journal is rewritten to drop the prefix the latest
//! snapshot covers (`journal::compact`'s crash-safe temp → fsync →
//! rename → directory-fsync dance), leaving a self-contained header +
//! post-snapshot suffix that recovery replays transparently.
//!
//! [`MarketServer`] wraps sessions in a zero-dependency
//! `std::net::TcpListener` accept loop: one thread per connection, each
//! connection a reader-producer feeding a bounded `mpsc` channel into
//! the market loop (the same producer/consumer discipline as
//! `ingest::ThreadedDriver` — a disconnected peer is a graceful stop,
//! never a panic). Many sessions run concurrently, each with its own
//! journal file keyed by the client-chosen session name.
//!
//! **Replication.** A connection that says `follow` instead of `hello`
//! becomes a live replica feed: the server sends the session's committed
//! journal verbatim (a `bootstrap` line, the raw backlog, a `live`
//! marker), then every newly committed round's lines the instant its
//! seal fsyncs. A follower process ([`MarketSession::apply_replicated`],
//! `lovm follow`) replays each line through the *same* `run_round` code
//! path the leader ran, verifying every journaled digest bitwise, and
//! keeps its own journal — so when the leader dies the follower can be
//! promoted to serve the session with state exact to the bit. The
//! replay-equality machinery is the oracle: leader and follower agree
//! because they are the same computation.
//!
//! Environment: `LOVM_JOURNAL` points the CLI at the journal directory,
//! `LOVM_SNAPSHOT_EVERY` sets the snapshot cadence in sealed rounds and
//! `LOVM_COMPACT` the compaction cadence (0 disables either; malformed
//! values panic at startup, a silently ignored override being worse
//! than a crash).

use crate::lovm::{Lovm, LovmConfig};
use auction::bid::Bid;
use auction::outcome::AuctionOutcome;
use ingest::stats::{IngestStats, StreamTotals};
use ingest::{Admission, CollectedRound, IngestConfig, RoundCollector};
use journal::{Digest, JournalEvent, JournalWriter, Snapshot};
use metrics::json::JsonValue;
use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use workload::arrivals::TimedBid;

/// Environment variable naming the server's journal directory.
pub const JOURNAL_ENV: &str = "LOVM_JOURNAL";

/// Environment variable setting the snapshot cadence in sealed rounds
/// (`LOVM_SNAPSHOT_EVERY=8`; 0 disables snapshots).
pub const SNAPSHOT_EVERY_ENV: &str = "LOVM_SNAPSHOT_EVERY";

/// Snapshot cadence from the environment (default 8).
///
/// # Panics
///
/// Panics with a descriptive message when `LOVM_SNAPSHOT_EVERY` is set
/// to anything but an unsigned round count.
pub fn snapshot_every_from_env() -> usize {
    parse_snapshot_every(std::env::var(SNAPSHOT_EVERY_ENV).ok().as_deref())
}

fn parse_snapshot_every(raw: Option<&str>) -> usize {
    match raw {
        None => 8,
        Some(raw) => raw.trim().parse::<usize>().unwrap_or_else(|_| {
            panic!(
                "{SNAPSHOT_EVERY_ENV} must be a sealed-round count \
                 (0 disables snapshots), got `{raw}`"
            )
        }),
    }
}

/// Environment variable setting the journal-compaction cadence in sealed
/// rounds (`LOVM_COMPACT=16`; 0 — the default — disables compaction).
pub const COMPACT_EVERY_ENV: &str = "LOVM_COMPACT";

/// Compaction cadence from the environment (default 0 = disabled).
///
/// # Panics
///
/// Panics with a descriptive message when `LOVM_COMPACT` is set to
/// anything but an unsigned round count.
pub fn compact_every_from_env() -> usize {
    parse_compact_every(std::env::var(COMPACT_EVERY_ENV).ok().as_deref())
}

fn parse_compact_every(raw: Option<&str>) -> usize {
    match raw {
        None => 0,
        Some(raw) => raw.trim().parse::<usize>().unwrap_or_else(|_| {
            panic!(
                "{COMPACT_EVERY_ENV} must be a sealed-round count \
                 (0 disables compaction), got `{raw}`"
            )
        }),
    }
}

/// Journal directory from the environment (default `lovm-journal`).
pub fn journal_dir_from_env() -> PathBuf {
    std::env::var_os(JOURNAL_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("lovm-journal"))
}

/// Configuration of one journaled market session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The append-only journal file.
    pub journal: PathBuf,
    /// Snapshot file (`None` disables snapshots entirely).
    pub snapshot: Option<PathBuf>,
    /// Snapshot every this many sealed rounds (0 disables).
    pub snapshot_every: usize,
    /// Compact the journal every this many sealed rounds, dropping the
    /// prefix the latest snapshot covers (0 disables; nonzero requires
    /// snapshots to be enabled).
    pub compact_every: usize,
    /// Mechanism configuration — must match across restarts for the
    /// replay-equality guarantee to hold (the digest check catches a
    /// mismatch at recovery).
    pub lovm: LovmConfig,
    /// Ingestion configuration — same caveat as `lovm`.
    pub ingest: IngestConfig,
}

impl SessionConfig {
    /// A session journaling to `journal`, with the snapshot beside it
    /// (`<journal>.snapshot`) at the default cadence.
    pub fn new(journal: impl Into<PathBuf>) -> Self {
        let journal = journal.into();
        let mut snapshot = journal.clone().into_os_string();
        snapshot.push(".snapshot");
        SessionConfig {
            journal,
            snapshot: Some(PathBuf::from(snapshot)),
            snapshot_every: 8,
            compact_every: 0,
            lovm: LovmConfig::default(),
            ingest: IngestConfig::default(),
        }
    }
}

/// What [`MarketSession::seal`] hands back (and journals).
#[derive(Debug, Clone, PartialEq)]
pub struct SealedOutcome {
    /// Round index just sealed.
    pub round: usize,
    /// Ingestion telemetry of the round.
    pub stats: IngestStats,
    /// The auction outcome.
    pub outcome: AuctionOutcome,
    /// Virtual-queue backlog after the round.
    pub backlog: f64,
    /// Running state digest after the round.
    pub digest: u64,
}

/// One event-sourced market: collector + mechanism + journal (see the
/// module docs for the durability contract).
#[derive(Debug)]
pub struct MarketSession {
    cfg: SessionConfig,
    writer: JournalWriter,
    collector: RoundCollector,
    lovm: Lovm,
    pool: par::Pool,
    digest: Digest,
    welfare: f64,
    spend: f64,
    next_seq: u64,
    rounds_since_snapshot: usize,
    rounds_since_compact: usize,
    recovered_rounds: usize,
    /// The most recent snapshot on disk — the boundary the next
    /// compaction may drop the journal prefix up to.
    last_snapshot: Option<Snapshot>,
    /// Raw journal lines appended since the last commit (the feed unit
    /// replication publishes per sealed round).
    pending_lines: Vec<String>,
    /// The lines the last seal committed, until a publisher drains them.
    last_commit_lines: Vec<String>,
    /// Session-lifetime ingestion rollup. Folded in `run_round`, which
    /// replay shares — so recovery rebuilds the same totals a session
    /// that never crashed would report via the `stats` command.
    totals: StreamTotals,
}

fn corrupt(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

impl MarketSession {
    /// Opens (or resumes) the session: recovers the journal — truncating
    /// any torn or uncommitted tail — then rebuilds the market state by
    /// snapshot fast-forward plus a buffered streaming replay (memory
    /// stays bounded however large the log), verifying the recomputed
    /// digest against every replayed outcome line. A compacted journal's
    /// embedded base snapshot restores the dropped prefix; a separate
    /// snapshot file is used only when it verifies against a commit
    /// boundary and sits further ahead — the snapshot is an accelerator,
    /// never the truth.
    ///
    /// # Errors
    ///
    /// I/O errors, plus `InvalidData` when replay diverges from the
    /// journal (a committed-region corruption or a config mismatch).
    ///
    /// # Panics
    ///
    /// Panics when `compact_every` is nonzero while snapshots are
    /// disabled: compaction can only drop what a snapshot covers.
    pub fn open(cfg: SessionConfig) -> std::io::Result<MarketSession> {
        cfg.ingest.validate();
        assert!(
            cfg.compact_every == 0 || (cfg.snapshot.is_some() && cfg.snapshot_every > 0),
            "journal compaction requires snapshots: set a snapshot path and a \
             nonzero snapshot cadence alongside compact_every"
        );
        let meta = journal::recover_meta(&cfg.journal)?;
        let file_snapshot = match &cfg.snapshot {
            Some(path) => journal::read_snapshot(path)?.filter(|s| meta.snapshot_covers(s)),
            None => None,
        };
        // The compaction base is itself a snapshot (it rode into the
        // journal inside the header); fast-forward from whichever
        // verified snapshot sits further ahead.
        let snapshot = match (file_snapshot, meta.base.clone()) {
            (Some(f), Some(b)) => Some(if f.events >= b.events { f } else { b }),
            (f, b) => f.or(b),
        };
        let writer = if cfg.journal.exists() {
            JournalWriter::open_append(&cfg.journal, meta.committed_events)?
        } else {
            JournalWriter::create(&cfg.journal)?
        };
        let mut lovm = Lovm::new(cfg.lovm);
        let (collector, digest, welfare, spend, next_seq, replay_from_bytes) = match &snapshot {
            Some(snap) => {
                lovm.restore_backlog(snap.backlog);
                (
                    RoundCollector::restore(&cfg.ingest, cfg.ingest.capacity, &snap.collector),
                    Digest::resume(snap.digest),
                    snap.welfare,
                    snap.spend,
                    snap.collector.next_seq,
                    meta.replay_offset(snap),
                )
            }
            None => (
                RoundCollector::new(&cfg.ingest),
                Digest::new(),
                0.0,
                0.0,
                0,
                0,
            ),
        };
        // Resume the rollup from the snapshot so the fast-forwarded
        // prefix still counts; replay below re-absorbs the suffix.
        let resumed_totals = snapshot.as_ref().map(|s| s.totals).unwrap_or_default();
        let mut session = MarketSession {
            cfg,
            writer,
            collector,
            lovm,
            pool: par::Pool::auto(),
            digest,
            welfare,
            spend,
            next_seq,
            rounds_since_snapshot: 0,
            rounds_since_compact: 0,
            recovered_rounds: 0,
            last_snapshot: snapshot,
            pending_lines: Vec::new(),
            last_commit_lines: Vec::new(),
            totals: resumed_totals,
        };
        let journal_path = session.cfg.journal.clone();
        journal::stream_events(
            &journal_path,
            replay_from_bytes,
            meta.committed_bytes,
            |ev| session.replay_event(ev),
        )?;
        session.recovered_rounds = session.collector.next_round();
        Ok(session)
    }

    /// Re-applies one committed journal event through the live code
    /// path, verifying outcomes bitwise via the running digest.
    fn replay_event(&mut self, ev: &JournalEvent) -> std::io::Result<()> {
        match ev {
            JournalEvent::Arrival { seq, at, bid } => {
                self.next_seq = self.next_seq.max(seq + 1);
                self.collector
                    .offer_at(*seq, TimedBid { at: *at, bid: *bid });
            }
            JournalEvent::Seal { round, sealed } => {
                let (collected, _) = self.run_round();
                if collected.sealed.round() != *round
                    || collected.sealed.bids() != sealed.as_slice()
                {
                    return Err(corrupt(format!(
                        "replay diverged at the seal of round {round}: the journal's \
                         sealed set does not match the recomputed one"
                    )));
                }
            }
            JournalEvent::Outcome {
                round,
                backlog,
                digest,
                ..
            } => {
                if self.collector.next_round() != round + 1
                    || self.digest.value() != *digest
                    || self.lovm.queue_backlog().to_bits() != backlog.to_bits()
                {
                    return Err(corrupt(format!(
                        "replay diverged at the outcome of round {round}: recomputed \
                         digest {:016x} vs journaled {digest:016x}",
                        self.digest.value()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Seals the next round and folds everything economic — sealed bids,
    /// awards, welfare, spend, backlog — into the running digest. Shared
    /// verbatim by the live path and replay: that sharing *is* the
    /// recovery guarantee.
    fn run_round(&mut self) -> (CollectedRound, AuctionOutcome) {
        let collected = self.collector.seal_next();
        self.totals.absorb(&collected.stats);
        let outcome = self.lovm.round_on(collected.sealed.bids(), self.pool);
        let backlog = self.lovm.queue_backlog();
        self.digest.fold_usize(collected.sealed.round());
        for b in collected.sealed.bids() {
            self.digest.fold_usize(b.bidder);
            self.digest.fold_f64(b.cost);
            self.digest.fold_usize(b.data_size);
            self.digest.fold_f64(b.quality);
        }
        for a in &outcome.winners {
            self.digest.fold_usize(a.bidder);
            self.digest.fold_f64(a.cost);
            self.digest.fold_f64(a.value);
            self.digest.fold_f64(a.payment);
        }
        self.digest.fold_f64(outcome.virtual_welfare);
        self.digest.fold_f64(outcome.total_payment());
        self.digest.fold_f64(backlog);
        self.welfare += outcome.virtual_welfare;
        self.spend += outcome.total_payment();
        (collected, outcome)
    }

    /// Accepts one bid arrival: journals it (write-ahead, flushed but
    /// not yet durable — the next seal's fsync commits it), then offers
    /// it to the collector under a session-owned sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not finite.
    pub fn offer(&mut self, at: f64, bid: Bid) -> std::io::Result<(u64, Admission)> {
        assert!(at.is_finite(), "arrival time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        let line = JournalEvent::Arrival { seq, at, bid }.to_line();
        self.writer.append_raw(&line)?;
        self.pending_lines.push(line);
        let admission = self.collector.offer_at(seq, TimedBid { at, bid });
        Ok((seq, admission))
    }

    /// Seals the next round: runs the topology-aware VCG path, journals
    /// the seal and outcome lines, fsyncs (the commit point), stages the
    /// round's committed lines for replication, and runs the snapshot /
    /// compaction cadences.
    pub fn seal(&mut self) -> std::io::Result<SealedOutcome> {
        let observing = telemetry::enabled();
        let solve_start = observing.then(Instant::now);
        let (collected, outcome) = self.run_round();
        let solve_ns = elapsed_ns(solve_start);
        let round = collected.sealed.round();
        let backlog = self.lovm.queue_backlog();
        let seal_line = JournalEvent::Seal {
            round,
            sealed: collected.sealed.bids().to_vec(),
        }
        .to_line();
        let outcome_line = JournalEvent::Outcome {
            round,
            awards: outcome.winners.clone(),
            virtual_welfare: outcome.virtual_welfare,
            spend: outcome.total_payment(),
            backlog,
            digest: self.digest.value(),
        }
        .to_line();
        let persist_start = observing.then(Instant::now);
        self.writer.append_raw(&seal_line)?;
        self.pending_lines.push(seal_line);
        self.writer.append_raw(&outcome_line)?;
        self.pending_lines.push(outcome_line);
        self.writer.sync()?;
        let persist_ns = elapsed_ns(persist_start);
        // Everything staged since the last seal is now durable: hand it
        // to the replication feed as one committed batch.
        self.last_commit_lines = std::mem::take(&mut self.pending_lines);
        self.maybe_snapshot()?;
        self.maybe_compact()?;
        if observing {
            let session = self
                .cfg
                .journal
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_string);
            crate::obs::RoundObservation {
                source: "serve",
                session: session.as_deref(),
                round,
                stats: &collected.stats,
                winners: outcome.winners.len(),
                welfare: outcome.virtual_welfare,
                spend: outcome.total_payment(),
                backlog: Some(backlog),
                timings: &[("solve_ns", solve_ns), ("persist_ns", persist_ns)],
            }
            .record();
        }
        Ok(SealedOutcome {
            round,
            stats: collected.stats,
            outcome,
            backlog,
            digest: self.digest.value(),
        })
    }

    /// Drains the journal lines the last seal committed — the per-round
    /// batch a replication publisher forwards to followers.
    pub fn take_committed_lines(&mut self) -> Vec<String> {
        std::mem::take(&mut self.last_commit_lines)
    }

    fn maybe_snapshot(&mut self) -> std::io::Result<()> {
        let Some(path) = &self.cfg.snapshot else {
            return Ok(());
        };
        if self.cfg.snapshot_every == 0 {
            return Ok(());
        }
        self.rounds_since_snapshot += 1;
        if self.rounds_since_snapshot < self.cfg.snapshot_every {
            return Ok(());
        }
        self.rounds_since_snapshot = 0;
        let snap = Snapshot {
            events: self.writer.events(),
            collector: self.collector.export_state(),
            backlog: self.lovm.queue_backlog(),
            welfare: self.welfare,
            spend: self.spend,
            digest: self.digest.value(),
            totals: self.totals,
        };
        journal::write_snapshot(path, &snap)?;
        self.last_snapshot = Some(snap);
        Ok(())
    }

    /// Every `compact_every` sealed rounds, rewrites the journal to drop
    /// the prefix the latest snapshot covers (crash-safe: temp file →
    /// fsync → rename → directory fsync), then reopens the writer on the
    /// new inode so later appends land in the compacted file.
    fn maybe_compact(&mut self) -> std::io::Result<()> {
        if self.cfg.compact_every == 0 {
            return Ok(());
        }
        self.rounds_since_compact += 1;
        if self.rounds_since_compact < self.cfg.compact_every {
            return Ok(());
        }
        self.rounds_since_compact = 0;
        let Some(snap) = self.last_snapshot.clone() else {
            return Ok(());
        };
        let stats = journal::compact(&self.cfg.journal, &snap)?;
        if stats.dropped_events > 0 {
            // The rename replaced the inode the writer held open.
            self.writer = JournalWriter::open_append(&self.cfg.journal, self.writer.events())?;
        }
        Ok(())
    }

    /// Applies one replicated journal line from the leader's committed
    /// feed: appends it verbatim to the local journal (keeping the
    /// replica byte-identical) and replays it through the same
    /// `run_round` code path the leader ran, verifying every journaled
    /// digest bitwise. Returns `Some((round, digest))` when the line was
    /// an outcome — the follower's commit point, where it fsyncs and
    /// runs its own snapshot/compaction cadences.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the line does not parse or the replayed state
    /// diverges from the journaled digest (leader/follower mismatch).
    pub fn apply_replicated(&mut self, line: &str) -> std::io::Result<Option<(usize, u64)>> {
        let Some(ev) = JournalEvent::parse_line(line) else {
            return Err(corrupt(format!(
                "replicated line is not a journal event: {line}"
            )));
        };
        self.writer.append_raw(line)?;
        self.replay_event(&ev)?;
        if let JournalEvent::Outcome { round, digest, .. } = &ev {
            self.writer.sync()?;
            self.maybe_snapshot()?;
            self.maybe_compact()?;
            return Ok(Some((*round, *digest)));
        }
        Ok(None)
    }

    /// Rounds sealed so far (including recovered ones).
    pub fn rounds_sealed(&self) -> usize {
        self.collector.next_round()
    }

    /// Rounds the session resumed with at [`MarketSession::open`].
    pub fn recovered_rounds(&self) -> usize {
        self.recovered_rounds
    }

    /// Running state digest (see `journal::Digest`).
    pub fn digest(&self) -> u64 {
        self.digest.value()
    }

    /// Current virtual-queue backlog.
    pub fn backlog(&self) -> f64 {
        self.lovm.queue_backlog()
    }

    /// Cumulative virtual welfare over all sealed rounds.
    pub fn welfare(&self) -> f64 {
        self.welfare
    }

    /// Cumulative payments over all sealed rounds.
    pub fn total_spend(&self) -> f64 {
        self.spend
    }

    /// Committed + appended journal events.
    pub fn journal_events(&self) -> u64 {
        self.writer.events()
    }

    /// Session-lifetime ingestion rollup — every sealed round's stats
    /// folded through [`StreamTotals::absorb`], recovered rounds
    /// included. The `stats` wire command reports this.
    pub fn stream_totals(&self) -> &StreamTotals {
        &self.totals
    }
}

/// Nanoseconds since an optional start instant (0 when not measuring).
fn elapsed_ns(start: Option<Instant>) -> u64 {
    start.map_or(0, |t| {
        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
    })
}

// ---------------------------------------------------------------------
// The wire protocol: one JSON object per line, both directions.
// ---------------------------------------------------------------------

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
enum Request {
    Hello { session: String },
    Follow { session: String },
    Bid { at: f64, bid: Bid },
    Seal,
    State,
    Stats,
    Quit,
}

fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// Parses one request line. Total: hostile input yields `Err`, never a
/// panic — the bid domain is re-validated before `Bid::new`.
fn parse_request(line: &str) -> Result<Request, String> {
    let v = JsonValue::parse(line).map_err(|e| format!("bad json: {}", e.message))?;
    let cmd = v
        .get("cmd")
        .and_then(JsonValue::as_str)
        .ok_or("missing `cmd`")?;
    match cmd {
        "hello" => {
            let session = v
                .get("session")
                .and_then(JsonValue::as_str)
                .ok_or("hello needs a `session` name")?;
            if !valid_session_name(session) {
                return Err(format!(
                    "session name must be 1-64 chars of [A-Za-z0-9_-], got `{session}`"
                ));
            }
            Ok(Request::Hello {
                session: session.to_string(),
            })
        }
        "follow" => {
            let session = v
                .get("session")
                .and_then(JsonValue::as_str)
                .ok_or("follow needs a `session` name")?;
            if !valid_session_name(session) {
                return Err(format!(
                    "session name must be 1-64 chars of [A-Za-z0-9_-], got `{session}`"
                ));
            }
            Ok(Request::Follow {
                session: session.to_string(),
            })
        }
        "bid" => {
            let at = v
                .get("at")
                .and_then(JsonValue::as_f64)
                .filter(|t| t.is_finite())
                .ok_or("bid needs a finite `at`")?;
            let bidder = v
                .get("bidder")
                .and_then(JsonValue::as_usize)
                .ok_or("bid needs a `bidder` id")?;
            let cost = v
                .get("cost")
                .and_then(JsonValue::as_f64)
                .filter(|c| c.is_finite() && *c >= 0.0)
                .ok_or("bid needs a non-negative finite `cost`")?;
            let data = v
                .get("data")
                .and_then(JsonValue::as_usize)
                .ok_or("bid needs a `data` size")?;
            let quality = v
                .get("quality")
                .and_then(JsonValue::as_f64)
                .filter(|q| (0.0..=1.0).contains(q))
                .ok_or("bid needs a `quality` in [0, 1]")?;
            Ok(Request::Bid {
                at,
                bid: Bid::new(bidder, cost, data, quality),
            })
        }
        "seal" => Ok(Request::Seal),
        "state" => Ok(Request::State),
        "stats" => Ok(Request::Stats),
        "quit" => Ok(Request::Quit),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

fn admission_name(a: Admission) -> &'static str {
    match a {
        Admission::Stored => "stored",
        Admission::Shed => "shed",
        Admission::Blocked => "blocked",
    }
}

fn error_response(message: &str) -> JsonValue {
    JsonValue::object()
        .field("event", "error")
        .field("message", message)
}

fn sealed_response(s: &SealedOutcome) -> JsonValue {
    let mut winners = JsonValue::array();
    for a in &s.outcome.winners {
        winners = winners.item(
            JsonValue::object()
                .field("bidder", a.bidder)
                .field("payment", a.payment),
        );
    }
    JsonValue::object()
        .field("event", "sealed")
        .field("round", s.round)
        .field("sealed", s.stats.sealed)
        .field("winners", winners)
        .field("welfare", s.outcome.virtual_welfare)
        .field("spend", s.outcome.total_payment())
        .field("backlog", s.backlog)
        .field("digest", journal::u64_hex(s.digest))
}

/// The `stats` response: the process-wide telemetry registry (counters,
/// gauges, histograms — what `lovm top` renders), plus the session's
/// lifetime ingestion rollup when asked from inside one. Works before
/// `hello` too, so a monitor can poll a server it never drives.
fn stats_response(session: Option<&MarketSession>) -> JsonValue {
    let mut v = JsonValue::object()
        .field("event", "stats")
        .field("registry", crate::obs::registry_json());
    if let Some(s) = session {
        v = v.field(
            "session",
            JsonValue::object()
                .field("rounds", s.rounds_sealed())
                .field("welfare", s.welfare())
                .field("spend", s.total_spend())
                .field("backlog", s.backlog())
                .field("digest", journal::u64_hex(s.digest()))
                .field("totals", crate::obs::totals_json(s.stream_totals())),
        );
    }
    v
}

fn state_response(session: &MarketSession) -> JsonValue {
    JsonValue::object()
        .field("event", "state")
        .field("rounds", session.rounds_sealed())
        .field("welfare", session.welfare())
        .field("spend", session.total_spend())
        .field("backlog", session.backlog())
        .field("digest", journal::u64_hex(session.digest()))
}

fn respond(out: &mut TcpStream, v: JsonValue) -> std::io::Result<()> {
    let mut line = v.to_string();
    line.push('\n');
    out.write_all(line.as_bytes())
}

// ---------------------------------------------------------------------
// The accept loop.
// ---------------------------------------------------------------------

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port — read it
    /// back from [`MarketServer::local_addr`]).
    pub addr: String,
    /// Directory holding one journal (+ snapshot) per session name.
    pub journal_dir: PathBuf,
    /// Snapshot cadence in sealed rounds (0 disables).
    pub snapshot_every: usize,
    /// Journal-compaction cadence in sealed rounds (0 disables; nonzero
    /// requires a nonzero snapshot cadence).
    pub compact_every: usize,
    /// Mechanism configuration shared by every session.
    pub lovm: LovmConfig,
    /// Ingestion configuration shared by every session.
    pub ingest: IngestConfig,
}

impl ServeConfig {
    /// A server on `addr` journaling under `journal_dir`, defaults
    /// elsewhere.
    pub fn new(addr: impl Into<String>, journal_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: addr.into(),
            journal_dir: journal_dir.into(),
            snapshot_every: 8,
            compact_every: 0,
            lovm: LovmConfig::default(),
            ingest: IngestConfig::default(),
        }
    }
}

/// Server-wide replication hub: per-session lists of follower feeds.
///
/// The hub mutex is also the server's *ordering* lock: seals, snapshot
/// and compaction renames, session opens (truncating recovery), and
/// follower bootstrap reads all happen while holding it — so a follower
/// registering mid-stream sees every committed line exactly once (the
/// bootstrap read and the feed registration are atomic with respect to
/// any concurrent seal).
#[derive(Debug, Default)]
struct HubState {
    followers: HashMap<String, Vec<mpsc::Sender<Vec<String>>>>,
}

impl HubState {
    /// Sends one committed batch to every live follower of `session`,
    /// dropping feeds whose receiver has gone away.
    fn publish(&mut self, session: &str, lines: Vec<String>) {
        if lines.is_empty() {
            return;
        }
        let Some(feeds) = self.followers.get_mut(session) else {
            return;
        };
        feeds.retain(|tx| tx.send(lines.clone()).is_ok());
        if feeds.is_empty() {
            self.followers.remove(session);
        }
    }
}

type Hub = Arc<Mutex<HubState>>;

/// The TCP market server (see module docs).
#[derive(Debug)]
pub struct MarketServer {
    listener: TcpListener,
    cfg: ServeConfig,
    active: Arc<Mutex<HashSet<String>>>,
    hub: Hub,
}

/// Releases a claimed session name when the connection ends, however it
/// ends.
struct SessionClaim {
    name: String,
    active: Arc<Mutex<HashSet<String>>>,
}

impl Drop for SessionClaim {
    fn drop(&mut self) {
        self.active.lock().unwrap().remove(&self.name);
    }
}

impl MarketServer {
    /// Creates the journal directory and binds the listener.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<MarketServer> {
        std::fs::create_dir_all(&cfg.journal_dir)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(MarketServer {
            listener,
            cfg,
            active: Arc::new(Mutex::new(HashSet::new())),
            hub: Arc::new(Mutex::new(HubState::default())),
        })
    }

    /// The actually-bound address (resolves an ephemeral `:0` port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one handler thread per connection.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            let Ok(stream) = stream else { continue };
            let cfg = self.cfg.clone();
            let active = Arc::clone(&self.active);
            let hub = Arc::clone(&self.hub);
            std::thread::spawn(move || {
                // A dropped peer is a normal way for a connection to end.
                let _ = handle_connection(stream, &cfg, active, hub);
            });
        }
        Ok(())
    }
}

fn handle_connection(
    stream: TcpStream,
    cfg: &ServeConfig,
    active: Arc<Mutex<HashSet<String>>>,
    hub: Hub,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    // The reader half is its own producer thread feeding a bounded
    // channel, mirroring `ingest::ThreadedDriver`: when the market loop
    // goes away the send fails and the producer stops — gracefully.
    let (tx, rx) = mpsc::sync_channel::<Result<Request, String>>(cfg.ingest.capacity.min(4096));
    std::thread::spawn(move || {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if tx.send(parse_request(&line)).is_err() {
                return;
            }
        }
        // EOF (or a read error) quits the session like a polite client.
        let _ = tx.send(Ok(Request::Quit));
    });

    // The conversation starts with `hello` (a driver) or `follow` (a
    // replica feed), either of which names the session.
    let name = loop {
        match rx.recv() {
            Ok(Ok(Request::Hello { session })) => break session,
            Ok(Ok(Request::Follow { session })) => {
                return run_follower_feed(out, &rx, cfg, &hub, &session);
            }
            Ok(Ok(Request::Quit)) | Err(_) => {
                let _ = respond(&mut out, JsonValue::object().field("event", "bye"));
                return Ok(());
            }
            // Server-wide stats work before a session is named, so a
            // monitor like `lovm top` never has to claim one.
            Ok(Ok(Request::Stats)) => respond(&mut out, stats_response(None))?,
            Ok(Ok(_)) => respond(&mut out, error_response("say hello first"))?,
            Ok(Err(msg)) => respond(&mut out, error_response(&msg))?,
        }
    };
    if !active.lock().unwrap().insert(name.clone()) {
        respond(
            &mut out,
            error_response(&format!("session `{name}` is already being served")),
        )?;
        return Ok(());
    }
    let _claim = SessionClaim {
        name: name.clone(),
        active,
    };

    let mut session_cfg = SessionConfig::new(cfg.journal_dir.join(format!("{name}.jsonl")));
    session_cfg.snapshot = Some(cfg.journal_dir.join(format!("{name}.snapshot.json")));
    session_cfg.snapshot_every = cfg.snapshot_every;
    session_cfg.compact_every = cfg.compact_every;
    session_cfg.lovm = cfg.lovm;
    session_cfg.ingest = cfg.ingest;
    // Open under the hub lock: recovery truncates the journal's torn
    // tail, which must not race a follower's bootstrap read.
    let opened = {
        let _ordering = hub.lock().unwrap();
        MarketSession::open(session_cfg)
    };
    let mut session = match opened {
        Ok(s) => s,
        Err(e) => {
            respond(
                &mut out,
                error_response(&format!("cannot open session `{name}`: {e}")),
            )?;
            return Ok(());
        }
    };
    respond(
        &mut out,
        JsonValue::object()
            .field("event", "welcome")
            .field("session", name.as_str())
            .field("rounds", session.rounds_sealed())
            .field("backlog", session.backlog())
            .field("digest", journal::u64_hex(session.digest())),
    )?;

    loop {
        match rx.recv() {
            Ok(Ok(Request::Bid { at, bid })) => {
                let (seq, admission) = session.offer(at, bid)?;
                respond(
                    &mut out,
                    JsonValue::object()
                        .field("event", "bid")
                        .field("seq", seq)
                        .field("admission", admission_name(admission)),
                )?;
            }
            Ok(Ok(Request::Seal)) => {
                // Seal and publish under the hub lock so every follower
                // sees committed batches in seal order, with no window
                // between the fsync and the feed.
                let sealed = {
                    let mut hub_state = hub.lock().unwrap();
                    let sealed = session.seal()?;
                    hub_state.publish(&name, session.take_committed_lines());
                    sealed
                };
                respond(&mut out, sealed_response(&sealed))?;
            }
            Ok(Ok(Request::State)) => respond(&mut out, state_response(&session))?,
            Ok(Ok(Request::Stats)) => respond(&mut out, stats_response(Some(&session)))?,
            Ok(Ok(Request::Hello { .. })) | Ok(Ok(Request::Follow { .. })) => {
                respond(&mut out, error_response("already in a session"))?;
            }
            Ok(Ok(Request::Quit)) | Err(_) => {
                let _ = respond(&mut out, JsonValue::object().field("event", "bye"));
                return Ok(());
            }
            Ok(Err(msg)) => respond(&mut out, error_response(&msg))?,
        }
    }
}

/// Serves one follower connection: bootstrap (the committed journal,
/// verbatim), a `live` marker, then every newly committed round's lines
/// as the leader seals them. Registering the feed and reading the
/// backlog happen under the same hub lock any seal publishes under, so
/// the stream has no duplicates and no gaps.
fn run_follower_feed(
    mut out: TcpStream,
    rx: &mpsc::Receiver<Result<Request, String>>,
    cfg: &ServeConfig,
    hub: &Hub,
    session: &str,
) -> std::io::Result<()> {
    let journal_path = cfg.journal_dir.join(format!("{session}.jsonl"));
    let (backlog, feed_rx) = {
        let mut hub_state = hub.lock().unwrap();
        let backlog = journal::committed_lines(&journal_path)?;
        let (feed_tx, feed_rx) = mpsc::channel::<Vec<String>>();
        hub_state
            .followers
            .entry(session.to_string())
            .or_default()
            .push(feed_tx);
        (backlog, feed_rx)
    };
    respond(
        &mut out,
        JsonValue::object()
            .field("event", "bootstrap")
            .field("session", session)
            .field("lines", backlog.len()),
    )?;
    for line in &backlog {
        let mut framed = line.clone();
        framed.push('\n');
        out.write_all(framed.as_bytes())?;
    }
    respond(&mut out, JsonValue::object().field("event", "live"))?;
    loop {
        match feed_rx.recv_timeout(Duration::from_millis(200)) {
            Ok(batch) => {
                let mut framed = String::new();
                for line in &batch {
                    framed.push_str(line);
                    framed.push('\n');
                }
                out.write_all(framed.as_bytes())?;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Reap a departed follower: its reader thread sends Quit
                // at EOF (or the channel just disconnects).
                match rx.try_recv() {
                    Ok(Ok(Request::Quit)) | Err(mpsc::TryRecvError::Disconnected) => {
                        return Ok(());
                    }
                    Ok(_) => {
                        respond(&mut out, error_response("followers only listen"))?;
                    }
                    Err(mpsc::TryRecvError::Empty) => {}
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lovm-serve-test-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn session_cfg(dir: &Path, snapshot_every: usize) -> SessionConfig {
        let mut cfg = SessionConfig::new(dir.join("market.jsonl"));
        cfg.snapshot = Some(dir.join("market.snapshot.json"));
        cfg.snapshot_every = snapshot_every;
        cfg.lovm = LovmConfig {
            v: 20.0,
            budget_per_round: 2.0,
            max_winners: Some(3),
            ..LovmConfig::default()
        };
        cfg
    }

    /// Deterministic offers for round `r`: a handful of bidders whose
    /// costs/sizes vary by round, timestamped inside the round span.
    fn offers_for_round(r: usize) -> Vec<(f64, Bid)> {
        (0..5)
            .map(|i| {
                let at = r as f64 + (i as f64 + 0.5) / 6.0;
                let cost = 0.6 + ((r * 7 + i * 3) % 11) as f64 * 0.21;
                let data = 80 + ((r * 13 + i * 29) % 300);
                let quality = 0.55 + ((r + i) % 5) as f64 * 0.09;
                (at, Bid::new(i, cost, data, quality))
            })
            .collect()
    }

    fn drive_rounds(
        session: &mut MarketSession,
        rounds: std::ops::Range<usize>,
    ) -> Vec<SealedOutcome> {
        rounds
            .map(|r| {
                for (at, bid) in offers_for_round(r) {
                    session.offer(at, bid).unwrap();
                }
                session.seal().unwrap()
            })
            .collect()
    }

    #[test]
    fn snapshot_every_parses_or_panics() {
        assert_eq!(parse_snapshot_every(None), 8);
        assert_eq!(parse_snapshot_every(Some("0")), 0);
        assert_eq!(parse_snapshot_every(Some(" 12 ")), 12);
        for bad in ["abc", "", "-1", "2.5", "8 rounds"] {
            let result = std::panic::catch_unwind(|| parse_snapshot_every(Some(bad)));
            assert!(result.is_err(), "`{bad}` must panic");
        }
    }

    #[test]
    fn compact_every_parses_or_panics() {
        assert_eq!(parse_compact_every(None), 0);
        assert_eq!(parse_compact_every(Some("0")), 0);
        assert_eq!(parse_compact_every(Some(" 16 ")), 16);
        for bad in ["abc", "", "-1", "2.5", "16 rounds"] {
            let result = std::panic::catch_unwind(|| parse_compact_every(Some(bad)));
            assert!(result.is_err(), "`{bad}` must panic");
        }
        let _ = std::panic::catch_unwind(|| {
            let mut cfg = SessionConfig::new("unused.jsonl");
            cfg.snapshot = None;
            cfg.compact_every = 2;
            let _ = MarketSession::open(cfg);
        })
        .expect_err("compaction without snapshots must panic");
    }

    /// The tentpole bound: with compaction on, sealing many more rounds
    /// than the snapshot cadence keeps the on-disk journal pinned to the
    /// post-snapshot suffix — while state, recovery, and continuation
    /// stay bit-identical to an uncompacted twin.
    #[test]
    fn compaction_bounds_the_journal() {
        let full_dir = temp_dir("nocompact");
        let comp_dir = temp_dir("compact");
        let mut full = MarketSession::open(session_cfg(&full_dir, 2)).unwrap();
        let mut comp_cfg = session_cfg(&comp_dir, 2);
        comp_cfg.compact_every = 2;
        let mut compacted = MarketSession::open(comp_cfg.clone()).unwrap();

        const ROUNDS: usize = 24;
        let full_out = drive_rounds(&mut full, 0..ROUNDS);
        let comp_out = drive_rounds(&mut compacted, 0..ROUNDS);
        assert_eq!(comp_out, full_out);
        assert_eq!(compacted.digest(), full.digest());
        assert_eq!(compacted.journal_events(), full.journal_events());

        // The journal is bounded by the cadences, not by history length:
        // at most snapshot_every + compact_every rounds of suffix remain
        // (7 lines per round here), versus 24 rounds in the twin.
        let full_bytes = std::fs::metadata(full_dir.join("market.jsonl"))
            .unwrap()
            .len();
        let comp_bytes = std::fs::metadata(comp_dir.join("market.jsonl"))
            .unwrap()
            .len();
        assert!(
            comp_bytes * 4 < full_bytes,
            "compaction must bound the journal: {comp_bytes} vs {full_bytes} bytes"
        );
        let meta = journal::scan_meta(comp_dir.join("market.jsonl")).unwrap();
        let base = meta.base.clone().expect("a compacted journal has a base");
        assert!(base.events > 0, "the base must cover a nonempty prefix");
        assert!(
            meta.committed_events - meta.base_events() <= 7 * 4,
            "suffix holds {} events, more than the cadence bound",
            meta.committed_events - meta.base_events()
        );

        // Crash with un-sealed arrivals in flight; the reopened session
        // recovers from the compacted journal and continues bitwise.
        for (at, bid) in offers_for_round(ROUNDS) {
            compacted.offer(at, bid).unwrap();
        }
        drop(compacted);
        let mut recovered = MarketSession::open(comp_cfg).unwrap();
        assert_eq!(recovered.recovered_rounds(), ROUNDS);
        assert_eq!(recovered.digest(), full.digest());
        let cont = drive_rounds(&mut recovered, ROUNDS..ROUNDS + 2);
        let full_cont = drive_rounds(&mut full, ROUNDS..ROUNDS + 2);
        assert_eq!(cont, full_cont);
        assert_eq!(recovered.welfare().to_bits(), full.welfare().to_bits());
        std::fs::remove_dir_all(&full_dir).ok();
        std::fs::remove_dir_all(&comp_dir).ok();
    }

    /// The replication contract end to end, minus the sockets: bootstrap
    /// a follower from the leader's committed journal, stream each
    /// sealed round's batch through `apply_replicated`, kill the leader,
    /// promote the follower, and the promoted session continues
    /// bit-identically with a reference that never crashed.
    #[test]
    fn follower_replays_and_promotes_bit_identically() {
        let leader_dir = temp_dir("leader");
        let follower_dir = temp_dir("follower");
        let mut leader_cfg = session_cfg(&leader_dir, 2);
        leader_cfg.compact_every = 2;
        let mut leader = MarketSession::open(leader_cfg).unwrap();
        drive_rounds(&mut leader, 0..3);

        // Bootstrap: the leader's committed journal, written verbatim
        // (compaction header included) into the follower's journal.
        let backlog = journal::committed_lines(leader_dir.join("market.jsonl")).unwrap();
        let mut text = String::new();
        for line in &backlog {
            text.push_str(line);
            text.push('\n');
        }
        std::fs::write(follower_dir.join("market.jsonl"), text).unwrap();
        let mut follower_cfg = session_cfg(&follower_dir, 2);
        follower_cfg.compact_every = 2;
        let mut follower = MarketSession::open(follower_cfg.clone()).unwrap();
        assert_eq!(follower.rounds_sealed(), 3);
        assert_eq!(follower.digest(), leader.digest());

        // Live: every sealed round's committed batch replays through the
        // same code path, the journaled digest checked at each outcome.
        for r in 3..6 {
            for (at, bid) in offers_for_round(r) {
                leader.offer(at, bid).unwrap();
            }
            let sealed = leader.seal().unwrap();
            let batch = leader.take_committed_lines();
            assert!(!batch.is_empty(), "a seal publishes its lines");
            let mut committed = None;
            for line in &batch {
                if let Some(commit) = follower.apply_replicated(line).unwrap() {
                    committed = Some(commit);
                }
            }
            assert_eq!(committed, Some((r, sealed.digest)));
            assert_eq!(follower.digest(), leader.digest());
            assert_eq!(follower.backlog().to_bits(), leader.backlog().to_bits());
        }

        // The leader dies; promotion is just opening the replica journal
        // as a serving session.
        let dead_digest = leader.digest();
        let dead_welfare = leader.welfare();
        drop(leader);
        drop(follower);
        let mut promoted = MarketSession::open(follower_cfg).unwrap();
        assert_eq!(promoted.recovered_rounds(), 6);
        assert_eq!(promoted.digest(), dead_digest);
        assert_eq!(promoted.welfare().to_bits(), dead_welfare.to_bits());

        let cont = drive_rounds(&mut promoted, 6..8);
        let ref_dir = temp_dir("follower-ref");
        let mut reference = MarketSession::open(session_cfg(&ref_dir, 2)).unwrap();
        let expect = drive_rounds(&mut reference, 0..8);
        assert_eq!(cont, expect[6..].to_vec());
        assert_eq!(promoted.digest(), reference.digest());
        std::fs::remove_dir_all(&leader_dir).ok();
        std::fs::remove_dir_all(&follower_dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }

    /// The tentpole contract: kill a session mid-round, reopen it, and
    /// the recovered server continues bit-identically with a reference
    /// that never crashed — with and without snapshots in play.
    #[test]
    fn crash_recovery_is_bit_identical() {
        for snapshot_every in [0usize, 2] {
            let ref_dir = temp_dir("ref");
            let crash_dir = temp_dir("crash");
            let mut reference = MarketSession::open(session_cfg(&ref_dir, snapshot_every)).unwrap();
            let ref_outcomes = drive_rounds(&mut reference, 0..7);

            let mut victim = MarketSession::open(session_cfg(&crash_dir, snapshot_every)).unwrap();
            let pre_crash = drive_rounds(&mut victim, 0..4);
            assert_eq!(pre_crash, ref_outcomes[..4].to_vec());
            // Round 4 in flight: arrivals journaled but never sealed —
            // then the crash (drop without sealing).
            for (at, bid) in offers_for_round(4) {
                victim.offer(at, bid).unwrap();
            }
            drop(victim);

            let mut recovered =
                MarketSession::open(session_cfg(&crash_dir, snapshot_every)).unwrap();
            assert_eq!(recovered.recovered_rounds(), 4);
            assert_eq!(recovered.digest(), ref_outcomes[3].digest);
            assert_eq!(
                recovered.backlog().to_bits(),
                ref_outcomes[3].backlog.to_bits()
            );
            // The unsealed arrivals were truncated; the client re-sends
            // them and the continuation matches the reference bitwise.
            let continued = drive_rounds(&mut recovered, 4..7);
            assert_eq!(continued, ref_outcomes[4..].to_vec());
            assert_eq!(recovered.digest(), reference.digest());
            assert_eq!(recovered.welfare().to_bits(), reference.welfare().to_bits());
            assert_eq!(
                recovered.total_spend().to_bits(),
                reference.total_spend().to_bits()
            );
            std::fs::remove_dir_all(&ref_dir).ok();
            std::fs::remove_dir_all(&crash_dir).ok();
        }
    }

    /// A recovery-of-a-recovery is still exact (the journal keeps
    /// growing across generations of the process).
    #[test]
    fn repeated_recoveries_keep_continuing() {
        let dir = temp_dir("regen");
        let mut all = Vec::new();
        for generation in 0..4usize {
            let mut session = MarketSession::open(session_cfg(&dir, 2)).unwrap();
            assert_eq!(session.rounds_sealed(), generation * 2);
            all.extend(drive_rounds(
                &mut session,
                generation * 2..generation * 2 + 2,
            ));
        }
        let ref_dir = temp_dir("regen-ref");
        let mut reference = MarketSession::open(session_cfg(&ref_dir, 2)).unwrap();
        let expect = drive_rounds(&mut reference, 0..8);
        assert_eq!(all, expect);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }

    /// A snapshot pointing past the journal's committed prefix (its
    /// fsynced rename survived a crash that tore the journal tail) is
    /// ignored and recovery falls back to full replay.
    #[test]
    fn snapshot_ahead_of_journal_falls_back_to_replay() {
        let dir = temp_dir("ahead");
        let mut session = MarketSession::open(session_cfg(&dir, 2)).unwrap();
        drive_rounds(&mut session, 0..4);
        let digest_r2 = {
            // Reference digest at round 2: replay a fresh twin.
            let tw = temp_dir("ahead-twin");
            let mut twin = MarketSession::open(session_cfg(&tw, 0)).unwrap();
            let outs = drive_rounds(&mut twin, 0..2);
            std::fs::remove_dir_all(&tw).ok();
            outs[1].digest
        };
        drop(session);
        // Truncate the journal back to round 1's outcome while keeping
        // the (now too-new) snapshot from round 3 in place.
        let journal_path = dir.join("market.jsonl");
        let lines = journal::committed_lines(&journal_path).unwrap();
        let keep: Vec<&String> = {
            let mut outcomes = 0;
            lines
                .iter()
                .take_while(|l| {
                    let done = outcomes >= 2;
                    if l.contains("\"event\":\"outcome\"") {
                        outcomes += 1;
                    }
                    !done
                })
                .collect()
        };
        let mut text = keep
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        text.push('\n');
        std::fs::write(&journal_path, text).unwrap();
        let recovered = MarketSession::open(session_cfg(&dir, 2)).unwrap();
        assert_eq!(recovered.recovered_rounds(), 2);
        assert_eq!(recovered.digest(), digest_r2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_parsing_is_total() {
        assert_eq!(
            parse_request(r#"{"cmd":"hello","session":"m-1"}"#),
            Ok(Request::Hello {
                session: "m-1".into()
            })
        );
        assert_eq!(
            parse_request(
                r#"{"cmd":"bid","at":0.5,"bidder":3,"cost":1.25,"data":100,"quality":0.9}"#
            ),
            Ok(Request::Bid {
                at: 0.5,
                bid: Bid::new(3, 1.25, 100, 0.9)
            })
        );
        assert_eq!(parse_request(r#"{"cmd":"seal"}"#), Ok(Request::Seal));
        assert_eq!(parse_request(r#"{"cmd":"state"}"#), Ok(Request::State));
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#), Ok(Request::Stats));
        assert_eq!(parse_request(r#"{"cmd":"quit"}"#), Ok(Request::Quit));
        // Hostile input errors instead of panicking (out-of-domain bids
        // would assert inside Bid::new).
        for bad in [
            "not json",
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"hello","session":"../escape"}"#,
            r#"{"cmd":"hello","session":""}"#,
            r#"{"cmd":"bid","at":0.5,"bidder":0,"cost":-1,"data":1,"quality":0.5}"#,
            r#"{"cmd":"bid","at":0.5,"bidder":0,"cost":1,"data":1,"quality":1.5}"#,
            r#"{"cmd":"bid","at":1e999,"bidder":0,"cost":1,"data":1,"quality":0.5}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    fn send(out: &mut TcpStream, line: &str) {
        out.write_all(line.as_bytes()).unwrap();
        out.write_all(b"\n").unwrap();
    }

    fn read_event(reader: &mut BufReader<TcpStream>) -> JsonValue {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        JsonValue::parse(line.trim()).unwrap()
    }

    /// End-to-end over real sockets: a session drives rounds, quits,
    /// reconnects, and resumes with the same digest; a concurrent claim
    /// of a busy session name is refused.
    #[test]
    fn tcp_sessions_survive_reconnection() {
        let dir = temp_dir("tcp");
        let server = MarketServer::bind(ServeConfig::new("127.0.0.1:0", &dir)).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let connect = || {
            let stream = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            (stream, reader)
        };
        let (mut out, mut reader) = connect();
        send(&mut out, r#"{"cmd":"hello","session":"alpha"}"#);
        let welcome = read_event(&mut reader);
        assert_eq!(welcome.get("event").unwrap().as_str(), Some("welcome"));
        assert_eq!(welcome.get("rounds").unwrap().as_usize(), Some(0));

        // A second connection cannot claim the same live session.
        let (mut out2, mut reader2) = connect();
        send(&mut out2, r#"{"cmd":"hello","session":"alpha"}"#);
        let refused = read_event(&mut reader2);
        assert_eq!(refused.get("event").unwrap().as_str(), Some("error"));
        drop((out2, reader2));

        for (at, bid) in offers_for_round(0) {
            send(
                &mut out,
                &format!(
                    r#"{{"cmd":"bid","at":{at},"bidder":{},"cost":{},"data":{},"quality":{}}}"#,
                    bid.bidder, bid.cost, bid.data_size, bid.quality
                ),
            );
            let ack = read_event(&mut reader);
            assert_eq!(ack.get("event").unwrap().as_str(), Some("bid"));
            assert_eq!(ack.get("admission").unwrap().as_str(), Some("stored"));
        }
        send(&mut out, r#"{"cmd":"seal"}"#);
        let sealed = read_event(&mut reader);
        assert_eq!(sealed.get("event").unwrap().as_str(), Some("sealed"));
        assert_eq!(sealed.get("round").unwrap().as_usize(), Some(0));
        let digest = sealed.get("digest").unwrap().as_str().unwrap().to_string();
        send(&mut out, r#"{"cmd":"quit"}"#);
        let bye = read_event(&mut reader);
        assert_eq!(bye.get("event").unwrap().as_str(), Some("bye"));
        drop((out, reader));

        // Reconnect: the journal brings the session back, same digest.
        let (mut out, mut reader) = connect();
        send(&mut out, r#"{"cmd":"hello","session":"alpha"}"#);
        let welcome = read_event(&mut reader);
        assert_eq!(welcome.get("rounds").unwrap().as_usize(), Some(1));
        assert_eq!(
            welcome.get("digest").unwrap().as_str(),
            Some(digest.as_str())
        );
        // Garbage on the wire is answered, not fatal.
        send(&mut out, "not json at all");
        let err = read_event(&mut reader);
        assert_eq!(err.get("event").unwrap().as_str(), Some("error"));
        send(&mut out, r#"{"cmd":"state"}"#);
        let state = read_event(&mut reader);
        assert_eq!(state.get("event").unwrap().as_str(), Some("state"));
        assert_eq!(state.get("rounds").unwrap().as_usize(), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite: the session-lifetime rollup conserves — every offered
    /// arrival lands in exactly one of the totals' buckets — and a
    /// recovered session rebuilds the identical rollup by replay.
    #[test]
    fn stream_totals_conserve_and_survive_recovery() {
        let dir = temp_dir("totals");
        let mut cfg = session_cfg(&dir, 2);
        // A tight deadline with deferral so the rollup sees more than
        // the happy path: late bids defer, re-bids supersede them.
        cfg.ingest.deadline = 0.6;
        cfg.ingest.late_policy = ingest::LateBidPolicy::DeferToNext;
        let mut session = MarketSession::open(cfg.clone()).unwrap();
        let mut offered = 0usize;
        let mut per_round = Vec::new();
        for r in 0..6usize {
            for k in 0..10usize {
                let at = r as f64 + (k as f64 + 0.5) / 10.0;
                let bid = Bid::new(k % 6, 0.8 + k as f64 * 0.1, 100 + 10 * k, 0.8);
                session.offer(at, bid).unwrap();
                offered += 1;
            }
            per_round.push(session.seal().unwrap().stats);
        }
        // One empty flush seal so the final round's deferred bids land
        // in a sealed set instead of sitting outstanding.
        per_round.push(session.seal().unwrap().stats);
        let totals = *session.stream_totals();
        assert_eq!(totals, StreamTotals::from_rounds(&per_round));
        assert_eq!(totals.rounds, 7);
        assert!(totals.deferred > 0, "the deadline must defer some bids");
        assert!(totals.superseded > 0, "re-bids must supersede deferrals");
        // Conservation: every offered arrival sealed, dropped, was
        // superseded, or was shed — nothing vanishes or double-counts.
        assert_eq!(
            totals.sealed + totals.dropped + totals.superseded + totals.shed,
            offered
        );
        drop(session);
        let recovered = MarketSession::open(cfg).unwrap();
        assert_eq!(*recovered.stream_totals(), totals);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The `stats` command answers both before `hello` (registry only)
    /// and inside a session (adding the lifetime rollup), and the
    /// response parses back through the same JSON layer.
    #[test]
    fn tcp_stats_reports_registry_and_session_totals() {
        let dir = temp_dir("tcp-stats");
        let server = MarketServer::bind(ServeConfig::new("127.0.0.1:0", &dir)).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut out = stream;

        // Pre-hello: a monitor polls server-wide stats without claiming
        // a session.
        send(&mut out, r#"{"cmd":"stats"}"#);
        let stats = read_event(&mut reader);
        assert_eq!(stats.get("event").unwrap().as_str(), Some("stats"));
        let registry = stats.get("registry").expect("stats carries the registry");
        for key in ["enabled", "counters", "gauges", "hists"] {
            assert!(registry.get(key).is_some(), "registry missing {key}");
        }
        assert!(stats.get("session").is_none(), "no session claimed yet");

        send(&mut out, r#"{"cmd":"hello","session":"gamma"}"#);
        read_event(&mut reader);
        for round in 0..2 {
            for (at, bid) in offers_for_round(round) {
                send(
                    &mut out,
                    &format!(
                        r#"{{"cmd":"bid","at":{at},"bidder":{},"cost":{},"data":{},"quality":{}}}"#,
                        bid.bidder, bid.cost, bid.data_size, bid.quality
                    ),
                );
                read_event(&mut reader);
            }
            send(&mut out, r#"{"cmd":"seal"}"#);
            read_event(&mut reader);
        }
        send(&mut out, r#"{"cmd":"stats"}"#);
        let stats = read_event(&mut reader);
        let session = stats.get("session").expect("in-session stats add totals");
        assert_eq!(session.get("rounds").unwrap().as_usize(), Some(2));
        let totals = session.get("totals").unwrap();
        assert_eq!(totals.get("rounds").unwrap().as_usize(), Some(2));
        assert_eq!(totals.get("arrivals").unwrap().as_usize(), Some(10));
        assert_eq!(totals.get("sealed").unwrap().as_usize(), Some(10));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn read_raw_line(reader: &mut BufReader<TcpStream>) -> String {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end_matches('\n').to_string()
    }

    /// Over real sockets: a `follow` connection bootstraps the committed
    /// journal verbatim, goes live, and then receives every newly sealed
    /// round's lines — ending in the outcome whose digest the driver saw.
    #[test]
    fn tcp_follower_streams_committed_lines() {
        let dir = temp_dir("tcp-follow");
        let server = MarketServer::bind(ServeConfig::new("127.0.0.1:0", &dir)).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());
        let connect = || {
            let stream = TcpStream::connect(addr).unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            (stream, reader)
        };

        // A driver seals round 0 first, so the follower has a backlog.
        let (mut out, mut reader) = connect();
        send(&mut out, r#"{"cmd":"hello","session":"beta"}"#);
        read_event(&mut reader);
        for (at, bid) in offers_for_round(0) {
            send(
                &mut out,
                &format!(
                    r#"{{"cmd":"bid","at":{at},"bidder":{},"cost":{},"data":{},"quality":{}}}"#,
                    bid.bidder, bid.cost, bid.data_size, bid.quality
                ),
            );
            read_event(&mut reader);
        }
        send(&mut out, r#"{"cmd":"seal"}"#);
        read_event(&mut reader);

        let (mut fout, mut freader) = connect();
        send(&mut fout, r#"{"cmd":"follow","session":"beta"}"#);
        let boot = read_event(&mut freader);
        assert_eq!(boot.get("event").unwrap().as_str(), Some("bootstrap"));
        let n = boot.get("lines").unwrap().as_usize().unwrap();
        let backlog: Vec<String> = (0..n).map(|_| read_raw_line(&mut freader)).collect();
        assert_eq!(
            backlog,
            journal::committed_lines(dir.join("beta.jsonl")).unwrap(),
            "bootstrap must be the committed journal, byte for byte"
        );
        let live = read_event(&mut freader);
        assert_eq!(live.get("event").unwrap().as_str(), Some("live"));

        // Seal round 1 on the driver; the batch streams to the follower.
        for (at, bid) in offers_for_round(1) {
            send(
                &mut out,
                &format!(
                    r#"{{"cmd":"bid","at":{at},"bidder":{},"cost":{},"data":{},"quality":{}}}"#,
                    bid.bidder, bid.cost, bid.data_size, bid.quality
                ),
            );
            read_event(&mut reader);
        }
        send(&mut out, r#"{"cmd":"seal"}"#);
        let sealed = read_event(&mut reader);
        let digest = sealed.get("digest").unwrap().as_str().unwrap().to_string();
        // 5 arrivals + seal + outcome = 7 lines, outcome last.
        let batch: Vec<String> = (0..7).map(|_| read_raw_line(&mut freader)).collect();
        let outcome = JournalEvent::parse_line(batch.last().unwrap()).unwrap();
        match outcome {
            JournalEvent::Outcome {
                round,
                digest: journaled,
                ..
            } => {
                assert_eq!(round, 1);
                assert_eq!(journal::u64_hex(journaled), digest);
            }
            other => panic!("the batch must end in the outcome, got {other:?}"),
        }
        drop((fout, freader, out, reader));
        std::fs::remove_dir_all(&dir).ok();
    }
}
