//! The marketplace simulator: availability + energy + bids → mechanism →
//! telemetry.

use crate::ledger::EconomicLedger;
use crate::mechanism::{Mechanism, RoundInfo};
use auction::bid::Bid;
use auction::outcome::AuctionOutcome;
use energy::battery::Battery;
use energy::harvest::Harvester;
use metrics::series::SeriesSet;
use workload::availability::AvailabilityProcess;
use workload::population::{generate, ClientProfile};
use workload::Scenario;

/// Per-client energy state in the market (only for populations with energy
/// groups).
#[derive(Debug)]
struct EnergyState {
    battery: Battery,
    harvester: Harvester,
}

/// A live marketplace over a scenario: who is present, who has energy, and
/// what they bid.
#[derive(Debug)]
pub struct Market {
    profiles: Vec<ClientProfile>,
    availability: AvailabilityProcess,
    energy: Vec<Option<EnergyState>>,
    training_energy: f64,
    misreport: Option<(usize, f64)>,
    uniform_misreport: Option<f64>,
}

impl Market {
    /// Builds the market for a scenario, deterministically per seed.
    pub fn new(scenario: &Scenario, seed: u64) -> Self {
        let profiles = generate(&scenario.population, seed);
        Self::with_profiles(scenario, profiles, seed)
    }

    /// Builds the market with explicit client profiles (e.g. profiles whose
    /// data sizes were aligned to real federated shards).
    pub fn with_profiles(scenario: &Scenario, profiles: Vec<ClientProfile>, seed: u64) -> Self {
        let availability = AvailabilityProcess::new(
            scenario.availability,
            profiles.len(),
            seed.wrapping_add(0x5EED_ABA1),
        );
        let energy = profiles
            .iter()
            .map(|p| {
                p.energy.map(|g| EnergyState {
                    battery: Battery::with_level(g.battery_capacity, g.battery_capacity),
                    harvester: Harvester::new(
                        g.harvester,
                        seed.wrapping_mul(0x9E37_79B9).wrapping_add(p.id as u64),
                    ),
                })
            })
            .collect();
        Market {
            profiles,
            availability,
            energy,
            training_energy: scenario.training_energy,
            misreport: None,
            uniform_misreport: None,
        }
    }

    /// Makes one client misreport its cost by a multiplicative factor in
    /// every round (for truthfulness probes).
    pub fn with_misreport(mut self, bidder: usize, factor: f64) -> Self {
        self.misreport = Some((bidder, factor));
        self
    }

    /// Makes *every* client misreport by the same factor — models a
    /// strategic population facing a non-truthful mechanism (e.g. uniform
    /// bid inflation against pay-as-bid rules).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn with_uniform_misreport(mut self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be >= 0");
        self.uniform_misreport = Some(factor);
        self
    }

    /// The immutable client profiles.
    pub fn profiles(&self) -> &[ClientProfile] {
        &self.profiles
    }

    /// True cost of a client.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn true_cost(&self, id: usize) -> f64 {
        self.profiles[id].true_cost
    }

    /// Advances one round: harvests energy, samples presence, and returns
    /// the sealed bids of clients that are present *and* energy-capable.
    pub fn round_bids(&mut self) -> Vec<Bid> {
        // Harvest for everyone (energy arrives whether or not you bid).
        for state in self.energy.iter_mut().flatten() {
            let e = state.harvester.step();
            state.battery.charge(e);
        }
        let present = self.availability.step();
        present
            .into_iter()
            .filter(|&id| match &self.energy[id] {
                Some(s) => s.battery.can_supply(self.training_energy),
                None => true,
            })
            .map(|id| {
                let p = &self.profiles[id];
                match (self.misreport, self.uniform_misreport) {
                    (Some((b, f)), _) if b == id => p.misreport_bid(f),
                    (_, Some(f)) => p.misreport_bid(f),
                    _ => p.truthful_bid(),
                }
            })
            .collect()
    }

    /// Consumes training energy for the given winners.
    pub fn consume_energy(&mut self, winners: &[usize]) {
        for &id in winners {
            if let Some(state) = self.energy.get_mut(id).and_then(|s| s.as_mut()) {
                // Winners were filtered by can_supply, so this succeeds.
                let ok = state.battery.try_consume(self.training_energy);
                debug_assert!(ok, "winner {id} lacked energy it bid with");
            }
        }
    }
}

/// Everything a simulated run produced.
#[derive(Debug)]
pub struct SimulationResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// Scenario name.
    pub scenario: String,
    /// Per-round series: `spend`, `welfare`, `value`, `winners`, `backlog`
    /// (when the mechanism exposes one), `avg_spend` (running average).
    pub series: SeriesSet,
    /// Aggregated economics.
    pub ledger: EconomicLedger,
    /// Raw per-round outcomes.
    pub outcomes: Vec<AuctionOutcome>,
    /// The sealed bids of every round (the offline oracle replays these).
    pub bids_per_round: Vec<Vec<Bid>>,
}

impl SimulationResult {
    /// Cumulative realized social welfare trajectory.
    pub fn cumulative_welfare(&self) -> Vec<f64> {
        self.series
            .cumulative("welfare")
            .expect("welfare series always recorded")
    }

    /// Time-average spend trajectory.
    pub fn average_spend(&self) -> Vec<f64> {
        self.series
            .get("avg_spend")
            .expect("avg_spend series always recorded")
            .to_vec()
    }
}

/// Runs a mechanism over a scenario. The mechanism is `reset` first so the
/// same instance can be reused across seeds.
pub fn simulate(mechanism: &mut dyn Mechanism, scenario: &Scenario, seed: u64) -> SimulationResult {
    simulate_market(mechanism, scenario, Market::new(scenario, seed))
}

/// Runs one scenario across many seeds in parallel on [`par::Pool::auto`],
/// returning results in seed order.
///
/// `factory` builds a fresh mechanism per seed (each worker owns its
/// mechanism, so no state leaks between seeds). Because every seed's run is
/// fully determined by its own RNG streams and results are collected in
/// seed order, the output is bit-identical to running the seeds serially.
pub fn simulate_seeds<F>(factory: F, scenario: &Scenario, seeds: &[u64]) -> Vec<SimulationResult>
where
    F: Fn() -> Box<dyn Mechanism> + Sync,
{
    simulate_seeds_on(factory, scenario, seeds, par::Pool::auto())
}

/// [`simulate_seeds`] with an explicit worker pool.
pub fn simulate_seeds_on<F>(
    factory: F,
    scenario: &Scenario,
    seeds: &[u64],
    pool: par::Pool,
) -> Vec<SimulationResult>
where
    F: Fn() -> Box<dyn Mechanism> + Sync,
{
    pool.map(seeds, |&seed| {
        let mut mechanism = factory();
        simulate(mechanism.as_mut(), scenario, seed)
    })
}

/// Runs a mechanism over an explicit (possibly misreporting) market.
pub fn simulate_market(
    mechanism: &mut dyn Mechanism,
    scenario: &Scenario,
    mut market: Market,
) -> SimulationResult {
    mechanism.reset();
    let mut series = SeriesSet::new();
    let mut ledger = EconomicLedger::new();
    let mut outcomes = Vec::with_capacity(scenario.horizon);
    let mut bids_per_round = Vec::with_capacity(scenario.horizon);
    let mut spent = 0.0;
    let mut spend_sum = 0.0;

    for round in 0..scenario.horizon {
        let bids = market.round_bids();
        let info = RoundInfo {
            round,
            horizon: scenario.horizon,
            total_budget: scenario.total_budget,
            spent_so_far: spent,
        };
        let outcome = mechanism.select(&info, &bids);
        let winner_ids = outcome.winner_ids();
        market.consume_energy(&winner_ids);

        let spend = outcome.total_payment();
        spent += spend;
        spend_sum += spend;
        let true_welfare: f64 = outcome
            .winners
            .iter()
            .map(|w| w.value - market.true_cost(w.bidder))
            .sum();

        series.push("spend", spend);
        series.push("avg_spend", spend_sum / (round + 1) as f64);
        series.push("welfare", true_welfare);
        series.push("value", outcome.total_value());
        series.push("winners", winner_ids.len() as f64);
        if let Some(b) = mechanism.backlog() {
            series.push("backlog", b);
        }

        ledger.record(&outcome, |id| market.true_cost(id));
        outcomes.push(outcome);
        bids_per_round.push(bids);
    }

    ledger
        .check_invariants()
        .expect("ledger invariants must hold after a run");

    SimulationResult {
        mechanism: mechanism.name(),
        scenario: scenario.name.clone(),
        series,
        ledger,
        outcomes,
        bids_per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lovm::{Lovm, LovmConfig};

    #[test]
    fn simulate_small_scenario_runs() {
        let scenario = Scenario::small();
        let mut mech = Lovm::new(LovmConfig::for_scenario(&scenario, 20.0));
        let r = simulate(&mut mech, &scenario, 1);
        assert_eq!(r.outcomes.len(), 200);
        assert_eq!(r.bids_per_round.len(), 200);
        assert_eq!(r.series.get("spend").unwrap().len(), 200);
        assert_eq!(r.series.get("backlog").unwrap().len(), 200);
        assert!(r.ledger.total_payment() > 0.0);
        assert_eq!(r.mechanism, "LOVM(V=20)");
        assert_eq!(r.scenario, "small");
    }

    #[test]
    fn long_term_budget_met_on_average() {
        let scenario = Scenario::small();
        let mut mech = Lovm::new(LovmConfig::for_scenario(&scenario, 10.0));
        let r = simulate(&mut mech, &scenario, 2);
        let avg = r.average_spend();
        let final_avg = *avg.last().unwrap();
        assert!(
            final_avg <= scenario.budget_per_round() * 1.1,
            "avg spend {final_avg} vs rate {}",
            scenario.budget_per_round()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let scenario = Scenario::small();
        let mut m1 = Lovm::new(LovmConfig::for_scenario(&scenario, 20.0));
        let mut m2 = Lovm::new(LovmConfig::for_scenario(&scenario, 20.0));
        let a = simulate(&mut m1, &scenario, 7);
        let b = simulate(&mut m2, &scenario, 7);
        assert_eq!(a.cumulative_welfare(), b.cumulative_welfare());
        assert_eq!(a.ledger, b.ledger);
    }

    #[test]
    fn reset_between_runs() {
        // Re-running the same mechanism instance gives identical results
        // because simulate() resets it.
        let scenario = Scenario::small();
        let mut mech = Lovm::new(LovmConfig::for_scenario(&scenario, 20.0));
        let a = simulate(&mut mech, &scenario, 3);
        let b = simulate(&mut mech, &scenario, 3);
        assert_eq!(a.ledger, b.ledger);
    }

    #[test]
    fn energy_scenario_limits_bidders() {
        let scenario = Scenario::energy_heterogeneous();
        let mut market = Market::new(&scenario, 5);
        // Drain everyone's initial charge by winning repeatedly.
        let all: Vec<usize> = (0..scenario.population.num_clients).collect();
        let first = market.round_bids().len();
        assert_eq!(first, scenario.population.num_clients); // all start charged
        market.consume_energy(&all);
        market.consume_energy(&all); // second consume drains remaining capacity
        let later = market.round_bids().len();
        assert!(
            later < first,
            "slow harvesters should be unable to bid: {later} vs {first}"
        );
    }

    #[test]
    fn uniform_misreport_scales_all_bids() {
        let scenario = Scenario::small();
        let mut honest = Market::new(&scenario, 9);
        let mut inflated = Market::new(&scenario, 9).with_uniform_misreport(1.5);
        let hb = honest.round_bids();
        let ib = inflated.round_bids();
        for (h, i) in hb.iter().zip(ib.iter()) {
            assert!((i.cost - 1.5 * h.cost).abs() < 1e-12);
        }
    }

    #[test]
    fn misreport_market_changes_one_bid() {
        let scenario = Scenario::small();
        let mut honest = Market::new(&scenario, 9);
        let mut liar = Market::new(&scenario, 9).with_misreport(0, 2.0);
        let hb = honest.round_bids();
        let lb = liar.round_bids();
        assert_eq!(hb.len(), lb.len());
        let h0 = hb.iter().find(|b| b.bidder == 0).unwrap();
        let l0 = lb.iter().find(|b| b.bidder == 0).unwrap();
        assert!((l0.cost - 2.0 * h0.cost).abs() < 1e-12);
        for (h, l) in hb.iter().zip(lb.iter()) {
            if h.bidder != 0 {
                assert_eq!(h.cost, l.cost);
            }
        }
    }
}
