//! Market-coupled streaming: live bid arrivals → sealed rounds → the
//! mechanism.
//!
//! The batch simulator ([`crate::simulation::simulate`]) hands the
//! mechanism each round's complete bid vector; this module feeds it
//! through the event-driven ingestion loop (`crates/ingest`) instead. A
//! [`MarketStream`] timestamps every present client's bid with a seeded
//! arrival offset inside the round span; the [`ingest::RoundCollector`]
//! applies the deadline, late-bid policy, and backpressure; each sealed
//! round flows through the existing (topology-aware) VCG path; and the
//! winners' energy draw feeds back into the next round's market.
//!
//! **Batch equivalence.** With a deadline of 1.0 every arrival beats its
//! round's seal, the sealed set is exactly the batch bid vector in the
//! same canonical ascending-bidder order, and the streamed run is
//! *bit-identical* to [`crate::simulation::simulate`] — outcomes,
//! payments, queue trajectory, ledger. Tighter deadlines change *which*
//! bids each auction sees, never how the auction computes: all
//! determinism contracts (worker count, shard count) carry over unchanged.
//!
//! **Backpressure.** The loop is pull-based: arrivals for round `t + 1`
//! are only offered after round `t`'s consumer (auction, or auction +
//! training in [`crate::orchestrator::run_fl_stream`]) finished. A bounded
//! buffer with [`ingest::Backpressure::Shed`] therefore bounds ingestion
//! memory regardless of how fast bids arrive; what the consumer cannot
//! absorb shows up in the `shed` statistic instead of in resident memory.

use crate::mechanism::{Mechanism, RoundInfo};
use crate::simulation::{Market, SimulationResult};
use auction::outcome::AuctionOutcome;
use ingest::{IngestConfig, IngestStats, RoundCollector, StreamTotals};
use metrics::series::SeriesSet;
use simrng::rngs::StdRng;
use simrng::{derive_seed, RngExt, SeedableRng};
use workload::arrivals::TimedBid;
use workload::Scenario;

/// Salt separating the arrival-offset RNG stream from every other
/// consumer of the run seed.
const ARRIVAL_SALT: u64 = 0x57_12EA_4B1D_5EED;

/// Wraps a [`Market`] as a source of timestamped arrivals: each round's
/// sealed bids are stamped with seeded offsets uniform in the round span.
///
/// Offsets are drawn from a stream derived per `(seed, round)`, so the
/// market's own randomness (availability, harvest) is untouched — the
/// batch and streamed runs see identical populations.
#[derive(Debug)]
pub struct MarketStream {
    market: Market,
    round_len: f64,
    seed: u64,
}

impl MarketStream {
    /// Wraps a market; `round_len` must match the ingestion config.
    pub fn new(market: Market, round_len: f64, seed: u64) -> Self {
        MarketStream {
            market,
            round_len,
            seed,
        }
    }

    /// Advances the market one round and returns its bids stamped with
    /// arrival offsets in `[round·len, (round+1)·len)`.
    pub fn emit_round(&mut self, round: usize) -> Vec<TimedBid> {
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed ^ ARRIVAL_SALT, round as u64));
        let base = round as f64 * self.round_len;
        // `base + u·len` with u ∈ [0, 1) can round up to exactly the next
        // boundary; clamp strictly inside the span so classification never
        // flips on a rounding ulp.
        let below_next = (base + self.round_len).next_down();
        self.market
            .round_bids()
            .into_iter()
            .map(|bid| TimedBid {
                at: (base + rng.random::<f64>() * self.round_len).min(below_next),
                bid,
            })
            .collect()
    }

    /// Winners consume training energy (feeds next round's availability).
    pub fn consume_energy(&mut self, winners: &[usize]) {
        self.market.consume_energy(winners);
    }

    /// True cost of a client (for realized-welfare accounting).
    pub fn true_cost(&self, id: usize) -> f64 {
        self.market.true_cost(id)
    }
}

/// Everything a streamed run produced: the economic result plus the
/// ingestion telemetry.
#[derive(Debug)]
pub struct StreamResult {
    /// The same shape the batch simulator returns (series additionally
    /// carry `arrivals`, `admitted`, `deferred`, `dropped`, `shed`,
    /// `buffer_peak`).
    pub result: SimulationResult,
    /// Per-round ingestion stats, in round order.
    pub ingest: Vec<IngestStats>,
    /// Whole-stream aggregates.
    pub totals: StreamTotals,
}

/// Runs any mechanism over a live bid stream (see module docs).
///
/// The mechanism is `reset` first, mirroring [`crate::simulation::simulate`].
pub fn run_stream(
    mechanism: &mut dyn Mechanism,
    scenario: &Scenario,
    seed: u64,
    cfg: &IngestConfig,
) -> StreamResult {
    mechanism.reset();
    let name = mechanism.name();
    let market = Market::new(scenario, seed);
    stream_rounds(scenario, market, seed, cfg, name, |info, bids| {
        let outcome = mechanism.select(info, bids);
        let backlog = mechanism.backlog();
        (outcome, backlog)
    })
}

/// The shared streaming round loop: ingestion in front, any per-round
/// selection step behind (`Lovm::run_stream_on` passes a pool-aware step,
/// [`run_stream`] passes `Mechanism::select`, and
/// [`crate::orchestrator::run_fl_stream`] trains the winners inside its
/// step before returning).
pub(crate) fn stream_rounds(
    scenario: &Scenario,
    market: Market,
    seed: u64,
    cfg: &IngestConfig,
    mechanism_name: String,
    mut step: impl FnMut(&RoundInfo, &[auction::bid::Bid]) -> (AuctionOutcome, Option<f64>),
) -> StreamResult {
    cfg.validate();
    let mut stream = MarketStream::new(market, cfg.round_len, seed);
    let mut collector = RoundCollector::new(cfg);
    let mut series = SeriesSet::new();
    let mut ledger = crate::ledger::EconomicLedger::new();
    let mut outcomes = Vec::with_capacity(scenario.horizon);
    let mut bids_per_round = Vec::with_capacity(scenario.horizon);
    let mut ingest_stats = Vec::with_capacity(scenario.horizon);
    let mut spent = 0.0;
    let mut spend_sum = 0.0;

    // Phase clocks for the per-round telemetry record; `None` (and
    // therefore never read) while telemetry is disabled.
    let clock = |on: bool| on.then(std::time::Instant::now);
    let elapsed_ns = |t: Option<std::time::Instant>| {
        t.map_or(0, |t| {
            u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    };

    for round in 0..scenario.horizon {
        let observing = telemetry::enabled();
        let round_start = clock(observing);
        let buffer_start = clock(observing);
        for tb in stream.emit_round(round) {
            collector.offer(tb);
        }
        let buffer_ns = elapsed_ns(buffer_start);
        let seal_start = clock(observing);
        let collected = collector.seal_next();
        let seal_ns = elapsed_ns(seal_start);
        let bids = collected.sealed.bids();
        let info = RoundInfo {
            round,
            horizon: scenario.horizon,
            total_budget: scenario.total_budget,
            spent_so_far: spent,
        };
        let solve_start = clock(observing);
        let (outcome, backlog) = step(&info, bids);
        let solve_ns = elapsed_ns(solve_start);
        let winner_ids = outcome.winner_ids();
        stream.consume_energy(&winner_ids);

        let spend = outcome.total_payment();
        spent += spend;
        spend_sum += spend;
        let true_welfare: f64 = outcome
            .winners
            .iter()
            .map(|w| w.value - stream.true_cost(w.bidder))
            .sum();

        series.push("spend", spend);
        series.push("avg_spend", spend_sum / (round + 1) as f64);
        series.push("welfare", true_welfare);
        series.push("value", outcome.total_value());
        series.push("winners", winner_ids.len() as f64);
        if let Some(b) = backlog {
            series.push("backlog", b);
        }
        push_ingest_series(&mut series, &collected.stats);

        ledger.record(&outcome, |id| stream.true_cost(id));

        if observing {
            let round_ns = elapsed_ns(round_start);
            telemetry::hist!("ingest.buffer_ns").record(buffer_ns);
            telemetry::hist!("round.total_ns").record(round_ns);
            crate::obs::RoundObservation {
                source: "stream",
                session: None,
                round,
                stats: &collected.stats,
                winners: winner_ids.len(),
                welfare: outcome.virtual_welfare,
                spend,
                backlog,
                timings: &[
                    ("buffer_ns", buffer_ns),
                    ("seal_ns", seal_ns),
                    ("solve_ns", solve_ns),
                    ("round_ns", round_ns),
                ],
            }
            .record();
        }

        outcomes.push(outcome);
        bids_per_round.push(bids.to_vec());
        ingest_stats.push(collected.stats);
    }

    ledger
        .check_invariants()
        .expect("ledger invariants must hold after a streamed run");

    let totals = StreamTotals::from_rounds(&ingest_stats);
    StreamResult {
        result: SimulationResult {
            mechanism: mechanism_name,
            scenario: scenario.name.clone(),
            series,
            ledger,
            outcomes,
            bids_per_round,
        },
        ingest: ingest_stats,
        totals,
    }
}

/// Appends one round's ingestion stats to the per-round series.
pub(crate) fn push_ingest_series(series: &mut SeriesSet, stats: &IngestStats) {
    series.push("arrivals", stats.arrivals as f64);
    series.push("admitted", (stats.admitted + stats.admitted_late) as f64);
    series.push("deferred", stats.deferred_in as f64);
    series.push("dropped", stats.dropped as f64);
    series.push("shed", stats.shed as f64);
    series.push("buffer_peak", stats.buffer_peak as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lovm::{Lovm, LovmConfig};
    use crate::simulation::simulate;
    use ingest::LateBidPolicy;

    fn lovm(scenario: &Scenario) -> Lovm {
        Lovm::new(LovmConfig::for_scenario(scenario, 20.0))
    }

    #[test]
    fn full_deadline_stream_is_bit_identical_to_batch() {
        let scenario = Scenario::small();
        let seed = 11;
        let batch = simulate(&mut lovm(&scenario), &scenario, seed);
        let streamed = run_stream(
            &mut lovm(&scenario),
            &scenario,
            seed,
            &IngestConfig::default(),
        );
        assert_eq!(batch.outcomes, streamed.result.outcomes);
        assert_eq!(batch.bids_per_round, streamed.result.bids_per_round);
        assert_eq!(batch.ledger, streamed.result.ledger);
        let qa = batch.series.get("backlog").unwrap();
        let qb = streamed.result.series.get("backlog").unwrap();
        assert_eq!(
            qa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            qb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "queue trajectories diverged"
        );
        // Nothing was late, shed, or dropped.
        assert_eq!(streamed.totals.dropped, 0);
        assert_eq!(streamed.totals.shed, 0);
        assert_eq!(streamed.totals.deferred, 0);
        assert_eq!(streamed.totals.sealed, streamed.totals.arrivals);
    }

    #[test]
    fn tight_deadline_drops_bids_but_stays_solvent() {
        let scenario = Scenario::small();
        let cfg = IngestConfig {
            deadline: 0.5,
            late_policy: LateBidPolicy::Drop,
            ..IngestConfig::default()
        };
        let streamed = run_stream(&mut lovm(&scenario), &scenario, 11, &cfg);
        assert!(streamed.totals.dropped > 0, "a 0.5 deadline must drop bids");
        assert!(streamed.totals.sealed > 0);
        // The virtual-queue budget logic is untouched by ingestion.
        let avg = streamed.result.average_spend();
        assert!(*avg.last().unwrap() <= scenario.budget_per_round() * 1.1);
    }

    #[test]
    fn defer_policy_carries_population_across_rounds() {
        let scenario = Scenario::small();
        let cfg = IngestConfig {
            deadline: 0.5,
            late_policy: LateBidPolicy::DeferToNext,
            ..IngestConfig::default()
        };
        let streamed = run_stream(&mut lovm(&scenario), &scenario, 11, &cfg);
        assert!(streamed.totals.deferred > 0);
        // A deferred bid colliding with the bidder's fresh next-round bid
        // is superseded; with a full-presence scenario that is the common
        // case.
        assert!(streamed.totals.superseded > 0);
        assert_eq!(streamed.totals.dropped, 0);
    }

    #[test]
    fn ingestion_series_are_recorded() {
        let scenario = Scenario::small();
        let streamed = run_stream(&mut lovm(&scenario), &scenario, 3, &IngestConfig::default());
        for name in [
            "arrivals",
            "admitted",
            "deferred",
            "dropped",
            "shed",
            "buffer_peak",
        ] {
            let s = streamed
                .result
                .series
                .get(name)
                .unwrap_or_else(|| panic!("missing ingestion series {name}"));
            assert_eq!(s.len(), scenario.horizon);
        }
    }
}
