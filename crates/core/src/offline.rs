//! The offline full-information oracle.
//!
//! Given the *entire* horizon of sealed bids in advance, the first-best
//! policy pays every recruited client exactly its cost and maximizes total
//! welfare subject to the total budget — a 0/1 knapsack over all
//! (round, client) pairs. Online mechanisms are evaluated against this
//! oracle (competitive ratio / regret, experiment E1).

use auction::bid::Bid;
use auction::valuation::Valuation;
use auction::wdp::{fractional_upper_bound, solve, SolverKind, WdpInstance, WdpItem};

/// Result of the offline optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfflineBenchmark {
    /// Welfare of the (near-exact) integral knapsack optimum.
    pub welfare: f64,
    /// Fractional LP upper bound (≥ any feasible policy's welfare).
    pub fractional_bound: f64,
    /// Number of (round, client) recruitments in the integral solution.
    pub recruitments: usize,
    /// Total cost (= expenditure, since the oracle pays cost) used.
    pub spend: f64,
}

/// Solves the offline problem over the recorded bids of a run.
///
/// Per-round cardinality caps are *not* applied, making this a (slightly
/// loose) upper bound whenever a cap binds — the conservative direction for
/// competitive-ratio claims.
pub fn offline_benchmark(
    bids_per_round: &[Vec<Bid>],
    valuation: &Valuation,
    total_budget: f64,
) -> OfflineBenchmark {
    let mut items = Vec::new();
    for bids in bids_per_round {
        for b in bids {
            let welfare = valuation.client_value(b) - b.cost;
            if welfare > 0.0 {
                items.push(WdpItem {
                    bidder: b.bidder,
                    weight: welfare,
                    cost: b.cost,
                });
            }
        }
    }
    let inst = WdpInstance::new(items).with_budget(total_budget);
    let fractional_bound = fractional_upper_bound(&inst);
    let sol = solve(&inst, SolverKind::Knapsack { grid: 4000 });
    let spend = inst.total_cost(&sol.selected);
    OfflineBenchmark {
        welfare: sol.objective,
        fractional_bound,
        recruitments: sol.selected.len(),
        spend,
    }
}

/// Competitive ratio of an online run against the oracle (0 when the
/// oracle achieves nothing).
pub fn competitive_ratio(online_welfare: f64, oracle: &OfflineBenchmark) -> f64 {
    if oracle.welfare <= 0.0 {
        if online_welfare <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        online_welfare / oracle.welfare
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::valuation::ClientValue;

    fn val() -> Valuation {
        Valuation::Linear(ClientValue {
            value_per_unit: 1.0,
            base_value: 0.0,
        })
    }

    fn bid(id: usize, cost: f64, data: usize) -> Bid {
        Bid::new(id, cost, data, 1.0)
    }

    #[test]
    fn oracle_picks_best_within_budget() {
        // Round 1: (value 10, cost 4), (value 3, cost 3);
        // Round 2: (value 8, cost 4). Budget 8 → take both value-10 and
        // value-8 items: welfare (10-4)+(8-4) = 10.
        let rounds = vec![vec![bid(0, 4.0, 10), bid(1, 3.0, 3)], vec![bid(2, 4.0, 8)]];
        let o = offline_benchmark(&rounds, &val(), 8.0);
        assert!((o.welfare - 10.0).abs() < 0.1, "welfare {}", o.welfare);
        assert_eq!(o.recruitments, 2);
        assert!(o.spend <= 8.0 + 1e-9);
        assert!(o.fractional_bound >= o.welfare - 1e-9);
    }

    #[test]
    fn oracle_skips_negative_welfare() {
        let rounds = vec![vec![bid(0, 100.0, 10)]];
        let o = offline_benchmark(&rounds, &val(), 1000.0);
        assert_eq!(o.welfare, 0.0);
        assert_eq!(o.recruitments, 0);
    }

    #[test]
    fn unconstrained_budget_takes_all_positive() {
        let rounds = vec![
            vec![bid(0, 1.0, 10), bid(1, 2.0, 10)],
            vec![bid(0, 1.0, 10)],
        ];
        let o = offline_benchmark(&rounds, &val(), 1e9);
        assert!((o.welfare - (9.0 + 8.0 + 9.0)).abs() < 0.1);
        assert_eq!(o.recruitments, 3);
    }

    #[test]
    fn competitive_ratio_behaviour() {
        let oracle = OfflineBenchmark {
            welfare: 10.0,
            fractional_bound: 11.0,
            recruitments: 2,
            spend: 5.0,
        };
        assert!((competitive_ratio(8.0, &oracle) - 0.8).abs() < 1e-12);
        let zero = OfflineBenchmark {
            welfare: 0.0,
            fractional_bound: 0.0,
            recruitments: 0,
            spend: 0.0,
        };
        assert_eq!(competitive_ratio(0.0, &zero), 1.0);
        assert_eq!(competitive_ratio(1.0, &zero), f64::INFINITY);
    }

    #[test]
    fn oracle_dominates_any_feasible_online_policy() {
        // Simple check: a greedy "spend as you go" policy never beats the
        // oracle on the same bid stream.
        let rounds: Vec<Vec<Bid>> = (0..50)
            .map(|r| {
                (0..5)
                    .map(|i| bid(i, 0.5 + ((r * 5 + i) % 7) as f64 * 0.5, 2 + (i * r) % 9))
                    .collect()
            })
            .collect();
        let budget = 30.0;
        let oracle = offline_benchmark(&rounds, &val(), budget);

        let mut spent = 0.0;
        let mut online_welfare = 0.0;
        for bids in &rounds {
            for b in bids {
                let w = val().client_value(b) - b.cost;
                if w > 0.0 && spent + b.cost <= budget {
                    spent += b.cost;
                    online_welfare += w;
                }
            }
        }
        assert!(
            oracle.fractional_bound >= online_welfare - 1e-9,
            "oracle bound {} < online {online_welfare}",
            oracle.fractional_bound
        );
    }
}
