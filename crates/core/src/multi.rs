//! Multi-constraint LOVM: several long-term constraints, one virtual queue
//! each.
//!
//! The drift-plus-penalty construction generalizes directly: with
//! constraints `limsup (1/R) Σ_t u_k(S_t) ≤ ρ_k` for verifiable per-client
//! resource usages `u_k(i)` (energy drawn, bandwidth, winner slots), the
//! per-round score becomes
//!
//! ```text
//! w_i = V·v_i − Q_money(t)·ĉ_i − Σ_k Q_k(t)·u_k(i)
//! ```
//!
//! and every queue is updated with its realized usage. Only the money term
//! depends on the *report*, and its coefficient `Q_money` is
//! bid-independent, so the Clarke pivot divided by `Q_money` remains
//! dominant-strategy truthful and IR exactly as in the single-constraint
//! mechanism. This module is the "extensions" part of the reproduction:
//! sustainability as a *hard average energy draw* on the device fleet, not
//! just a monetary budget (experiment E12).

use crate::mechanism::{Mechanism, RoundInfo};
use auction::bid::Bid;
use auction::outcome::{AuctionOutcome, Award};
use auction::valuation::Valuation;
use lyapunov::queue::VirtualQueue;

/// Verifiable per-client resource usage for one auxiliary constraint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResourceUsage {
    /// Affine in committed data: `base + per_data · d_i` (models training
    /// energy: compute scales with data, communication is constant).
    EnergyAffine {
        /// Fixed per-round usage.
        base: f64,
        /// Usage per committed example.
        per_data: f64,
    },
    /// One unit per winner (long-term average recruitment-slot cap).
    WinnerSlot,
}

impl ResourceUsage {
    /// Usage of one selected bid.
    pub fn of(&self, bid: &Bid) -> f64 {
        match *self {
            ResourceUsage::EnergyAffine { base, per_data } => {
                base + per_data * bid.data_size as f64
            }
            ResourceUsage::WinnerSlot => 1.0,
        }
    }
}

/// One auxiliary long-term constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Display name (appears in telemetry series).
    pub name: String,
    /// Allowed long-term average usage per round (> 0).
    pub rate: f64,
    /// How much of the resource a selected bid consumes.
    pub usage: ResourceUsage,
}

/// Configuration of the multi-constraint mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiLovmConfig {
    /// Lyapunov penalty weight `V > 0`.
    pub v: f64,
    /// Long-term money budget rate ρ (> 0).
    pub budget_per_round: f64,
    /// Auxiliary constraints (energy, slots, ...).
    pub constraints: Vec<Constraint>,
    /// Winner cap per round.
    pub max_winners: Option<usize>,
    /// Floor for the money cost weight (> 0).
    pub min_cost_weight: f64,
    /// Platform valuation.
    pub valuation: Valuation,
}

/// LOVM with several virtual queues (see module docs).
#[derive(Debug, Clone)]
pub struct MultiLovm {
    config: MultiLovmConfig,
    money_queue: VirtualQueue,
    aux_queues: Vec<VirtualQueue>,
}

impl MultiLovm {
    /// Creates the mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `v`, `budget_per_round`, `min_cost_weight`, or any
    /// constraint rate is not strictly positive and finite.
    pub fn new(config: MultiLovmConfig) -> Self {
        assert!(config.v.is_finite() && config.v > 0.0, "v must be positive");
        assert!(
            config.budget_per_round.is_finite() && config.budget_per_round > 0.0,
            "budget_per_round must be positive"
        );
        assert!(
            config.min_cost_weight.is_finite() && config.min_cost_weight > 0.0,
            "min_cost_weight must be positive"
        );
        for c in &config.constraints {
            assert!(
                c.rate.is_finite() && c.rate > 0.0,
                "constraint `{}` rate must be positive",
                c.name
            );
        }
        let aux_queues = vec![VirtualQueue::new(); config.constraints.len()];
        MultiLovm {
            config,
            money_queue: VirtualQueue::new(),
            aux_queues,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MultiLovmConfig {
        &self.config
    }

    /// Backlogs of the auxiliary queues, in constraint order.
    pub fn aux_backlogs(&self) -> Vec<f64> {
        self.aux_queues.iter().map(|q| q.backlog()).collect()
    }

    /// The effective money cost weight `max(Q_money, q_min)`.
    fn money_weight(&self) -> f64 {
        self.money_queue.backlog().max(self.config.min_cost_weight)
    }

    /// Virtual score of one bid under current queue state.
    fn score(&self, bid: &Bid) -> f64 {
        let mut w = self.config.v * self.config.valuation.client_value(bid)
            - self.money_weight() * bid.cost;
        for (c, q) in self.config.constraints.iter().zip(&self.aux_queues) {
            w -= q.backlog() * c.usage.of(bid);
        }
        w
    }
}

impl Mechanism for MultiLovm {
    fn name(&self) -> String {
        format!(
            "MultiLOVM(V={},{}q)",
            self.config.v,
            1 + self.aux_queues.len()
        )
    }

    fn select(&mut self, _info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome {
        // Top-K by virtual score (exact for the additive objective).
        let k = self.config.max_winners.unwrap_or(bids.len());
        let mut scored: Vec<(usize, f64)> = bids
            .iter()
            .enumerate()
            .map(|(i, b)| (i, self.score(b)))
            .filter(|&(_, w)| w > 0.0)
            .collect();
        // Total order even on degenerate scores (a NaN weight ratio must
        // not panic the round loop), with the index as an explicit
        // tiebreak so equal scores keep arrival order deterministically.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let winners: Vec<(usize, f64)> = scored.iter().copied().take(k).collect();
        let displaced = if winners.len() >= k {
            scored.get(k).map_or(0.0, |&(_, w)| w)
        } else {
            0.0
        };
        let w_star: f64 = winners.iter().map(|&(_, w)| w).sum();
        let q_money = self.money_weight();

        let awards: Vec<Award> = winners
            .iter()
            .map(|&(i, w)| {
                let bid = &bids[i];
                // Clarke pivot in virtual units, converted to money by the
                // bid-dependent coefficient Q_money.
                let pivot = (w - displaced).max(0.0);
                Award {
                    bidder: bid.bidder,
                    cost: bid.cost,
                    value: self.config.valuation.client_value(bid),
                    payment: bid.cost + pivot / q_money,
                }
            })
            .collect();
        let outcome = AuctionOutcome::new(awards, w_star);

        // Update every queue with realized usage.
        let spend = outcome.total_payment();
        self.money_queue.update(spend, self.config.budget_per_round);
        for (ci, q) in self.aux_queues.iter_mut().enumerate() {
            let usage: f64 = winners
                .iter()
                .map(|&(i, _)| self.config.constraints[ci].usage.of(&bids[i]))
                .sum();
            q.update(usage, self.config.constraints[ci].rate);
        }
        outcome
    }

    fn backlog(&self) -> Option<f64> {
        Some(self.money_queue.backlog())
    }

    fn reset(&mut self) {
        self.money_queue = VirtualQueue::new();
        for q in &mut self.aux_queues {
            *q = VirtualQueue::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::properties::{default_factor_grid, individually_rational, probe_truthfulness};
    use auction::valuation::ClientValue;

    fn config() -> MultiLovmConfig {
        MultiLovmConfig {
            v: 20.0,
            budget_per_round: 3.0,
            constraints: vec![Constraint {
                name: "energy".into(),
                rate: 2.0,
                usage: ResourceUsage::EnergyAffine {
                    base: 0.2,
                    per_data: 0.005,
                },
            }],
            max_winners: Some(3),
            min_cost_weight: 1.0,
            valuation: Valuation::Linear(ClientValue {
                value_per_unit: 0.02,
                base_value: 0.3,
            }),
        }
    }

    fn info(round: usize) -> RoundInfo {
        RoundInfo {
            round,
            horizon: 1000,
            total_budget: 3000.0,
            spent_so_far: 0.0,
        }
    }

    fn bids() -> Vec<Bid> {
        vec![
            Bid::new(0, 1.0, 300, 0.9),
            Bid::new(1, 2.0, 400, 0.8),
            Bid::new(2, 0.5, 100, 1.0),
            Bid::new(3, 3.0, 500, 0.7),
            Bid::new(4, 1.5, 200, 0.6),
        ]
    }

    #[test]
    fn usage_functions() {
        let b = Bid::new(0, 1.0, 100, 1.0);
        assert_eq!(
            ResourceUsage::EnergyAffine {
                base: 0.5,
                per_data: 0.01
            }
            .of(&b),
            1.5
        );
        assert_eq!(ResourceUsage::WinnerSlot.of(&b), 1.0);
    }

    #[test]
    fn nan_scores_are_ranked_out_not_panicked_on() {
        // A degenerate per-data coefficient makes the constraint term the
        // 0 · ∞ = NaN weight ratio (empty queue times infinite usage):
        // selection must rank such a bid out via the total order, never
        // panic mid-round.
        let mut cfg = config();
        cfg.constraints[0].usage = ResourceUsage::EnergyAffine {
            base: 0.0,
            per_data: f64::INFINITY,
        };
        let mut m = MultiLovm::new(cfg);
        let degenerate = Bid::new(7, 0.5, 100, 1.0);
        assert!(m.score(&degenerate).is_nan());
        let o = m.select(&info(0), &[degenerate]);
        assert!(o.winners.is_empty(), "NaN-scored bid must not win");
    }

    #[test]
    fn equal_scores_break_ties_by_index() {
        // Four bit-identical offers compete for three slots: the explicit
        // index tiebreak must cut deterministically at arrival order, so
        // the first three bids in the slice win.
        let mut m = MultiLovm::new(config());
        let twin = |bidder| Bid::new(bidder, 1.0, 300, 0.9);
        let o = m.select(&info(0), &[twin(5), twin(2), twin(9), twin(7)]);
        let mut won: Vec<usize> = o.winners.iter().map(|a| a.bidder).collect();
        won.sort_unstable();
        assert_eq!(won, vec![2, 5, 9]);
    }

    #[test]
    fn selects_pays_ir_and_updates_queues() {
        let mut m = MultiLovm::new(config());
        let o = m.select(&info(0), &bids());
        assert!(!o.winners.is_empty());
        assert!(individually_rational(&o, 1e-9));
        // Energy usage of round certainly exceeds rate 2.0 (3 winners with
        // hundreds of examples), so the energy queue must have backlog.
        assert!(m.aux_backlogs()[0] > 0.0);
        assert!(m.backlog().unwrap() >= 0.0);
    }

    #[test]
    fn per_round_truthful() {
        let base = MultiLovm::new(config());
        let all = bids();
        for i in 0..all.len() {
            let report = probe_truthfulness(&all, i, &default_factor_grid(), |b| {
                let mut m = base.clone();
                m.select(&info(0), b)
            });
            assert!(
                report.is_truthful(1e-9),
                "bidder {i} gains {}",
                report.max_gain()
            );
        }
    }

    #[test]
    fn long_run_satisfies_both_constraints() {
        let mut m = MultiLovm::new(config());
        let mut spend = 0.0;
        let mut energy = 0.0;
        let rounds = 3000;
        let usage = ResourceUsage::EnergyAffine {
            base: 0.2,
            per_data: 0.005,
        };
        for t in 0..rounds {
            let o = m.select(&info(t), &bids());
            spend += o.total_payment();
            for w in &o.winners {
                let bid = bids().into_iter().find(|b| b.bidder == w.bidder).unwrap();
                energy += usage.of(&bid);
            }
        }
        let avg_spend = spend / rounds as f64;
        let avg_energy = energy / rounds as f64;
        assert!(avg_spend <= 3.0 * 1.05, "avg spend {avg_spend}");
        assert!(avg_energy <= 2.0 * 1.05, "avg energy {avg_energy}");
    }

    #[test]
    fn energy_queue_changes_selection() {
        // Against the same bids, the multi mechanism should eventually
        // prefer low-energy (small data) clients relative to the money-only
        // mechanism.
        let mut m = MultiLovm::new(config());
        for t in 0..500 {
            m.select(&info(t), &bids());
        }
        let o = m.select(&info(500), &bids());
        // Client 3 (500 examples, energy 2.7/round alone) must be priced
        // out in steady state under an energy rate of 2.0.
        assert!(
            !o.is_winner(3),
            "energy-hungry client should be priced out: {:?}",
            o.winner_ids()
        );
    }

    #[test]
    fn reset_clears_all_queues() {
        let mut m = MultiLovm::new(config());
        m.select(&info(0), &bids());
        m.reset();
        assert_eq!(m.backlog(), Some(0.0));
        assert!(m.aux_backlogs().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn name_reports_queue_count() {
        assert_eq!(MultiLovm::new(config()).name(), "MultiLOVM(V=20,2q)");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_bad_constraint_rate() {
        let mut cfg = config();
        cfg.constraints[0].rate = 0.0;
        let _ = MultiLovm::new(cfg);
    }
}
