//! Couples a mechanism to an actual federated training run.
//!
//! The economic simulator ([`crate::simulation`]) measures welfare; this
//! module measures *learning*: winners chosen by the mechanism really train
//! (local SGD on their shard) and the global model's test accuracy is the
//! experiment output (E6/E11).

use crate::ledger::EconomicLedger;
use crate::mechanism::{Mechanism, RoundInfo};
use crate::simulation::Market;
use fedsim::data::Dataset;
use fedsim::model::Model;
use fedsim::training::FederatedRun;
use ingest::{IngestConfig, IngestStats, StreamTotals};
use metrics::series::SeriesSet;
use workload::population::ClientProfile;
use workload::Scenario;

/// Result of an FL-coupled run.
#[derive(Debug)]
pub struct FlRunResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// `(round, test accuracy)` samples, every `eval_every` rounds plus the
    /// final round.
    pub accuracy: Vec<(usize, f64)>,
    /// Per-round economic series (same names as the economic simulator).
    pub series: SeriesSet,
    /// Aggregated economics.
    pub ledger: EconomicLedger,
}

impl FlRunResult {
    /// Test accuracy after the final round.
    pub fn final_accuracy(&self) -> f64 {
        self.accuracy.last().map(|&(_, a)| a).unwrap_or(0.0)
    }
}

/// Rewrites profiles so each client's bid `data_size` matches its actual
/// federated shard size (the platform verifies data commitments).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn align_profiles_to_shards(
    profiles: &[ClientProfile],
    shard_sizes: &[usize],
) -> Vec<ClientProfile> {
    assert_eq!(
        profiles.len(),
        shard_sizes.len(),
        "profiles and shards must align"
    );
    profiles
        .iter()
        .zip(shard_sizes.iter())
        .map(|(p, &s)| ClientProfile { data_size: s, ..*p })
        .collect()
}

/// Runs `scenario.horizon` federated rounds where participation is decided
/// by the mechanism over the market's sealed bids.
///
/// `eval_every` controls how often test accuracy is measured (it is always
/// measured on the last round). The scenario's population must have exactly
/// as many clients as the federated run.
///
/// # Panics
///
/// Panics if the scenario population size differs from `run.num_clients()`.
pub fn run_fl<M: Model>(
    mechanism: &mut dyn Mechanism,
    run: &mut FederatedRun<M>,
    test: &Dataset,
    scenario: &Scenario,
    eval_every: usize,
    seed: u64,
) -> FlRunResult {
    assert_eq!(
        scenario.population.num_clients,
        run.num_clients(),
        "scenario population must match the federated run"
    );
    mechanism.reset();
    let market = Market::new(scenario, seed);
    let market = {
        // Align bid data sizes with real shard sizes.
        let aligned = align_profiles_to_shards(market.profiles(), &run.shard_sizes());
        Market::with_profiles(scenario, aligned, seed)
    };
    run_fl_market(mechanism, run, test, scenario, market, eval_every)
}

/// [`run_fl`] with an explicit market (e.g. a misreporting one).
pub fn run_fl_market<M: Model>(
    mechanism: &mut dyn Mechanism,
    run: &mut FederatedRun<M>,
    test: &Dataset,
    scenario: &Scenario,
    mut market: Market,
    eval_every: usize,
) -> FlRunResult {
    let eval_every = eval_every.max(1);
    let mut series = SeriesSet::new();
    let mut ledger = EconomicLedger::new();
    let mut accuracy = Vec::new();
    let mut spent = 0.0;

    for round in 0..scenario.horizon {
        let bids = market.round_bids();
        let info = RoundInfo {
            round,
            horizon: scenario.horizon,
            total_budget: scenario.total_budget,
            spent_so_far: spent,
        };
        let outcome = mechanism.select(&info, &bids);
        let winners = outcome.winner_ids();
        market.consume_energy(&winners);

        // The winners actually train.
        let report = run.round(&winners);

        spent += outcome.total_payment();
        series.push("spend", outcome.total_payment());
        series.push("winners", winners.len() as f64);
        series.push("train_loss", report.mean_train_loss);
        let true_welfare: f64 = outcome
            .winners
            .iter()
            .map(|w| w.value - market.true_cost(w.bidder))
            .sum();
        series.push("welfare", true_welfare);
        if let Some(b) = mechanism.backlog() {
            series.push("backlog", b);
        }
        ledger.record(&outcome, |id| market.true_cost(id));

        if (round + 1) % eval_every == 0 || round + 1 == scenario.horizon {
            accuracy.push((round + 1, run.evaluate(test)));
        }
    }

    ledger
        .check_invariants()
        .expect("ledger invariants must hold after a run");

    FlRunResult {
        mechanism: mechanism.name(),
        accuracy,
        series,
        ledger,
    }
}

/// Result of a *streamed* FL-coupled run: the training outcome plus the
/// ingestion telemetry.
#[derive(Debug)]
pub struct FlStreamResult {
    /// The training-side result (accuracy curve, economics, series — the
    /// series additionally carry the ingestion columns).
    pub fl: FlRunResult,
    /// Per-round ingestion stats.
    pub ingest: Vec<IngestStats>,
    /// Whole-stream ingestion aggregates.
    pub totals: StreamTotals,
}

/// [`run_fl`] over a *live bid stream*: bids arrive through the
/// event-driven ingestion loop (`crates/ingest`) instead of as complete
/// per-round vectors.
///
/// The loop is pull-based, which is the backpressure story: round
/// `t + 1`'s arrivals are only ingested after round `t`'s **training**
/// completed, so a slow trainer paces ingestion rather than racing it,
/// and a bounded buffer with `Backpressure::Shed` bounds ingestion memory
/// while training lags — the overflow lands in the `shed` statistic, not
/// in resident memory. With `cfg.deadline == 1.0` the run is
/// bit-identical to [`run_fl`].
///
/// # Panics
///
/// Panics if the scenario population size differs from
/// `run.num_clients()` (same contract as [`run_fl`]).
pub fn run_fl_stream<M: Model>(
    mechanism: &mut dyn Mechanism,
    run: &mut FederatedRun<M>,
    test: &Dataset,
    scenario: &Scenario,
    cfg: &IngestConfig,
    eval_every: usize,
    seed: u64,
) -> FlStreamResult {
    assert_eq!(
        scenario.population.num_clients,
        run.num_clients(),
        "scenario population must match the federated run"
    );
    mechanism.reset();
    let market = Market::new(scenario, seed);
    let market = {
        let aligned = align_profiles_to_shards(market.profiles(), &run.shard_sizes());
        Market::with_profiles(scenario, aligned, seed)
    };
    let eval_every = eval_every.max(1);
    let name = mechanism.name();
    let horizon = scenario.horizon;
    let mut accuracy = Vec::new();
    let mut train_loss = Vec::with_capacity(horizon);

    // One shared streaming loop (`streaming::stream_rounds`) drives
    // ingestion, energy feedback, and all economic bookkeeping; this step
    // additionally trains the winners before returning, so the *training*
    // time is what paces the pull of the next round's arrivals.
    let streamed =
        crate::streaming::stream_rounds(scenario, market, seed, cfg, name, |info, bids| {
            let outcome = mechanism.select(info, bids);
            let report = run.round(&outcome.winner_ids());
            train_loss.push(report.mean_train_loss);
            if (info.round + 1) % eval_every == 0 || info.round + 1 == horizon {
                accuracy.push((info.round + 1, run.evaluate(test)));
            }
            let backlog = mechanism.backlog();
            (outcome, backlog)
        });

    let mut series = streamed.result.series;
    for loss in train_loss {
        series.push("train_loss", loss);
    }
    FlStreamResult {
        fl: FlRunResult {
            mechanism: streamed.result.mechanism,
            accuracy,
            series,
            ledger: streamed.result.ledger,
        },
        ingest: streamed.ingest,
        totals: streamed.totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lovm::{Lovm, LovmConfig};
    use auction::valuation::{ClientValue, Valuation};
    use fedsim::data::partition::{partition, PartitionStrategy};
    use fedsim::data::synth::{gaussian_blobs, BlobSpec};
    use fedsim::model::LogisticRegression;
    use fedsim::training::RunConfig;
    use workload::population::{CostDistribution, PopulationConfig};
    use workload::AvailabilityKind;

    fn tiny_scenario(n: usize, horizon: usize) -> Scenario {
        Scenario {
            name: "tiny-fl".into(),
            population: PopulationConfig {
                num_clients: n,
                cost: CostDistribution::Uniform { lo: 0.5, hi: 1.5 },
                data_size: (10, 10),
                quality: (0.8, 1.0),
                energy_groups: Vec::new(),
            },
            availability: AvailabilityKind::Full,
            horizon,
            total_budget: 2.0 * horizon as f64,
            training_energy: 1.0,
            valuation: Valuation::default(),
        }
    }

    fn setup(n: usize) -> (FederatedRun<LogisticRegression>, Dataset) {
        let ds = gaussian_blobs(&BlobSpec::new(3, 6, 80), 3);
        let (train, test) = ds.split_at(180);
        let parts = partition(&train, n, PartitionStrategy::Iid, 3);
        let run = FederatedRun::new(
            LogisticRegression::new(6, 3),
            parts,
            train,
            RunConfig::default(),
        );
        (run, test)
    }

    #[test]
    fn fl_run_improves_accuracy_and_respects_economics() {
        let scenario = tiny_scenario(8, 80);
        let (mut run, test) = setup(8);
        let before = run.evaluate(&test);
        let mut mech = Lovm::new(LovmConfig::for_scenario(&scenario, 30.0).with_valuation(
            Valuation::Linear(ClientValue {
                value_per_unit: 0.05,
                base_value: 1.0,
            }),
        ));
        let result = run_fl(&mut mech, &mut run, &test, &scenario, 10, 11);
        assert_eq!(result.accuracy.len(), 8);
        let after = result.final_accuracy();
        assert!(
            after > before + 0.2,
            "accuracy {before} -> {after} did not improve"
        );
        // The long-term budget holds in the Lyapunov sense. The queue
        // dynamics Q(t+1) = max(Q(t) + spend_t − ρ, 0) imply the sample-path
        // bound (1/T)·Σ spend_t ≤ ρ + Q(T)/T, and the O(V) backlog bound
        // makes the excess vanish as T grows.
        let spend = result.series.get("spend").unwrap();
        let avg = spend.iter().sum::<f64>() / spend.len() as f64;
        let backlog = result.series.get("backlog").unwrap();
        let final_backlog = *backlog.last().unwrap();
        let rho = scenario.budget_per_round();
        assert!(
            avg <= rho + final_backlog / spend.len() as f64 + 1e-9,
            "mean spend {avg} exceeds ρ + Q(T)/T = {}",
            rho + final_backlog / spend.len() as f64
        );
        // And queue pressure bites: the unconstrained early spending rate
        // must come down once the backlog builds, with the late half at
        // most modestly above ρ.
        let early_avg = spend[..40].iter().sum::<f64>() / 40.0;
        let late_avg = spend[40..].iter().sum::<f64>() / 40.0;
        assert!(
            late_avg < early_avg,
            "queue pressure failed to reduce spending: early {early_avg}, late {late_avg}"
        );
        assert!(
            late_avg <= rho * 1.5,
            "steady-state spend {late_avg} far above rate {rho}"
        );
        assert!(result.ledger.rounds() == 80);
    }

    #[test]
    fn align_profiles_overwrites_data_size() {
        let scenario = tiny_scenario(3, 5);
        let profiles = workload::population::generate(&scenario.population, 0);
        let aligned = align_profiles_to_shards(&profiles, &[7, 8, 9]);
        assert_eq!(aligned[0].data_size, 7);
        assert_eq!(aligned[2].data_size, 9);
        assert_eq!(aligned[1].true_cost, profiles[1].true_cost);
    }

    #[test]
    #[should_panic(expected = "scenario population must match")]
    fn population_mismatch_rejected() {
        let scenario = tiny_scenario(5, 5);
        let (mut run, test) = setup(4);
        let mut mech = Lovm::new(LovmConfig::for_scenario(&scenario, 10.0));
        let _ = run_fl(&mut mech, &mut run, &test, &scenario, 1, 0);
    }

    #[test]
    fn fl_stream_with_full_deadline_matches_batch_fl() {
        let scenario = tiny_scenario(8, 40);
        let mut mech = Lovm::new(LovmConfig::for_scenario(&scenario, 30.0));
        let (mut run_a, test) = setup(8);
        let batch = run_fl(&mut mech, &mut run_a, &test, &scenario, 10, 11);
        let (mut run_b, test) = setup(8);
        let streamed = run_fl_stream(
            &mut mech,
            &mut run_b,
            &test,
            &scenario,
            &IngestConfig::default(),
            10,
            11,
        );
        assert_eq!(batch.ledger, streamed.fl.ledger);
        assert_eq!(batch.accuracy, streamed.fl.accuracy);
        assert_eq!(
            batch.series.get("spend").unwrap(),
            streamed.fl.series.get("spend").unwrap()
        );
        assert_eq!(streamed.totals.dropped + streamed.totals.shed, 0);
    }

    #[test]
    fn fl_stream_sheds_under_a_tiny_buffer_and_still_trains() {
        use ingest::Backpressure;
        let scenario = tiny_scenario(8, 60);
        let (mut run, test) = setup(8);
        let before = run.evaluate(&test);
        let mut mech = Lovm::new(LovmConfig::for_scenario(&scenario, 30.0));
        let cfg = IngestConfig {
            capacity: 4, // 8 clients bid per round: half must shed
            backpressure: Backpressure::Shed { watermark: 1.0 },
            ..IngestConfig::default()
        };
        let streamed = run_fl_stream(&mut mech, &mut run, &test, &scenario, &cfg, 10, 11);
        assert!(streamed.totals.shed > 0, "a 4-slot buffer must shed");
        assert!(
            streamed.totals.buffer_peak <= 4,
            "buffer occupancy unbounded"
        );
        assert!(
            streamed.fl.final_accuracy() > before,
            "training still makes progress on the admitted bids"
        );
    }
}
