//! Adaptive strategic bidders: do learning agents converge to truth?
//!
//! Dominant-strategy truthfulness is a *static* property; this module tests
//! its *dynamic* consequence: a population of clients that know nothing
//! about mechanism design and simply hill-climb their misreport factor on
//! realized utility should converge toward factor 1.0 under a truthful
//! mechanism — and drift away from it under a manipulable one. This is the
//! robustness experiment E13.

use crate::ledger::EconomicLedger;
use crate::mechanism::{Mechanism, RoundInfo};
use crate::simulation::Market;
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};
use workload::Scenario;

/// Configuration of the adaptive-bidding dynamic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Rounds per adaptation epoch (utilities are compared across epochs).
    pub epoch_len: usize,
    /// Multiplicative exploration step for the misreport factor.
    pub step: f64,
    /// Probability of exploring (vs exploiting the incumbent factor).
    pub explore_prob: f64,
    /// Clamp range for factors.
    pub factor_range: (f64, f64),
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            epoch_len: 20,
            step: 1.15,
            explore_prob: 0.5,
            factor_range: (0.25, 4.0),
        }
    }
}

/// Result of an adaptive-bidding run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveResult {
    /// Mechanism display name.
    pub mechanism: String,
    /// Mean absolute log-deviation of factors from 1.0 after each epoch
    /// (the "dishonesty" trajectory; → 0 means convergence to truth).
    pub dishonesty: Vec<f64>,
    /// Final per-client factors.
    pub final_factors: Vec<f64>,
    /// Ledger over the whole run (utilities at *true* costs).
    pub ledger: EconomicLedger,
}

impl AdaptiveResult {
    /// Mean |ln factor| in the last epoch.
    pub fn final_dishonesty(&self) -> f64 {
        self.dishonesty.last().copied().unwrap_or(0.0)
    }
}

fn mean_abs_log(factors: &[f64]) -> f64 {
    factors.iter().map(|f| f.ln().abs()).sum::<f64>() / factors.len().max(1) as f64
}

/// Runs the adaptive-bidding dynamic: every client keeps a misreport
/// factor; each epoch, a random half of the clients perturb their factor
/// (multiply or divide by `step`), keep it if epoch utility improved, and
/// revert otherwise.
///
/// # Panics
///
/// Panics if `epoch_len == 0` or the factor range is invalid.
pub fn run_adaptive(
    mechanism: &mut dyn Mechanism,
    scenario: &Scenario,
    config: &AdaptiveConfig,
    epochs: usize,
    seed: u64,
) -> AdaptiveResult {
    assert!(config.epoch_len > 0, "epoch_len must be positive");
    assert!(
        config.factor_range.0 > 0.0 && config.factor_range.0 <= config.factor_range.1,
        "invalid factor range"
    );
    mechanism.reset();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAD_AB1D);
    let base_market = Market::new(scenario, seed);
    let profiles = base_market.profiles().to_vec();
    let n = profiles.len();

    let mut factors = vec![1.0f64; n];
    let mut last_epoch_utility = vec![f64::NEG_INFINITY; n];
    let mut prev_factors = factors.clone();
    let mut dishonesty = Vec::with_capacity(epochs);
    let mut ledger = EconomicLedger::new();
    let mut spent = 0.0;
    let mut round = 0usize;

    // One long market drives availability/energy; factors are applied to
    // the sealed bids on top of it.
    let mut market = Market::new(scenario, seed);
    let horizon = epochs * config.epoch_len;

    for _ in 0..epochs {
        // Perturb: each client explores with probability explore_prob.
        prev_factors.copy_from_slice(&factors);
        for (i, f) in factors.iter_mut().enumerate() {
            let _ = i;
            if rng.random::<f64>() < config.explore_prob {
                if rng.random::<f64>() < 0.5 {
                    *f *= config.step;
                } else {
                    *f /= config.step;
                }
                *f = f.clamp(config.factor_range.0, config.factor_range.1);
            }
        }

        let mut epoch_utility = vec![0.0f64; n];
        for _ in 0..config.epoch_len {
            let bids: Vec<_> = market
                .round_bids()
                .into_iter()
                .map(|b| {
                    let f = factors[b.bidder];
                    b.with_cost(b.cost * f)
                })
                .collect();
            let info = RoundInfo {
                round,
                horizon,
                total_budget: scenario.total_budget,
                spent_so_far: spent,
            };
            let outcome = mechanism.select(&info, &bids);
            market.consume_energy(&outcome.winner_ids());
            spent += outcome.total_payment();
            for w in &outcome.winners {
                epoch_utility[w.bidder] += w.payment - profiles[w.bidder].true_cost;
            }
            ledger.record(&outcome, |id| profiles[id].true_cost);
            round += 1;
        }

        // Keep strict improvements only; ties and regressions revert to
        // the incumbent factor (otherwise zero-utility losers random-walk).
        for i in 0..n {
            if last_epoch_utility[i] == f64::NEG_INFINITY
                || epoch_utility[i] > last_epoch_utility[i] + 1e-9
            {
                last_epoch_utility[i] = epoch_utility[i];
            } else {
                factors[i] = prev_factors[i];
            }
        }
        dishonesty.push(mean_abs_log(&factors));
    }

    AdaptiveResult {
        mechanism: mechanism.name(),
        dishonesty,
        final_factors: factors,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lovm::{Lovm, LovmConfig};
    use auction::outcome::{AuctionOutcome, Award};
    use auction::valuation::Valuation;

    fn scenario() -> Scenario {
        let mut s = Scenario::small();
        s.horizon = 10_000; // irrelevant; epochs control the run
        s
    }

    /// Pay-as-bid: select everyone, pay the report — overbidding always
    /// helps, so learners must drift to the factor cap.
    struct PayAsBid(Valuation);
    impl Mechanism for PayAsBid {
        fn name(&self) -> String {
            "PayAsBid".into()
        }
        fn select(&mut self, _info: &RoundInfo, bids: &[auction::bid::Bid]) -> AuctionOutcome {
            let awards = bids
                .iter()
                .map(|b| Award {
                    bidder: b.bidder,
                    cost: b.cost,
                    value: self.0.client_value(b),
                    payment: b.cost,
                })
                .collect();
            AuctionOutcome::new(awards, 0.0)
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn learners_drift_to_cap_under_pay_as_bid() {
        let s = scenario();
        let mut mech = PayAsBid(s.valuation);
        let result = run_adaptive(&mut mech, &s, &AdaptiveConfig::default(), 40, 3);
        // Overbidding is always profitable: final dishonesty must be large
        // and factors pushed toward the upper clamp.
        assert!(
            result.final_dishonesty() > 0.5,
            "dishonesty {} too low for a manipulable mechanism",
            result.final_dishonesty()
        );
        let above = result.final_factors.iter().filter(|&&f| f > 1.5).count();
        assert!(
            above > result.final_factors.len() / 2,
            "most factors should exceed 1.5: {above}"
        );
    }

    #[test]
    fn learners_stay_near_truth_under_lovm() {
        let s = scenario();
        let mut lovm = Lovm::new(LovmConfig::for_scenario(&s, 20.0));
        let lovm_result = run_adaptive(&mut lovm, &s, &AdaptiveConfig::default(), 40, 3);
        let mut pab = PayAsBid(s.valuation);
        let pab_result = run_adaptive(&mut pab, &s, &AdaptiveConfig::default(), 40, 3);
        // Exploration noise keeps dishonesty above zero, but the truthful
        // mechanism must stay far below the manipulable one.
        assert!(
            lovm_result.final_dishonesty() < pab_result.final_dishonesty() * 0.6,
            "LOVM {} vs PayAsBid {}",
            lovm_result.final_dishonesty(),
            pab_result.final_dishonesty()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let s = scenario();
        let run = || {
            let mut mech = Lovm::new(LovmConfig::for_scenario(&s, 20.0));
            run_adaptive(&mut mech, &s, &AdaptiveConfig::default(), 10, 7)
        };
        let a = run();
        let b = run();
        assert_eq!(a.dishonesty, b.dishonesty);
        assert_eq!(a.final_factors, b.final_factors);
    }

    #[test]
    #[should_panic(expected = "epoch_len must be positive")]
    fn rejects_zero_epoch() {
        let s = scenario();
        let mut mech = Lovm::new(LovmConfig::for_scenario(&s, 20.0));
        let cfg = AdaptiveConfig {
            epoch_len: 0,
            ..AdaptiveConfig::default()
        };
        let _ = run_adaptive(&mut mech, &s, &cfg, 1, 0);
    }
}
