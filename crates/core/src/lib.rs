//! # lovm-core — Long-term Online VCG Mechanism for sustainable FL
//!
//! The paper's primary contribution: an online procurement auction that
//! recruits federated-learning clients each round, is dominant-strategy
//! truthful and individually rational *per round* (VCG / Clarke pivot), and
//! meets a *long-term* budget constraint (sustainability) via Lyapunov
//! drift-plus-penalty virtual queues — welfare within `O(1/V)` of the
//! offline optimum at an `O(V)` backlog transient.
//!
//! Crate layout:
//!
//! * [`mechanism`] — the [`mechanism::Mechanism`] trait every comparator
//!   implements, so the harness can run them interchangeably,
//! * [`lovm`] — the LOVM mechanism itself,
//! * [`ledger`] — economic bookkeeping with invariant checks,
//! * [`simulation`] — the marketplace simulator (availability + energy +
//!   bids → mechanism → telemetry),
//! * [`offline`] — the offline full-information oracle used as the regret
//!   denominator,
//! * [`streaming`] — the live-traffic entry point: timestamped bid
//!   arrivals through the event-driven ingestion loop (`crates/ingest`)
//!   into the same VCG path, bit-identical to the batch simulator when
//!   the deadline admits every arrival,
//! * [`serve`] — the event-sourced market server: journaled sessions
//!   with snapshot + replay crash recovery (`crates/journal`) behind a
//!   `std::net` TCP accept loop (`lovm serve`),
//! * [`orchestrator`] — couples the mechanism to a real `fedsim` training
//!   run so accuracy curves reflect who was actually recruited.
//!
//! # Example: run LOVM on a scenario
//!
//! ```
//! use lovm_core::lovm::{Lovm, LovmConfig};
//! use lovm_core::simulation::simulate;
//! use workload::Scenario;
//!
//! let scenario = Scenario::small();
//! let mut mech = Lovm::new(LovmConfig::for_scenario(&scenario, 10.0));
//! let result = simulate(&mut mech, &scenario, 42);
//! // Steady state meets the long-term budget rate: the time-average spend
//! // over the second half of the run is at or below ρ (plus slack for the
//! // O(V) warm-up transient amortized over the horizon).
//! let spend = result.series.get("spend").unwrap();
//! let late = &spend[spend.len() / 2..];
//! let late_avg: f64 = late.iter().sum::<f64>() / late.len() as f64;
//! assert!(late_avg <= scenario.budget_per_round() * 1.2);
//! ```

pub mod adaptive;
pub mod ledger;
pub mod lovm;
pub mod mechanism;
pub mod multi;
pub mod obs;
pub mod offline;
pub mod orchestrator;
pub mod serve;
pub mod simulation;
pub mod streaming;

pub use adaptive::{run_adaptive, AdaptiveConfig, AdaptiveResult};
pub use ledger::EconomicLedger;
pub use lovm::{Lovm, LovmConfig};
pub use mechanism::{HardBudgetCap, Mechanism, RoundInfo};
pub use multi::{Constraint, MultiLovm, MultiLovmConfig, ResourceUsage};
pub use offline::{offline_benchmark, OfflineBenchmark};
pub use serve::{MarketServer, MarketSession, SealedOutcome, ServeConfig, SessionConfig};
pub use simulation::{simulate, simulate_seeds, simulate_seeds_on, SimulationResult};
pub use streaming::{run_stream, MarketStream, StreamResult};
