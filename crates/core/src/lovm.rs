//! LOVM: the Long-term Online VCG Mechanism.
//!
//! Per round `t` with virtual budget queue `Q(t)`:
//!
//! 1. score every present bid `i` with `w_i = V·v_i − max(Q(t), q_min)·ĉ_i`,
//! 2. select the winner set maximizing `Σ w_i` subject to the cardinality
//!    cap (exact, so VCG applies),
//! 3. pay each winner the Clarke pivot in money,
//!    `p_i = ĉ_i + (W* − W*₋ᵢ)/max(Q(t), q_min)`,
//! 4. update the queue with the realized expenditure:
//!    `Q(t+1) = max(Q(t) + Σp_i − ρ, 0)` where `ρ = B/R`.
//!
//! Truthfulness and IR hold round-by-round because step 2 is exact and the
//! weights are bid-independent; the long-term budget holds because the
//! queue is mean-rate stable (large `Q` suppresses spending), giving the
//! `[O(1/V), O(V)]` welfare/backlog tradeoff measured in E2/E3.

use crate::mechanism::{Mechanism, RoundInfo};
use auction::bid::Bid;
use auction::outcome::AuctionOutcome;
use auction::pivots::PaymentStrategy;
use auction::shard::MarketTopology;
use auction::valuation::Valuation;
use auction::vcg::{RoundScratch, VcgAuction, VcgConfig};
use lyapunov::dpp::{DppConfig, DriftPlusPenalty};
use workload::Scenario;

/// LOVM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LovmConfig {
    /// Lyapunov penalty weight `V > 0` (welfare emphasis).
    pub v: f64,
    /// Long-term budget rate ρ (money per round, > 0).
    pub budget_per_round: f64,
    /// Cardinality cap on winners per round.
    pub max_winners: Option<usize>,
    /// Floor `q_min > 0` for the cost weight (keeps payments defined when
    /// the queue is empty).
    pub min_cost_weight: f64,
    /// Platform valuation of clients.
    pub valuation: Valuation,
    /// How per-round Clarke pivots are computed. The incremental engine
    /// (default) and the naive per-winner re-solve produce bit-identical
    /// payments; the knob exists for differential testing and comparison
    /// benchmarks.
    pub payment_strategy: PaymentStrategy,
    /// Market layout per round. The default honors the `LOVM_SHARDS`
    /// environment variable (`Monolithic` when unset). LOVM rounds are
    /// top-K winner determinations, where the sharded champion
    /// reconciliation is bit-identical to the monolithic path at any shard
    /// count — so this knob changes memory/latency shape, never outcomes.
    pub topology: MarketTopology,
}

impl Default for LovmConfig {
    fn default() -> Self {
        LovmConfig {
            v: 10.0,
            budget_per_round: 1.0,
            max_winners: None,
            min_cost_weight: 1.0,
            valuation: Valuation::default(),
            payment_strategy: PaymentStrategy::Incremental,
            topology: MarketTopology::from_env(),
        }
    }
}

impl LovmConfig {
    /// Builds a config matched to a scenario's budget with the given `V`.
    ///
    /// Sets a per-round winner cap of `max(4, ⌈2ρ⌉)` (assuming O(1) client
    /// costs, this is roughly twice the number of affordable winners). The
    /// cap matters beyond scheduling: with top-K selection, each winner's
    /// information rent is priced by the *displaced* candidate, so a
    /// binding-ish cap keeps payments competitive instead of handing every
    /// winner its full marginal surplus. Override with
    /// [`LovmConfig::with_max_winners`] if costs are far from 1.
    pub fn for_scenario(scenario: &Scenario, v: f64) -> LovmConfig {
        let rho = scenario.budget_per_round();
        LovmConfig {
            v,
            budget_per_round: rho,
            max_winners: Some(((2.0 * rho).ceil() as usize).max(4)),
            valuation: scenario.valuation,
            ..LovmConfig::default()
        }
    }

    /// Sets the per-round winner cap.
    pub fn with_max_winners(mut self, k: usize) -> Self {
        self.max_winners = Some(k);
        self
    }

    /// Sets the valuation.
    pub fn with_valuation(mut self, valuation: Valuation) -> Self {
        self.valuation = valuation;
        self
    }

    /// Sets the pivot-welfare strategy for payments.
    pub fn with_payment_strategy(mut self, strategy: PaymentStrategy) -> Self {
        self.payment_strategy = strategy;
        self
    }

    /// Sets the market topology (overriding the `LOVM_SHARDS` default).
    pub fn with_topology(mut self, topology: MarketTopology) -> Self {
        self.topology = topology;
        self
    }
}

/// The LOVM mechanism (see module docs).
#[derive(Debug, Clone)]
pub struct Lovm {
    config: LovmConfig,
    dpp: DriftPlusPenalty,
    /// Per-round solver scratch ([`RoundScratch`]) kept alive across the
    /// mechanism's lifetime, so sustained `stream`/`serve` loops reuse the
    /// arena's DP buffers instead of reallocating them every sealed round.
    /// Pure scratch: never read across rounds, so it cannot affect outputs.
    scratch: RoundScratch,
}

impl Lovm {
    /// Creates the mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `v`, `budget_per_round`, or `min_cost_weight` is not
    /// strictly positive and finite.
    pub fn new(config: LovmConfig) -> Self {
        let dpp = DriftPlusPenalty::new(DppConfig {
            v: config.v,
            budget_per_round: config.budget_per_round,
            min_cost_weight: config.min_cost_weight,
        });
        Lovm {
            config,
            dpp,
            scratch: RoundScratch::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LovmConfig {
        &self.config
    }

    /// Current virtual-queue backlog `Q(t)`.
    pub fn queue_backlog(&self) -> f64 {
        self.dpp.queue_backlog()
    }

    /// Peak backlog observed (the `O(V)` quantity of E3).
    pub fn peak_backlog(&self) -> f64 {
        self.dpp.queue().peak()
    }

    /// Restores the virtual-queue backlog from a recovered snapshot or
    /// journal replay (see `crates/journal` and [`crate::serve`]). The
    /// control state is exact to the bit; per-process telemetry (peak,
    /// round count) restarts.
    ///
    /// # Panics
    ///
    /// Panics if `backlog` is negative or non-finite.
    pub fn restore_backlog(&mut self, backlog: f64) {
        self.dpp.restore_backlog(backlog);
    }

    /// Runs one LOVM round on an explicit worker pool: scores the bids
    /// with the current drift-plus-penalty weights, solves the
    /// (topology-aware) VCG round, and feeds the realized spend back into
    /// the virtual queue. [`Mechanism::select`] delegates here with a
    /// serial pool; the streaming entry points pass their own so sharded
    /// rounds can fan out.
    pub fn round_on(&mut self, bids: &[Bid], pool: par::Pool) -> AuctionOutcome {
        // Whole-mechanism-round span (scoring + WDP + pivots + queue
        // update); the finer per-shard / per-kind spans live inside the
        // auction crates. Inert unless telemetry is enabled.
        let _round_span = telemetry::hist!("solve.round_ns").span();
        let w = self.dpp.weights();
        let auction = VcgAuction::new(VcgConfig {
            value_weight: w.value_weight,
            cost_weight: w.cost_weight,
            max_winners: self.config.max_winners,
            topology: self.config.topology,
            ..VcgConfig::default()
        });
        let outcome = auction.run_with_scratch_on(
            bids,
            &self.config.valuation,
            self.config.payment_strategy,
            pool,
            &mut self.scratch,
        );
        self.dpp.observe_spend(outcome.total_payment());
        outcome
    }

    /// Runs LOVM over a *live bid stream*: the scenario's per-round bids
    /// are timestamped by a seeded arrival process, pass through the
    /// event-driven ingestion loop (deadline, late-bid policy,
    /// backpressure — see `crates/ingest`), and each sealed round flows
    /// through the normal topology-aware VCG path. With
    /// `cfg.deadline == 1.0` the result is bit-identical to the batch
    /// [`crate::simulation::simulate`] run.
    pub fn run_stream(
        &mut self,
        scenario: &Scenario,
        seed: u64,
        cfg: &ingest::IngestConfig,
    ) -> crate::streaming::StreamResult {
        self.run_stream_on(scenario, seed, cfg, par::Pool::auto())
    }

    /// [`Lovm::run_stream`] with an explicit worker pool for the per-round
    /// solves. The pool cannot change any output bit (determinism
    /// contract of `crates/par` + `auction::shard`).
    pub fn run_stream_on(
        &mut self,
        scenario: &Scenario,
        seed: u64,
        cfg: &ingest::IngestConfig,
        pool: par::Pool,
    ) -> crate::streaming::StreamResult {
        Mechanism::reset(self);
        let name = Mechanism::name(self);
        let market = crate::simulation::Market::new(scenario, seed);
        crate::streaming::stream_rounds(scenario, market, seed, cfg, name, |_info, bids| {
            let outcome = self.round_on(bids, pool);
            (outcome, Some(self.queue_backlog()))
        })
    }
}

impl Mechanism for Lovm {
    fn name(&self) -> String {
        format!("LOVM(V={})", self.config.v)
    }

    fn select(&mut self, _info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome {
        // Serial pool: the incremental engine's per-pivot work on the
        // top-K path is O(K), well under fan-out break-even for a round.
        self.round_on(bids, par::Pool::serial())
    }

    fn backlog(&self) -> Option<f64> {
        Some(self.dpp.queue_backlog())
    }

    fn reset(&mut self) {
        self.dpp = DriftPlusPenalty::new(DppConfig {
            v: self.config.v,
            budget_per_round: self.config.budget_per_round,
            min_cost_weight: self.config.min_cost_weight,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::properties::{default_factor_grid, individually_rational, probe_truthfulness};
    use auction::valuation::ClientValue;

    fn config() -> LovmConfig {
        LovmConfig {
            v: 20.0,
            budget_per_round: 3.0,
            max_winners: Some(3),
            min_cost_weight: 1.0,
            valuation: Valuation::Linear(ClientValue {
                value_per_unit: 0.02,
                base_value: 0.2,
            }),
            payment_strategy: PaymentStrategy::Incremental,
            topology: MarketTopology::from_env(),
        }
    }

    fn info(round: usize) -> RoundInfo {
        RoundInfo {
            round,
            horizon: 100,
            total_budget: 300.0,
            spent_so_far: 0.0,
        }
    }

    fn bids() -> Vec<Bid> {
        vec![
            Bid::new(0, 1.0, 300, 0.9),
            Bid::new(1, 2.0, 400, 0.8),
            Bid::new(2, 0.5, 100, 1.0),
            Bid::new(3, 3.0, 500, 0.7),
            Bid::new(4, 1.5, 200, 0.6),
        ]
    }

    #[test]
    fn selects_and_pays_ir() {
        let mut m = Lovm::new(config());
        let o = m.select(&info(0), &bids());
        assert!(!o.winners.is_empty());
        assert!(o.winners.len() <= 3);
        assert!(individually_rational(&o, 1e-9));
    }

    #[test]
    fn queue_accumulates_overspend() {
        let mut m = Lovm::new(config());
        assert_eq!(m.queue_backlog(), 0.0);
        let o = m.select(&info(0), &bids());
        let expect = (o.total_payment() - 3.0).max(0.0);
        assert!((m.queue_backlog() - expect).abs() < 1e-9);
    }

    #[test]
    fn rising_queue_suppresses_spending() {
        let mut m = Lovm::new(config());
        let mut spends = Vec::new();
        for t in 0..50 {
            let o = m.select(&info(t), &bids());
            spends.push(o.total_payment());
        }
        // Early rounds overspend (queue empty), later rounds must throttle:
        // the average of the last 10 rounds is below the first round.
        let late: f64 = spends[40..].iter().sum::<f64>() / 10.0;
        assert!(
            late < spends[0],
            "late spend {late} not below initial {}",
            spends[0]
        );
    }

    #[test]
    fn long_run_budget_respected() {
        let mut m = Lovm::new(config());
        let mut total = 0.0;
        let rounds = 2000;
        for t in 0..rounds {
            total += m.select(&info(t), &bids()).total_payment();
        }
        let avg = total / rounds as f64;
        assert!(
            avg <= 3.0 * 1.05,
            "average spend {avg} exceeds rate 3.0 beyond transient"
        );
    }

    #[test]
    fn per_round_truthful_and_probe_detects() {
        // Freeze the queue state by probing round 0 repeatedly on clones.
        let base = Lovm::new(config());
        let all_bids = bids();
        for i in 0..all_bids.len() {
            let report = probe_truthfulness(&all_bids, i, &default_factor_grid(), |b| {
                let mut m = base.clone();
                m.select(&info(0), b)
            });
            assert!(
                report.is_truthful(1e-9),
                "bidder {i} gains {}",
                report.max_gain()
            );
        }
    }

    /// The whole round loop — selection, payments, queue update — is
    /// bit-identical under the incremental and naive payment engines, so
    /// the queue trajectories never diverge.
    #[test]
    fn payment_strategies_bit_identical_over_rounds() {
        let mut a = Lovm::new(config());
        let mut b = Lovm::new(config().with_payment_strategy(PaymentStrategy::Naive));
        for t in 0..30 {
            let oa = a.select(&info(t), &bids());
            let ob = b.select(&info(t), &bids());
            assert_eq!(oa, ob, "outcomes diverged at round {t}");
            assert_eq!(
                a.queue_backlog().to_bits(),
                b.queue_backlog().to_bits(),
                "queue diverged at round {t}"
            );
        }
    }

    #[test]
    fn reset_clears_queue() {
        let mut m = Lovm::new(config());
        m.select(&info(0), &bids());
        assert!(m.queue_backlog() > 0.0);
        m.reset();
        assert_eq!(m.queue_backlog(), 0.0);
    }

    #[test]
    fn name_includes_v() {
        assert_eq!(Lovm::new(config()).name(), "LOVM(V=20)");
    }

    #[test]
    fn for_scenario_uses_budget_rate() {
        let s = Scenario::small();
        let c = LovmConfig::for_scenario(&s, 7.0);
        assert_eq!(c.v, 7.0);
        assert!((c.budget_per_round - 2.0).abs() < 1e-12);
    }
}
