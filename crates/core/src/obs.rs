//! Observability glue: one schema-tagged JSON-lines record per sealed
//! round, the global-counter rollup behind the `stats` wire command, and
//! the JSON serialization of the telemetry registry.
//!
//! Everything here is a **pure observer**: records are built from values
//! the round already produced and written to the telemetry sink only —
//! never to stdout, the journal, or anything a digest folds. The golden
//! and determinism suites run with `LOVM_TELEMETRY` both unset and set
//! to pin that.

use ingest::{IngestStats, StreamTotals};
use metrics::json::{JsonValue, ToJson};
use telemetry::HistSnapshot;

/// Schema tag carried by every per-round telemetry record; bump the
/// suffix on any field change so downstream parsers can dispatch.
pub const ROUND_SCHEMA: &str = "lovm.telemetry.round.v1";

/// Everything one sealed round reports to the telemetry sink. The
/// `timings` are site-measured span values in nanoseconds (name, ns);
/// finer-grained distributions (per shard, per `SolverKind`, journal
/// fsync) live in the global histograms and are read via `stats`.
#[derive(Debug, Clone)]
pub struct RoundObservation<'a> {
    /// Which loop sealed the round (`"stream"` or `"serve"`).
    pub source: &'static str,
    /// Session name for served rounds, `None` for in-process streams.
    pub session: Option<&'a str>,
    /// The round index.
    pub round: usize,
    /// The seal's ingestion stats.
    pub stats: &'a IngestStats,
    /// Winners in the sealed auction.
    pub winners: usize,
    /// Virtual welfare of the round.
    pub welfare: f64,
    /// Total payment of the round.
    pub spend: f64,
    /// Virtual budget backlog after the round, if the mechanism has one.
    pub backlog: Option<f64>,
    /// Site-measured phase durations, `(phase, nanoseconds)`.
    pub timings: &'a [(&'static str, u64)],
}

impl RoundObservation<'_> {
    /// Renders the record. Field order is fixed so records diff cleanly.
    pub fn to_json(&self) -> JsonValue {
        let mut timings = JsonValue::object();
        for &(name, ns) in self.timings {
            timings = timings.field(name, ns);
        }
        let mut v = JsonValue::object()
            .field("schema", ROUND_SCHEMA)
            .field("source", self.source);
        if let Some(session) = self.session {
            v = v.field("session", session);
        }
        v = v
            .field("round", self.round)
            .field("ingest", self.stats.to_json())
            .field("winners", self.winners)
            .field("welfare", self.welfare)
            .field("spend", self.spend);
        if let Some(b) = self.backlog {
            v = v.field("backlog", b);
        }
        v.field("timings", timings)
    }

    /// Emits the record as one line to the telemetry sink (no-op when
    /// `LOVM_TELEMETRY` is unset) and folds the round into the global
    /// counters the `stats` command reports.
    pub fn record(&self) {
        if !telemetry::enabled() {
            return;
        }
        observe_round_counters(self.stats, self.backlog);
        if telemetry::sink_active() {
            telemetry::emit_line(&self.to_json().to_string());
        }
    }
}

/// Folds one seal's ingestion stats into the global counter rollup:
/// session-lifetime admitted/deferred/dropped/shed totals plus the
/// buffer high-water mark, mirroring [`StreamTotals::absorb`] at the
/// registry level.
fn observe_round_counters(stats: &IngestStats, backlog: Option<f64>) {
    telemetry::counter!("rounds.sealed").add(1);
    telemetry::counter!("ingest.arrivals").add(stats.arrivals as u64);
    telemetry::counter!("ingest.admitted").add((stats.admitted + stats.admitted_late) as u64);
    telemetry::counter!("ingest.admitted_late").add(stats.admitted_late as u64);
    telemetry::counter!("ingest.deferred").add(stats.deferred_in as u64);
    telemetry::counter!("ingest.dropped").add(stats.dropped as u64);
    telemetry::counter!("ingest.superseded").add(stats.superseded as u64);
    telemetry::counter!("ingest.shed").add(stats.shed as u64);
    telemetry::counter!("ingest.blocked").add(stats.blocked as u64);
    telemetry::gauge!("ingest.buffer_peak").set_max(stats.buffer_peak as f64);
    if let Some(b) = backlog {
        telemetry::gauge!("queue.backlog").set(b);
    }
}

/// One histogram snapshot as JSON: count, mean, exact min/max, the
/// standard quantiles, and the non-empty `(lower_bound, count)` buckets
/// (bounded — at most [`telemetry::BUCKETS`] pairs) for sparklines.
fn hist_json(snap: &HistSnapshot) -> JsonValue {
    let mut buckets = JsonValue::array();
    for (lo, c) in snap.nonzero_buckets() {
        buckets = buckets.item(JsonValue::array().item(lo).item(c));
    }
    JsonValue::object()
        .field("count", snap.count)
        .field("mean_ns", snap.mean())
        .field("min_ns", snap.min())
        .field("p50_ns", snap.quantile(50.0))
        .field("p95_ns", snap.quantile(95.0))
        .field("p99_ns", snap.quantile(99.0))
        .field("max_ns", snap.max())
        .field("buckets", buckets)
}

/// The full telemetry registry as JSON (name-sorted, deterministic
/// shape): what the `stats` wire command returns and `lovm top` renders.
pub fn registry_json() -> JsonValue {
    let snap = telemetry::snapshot();
    let mut counters = JsonValue::object();
    for (name, v) in &snap.counters {
        counters = counters.field(name, *v);
    }
    let mut gauges = JsonValue::object();
    for (name, v) in &snap.gauges {
        gauges = gauges.field(name, *v);
    }
    let mut hists = JsonValue::object();
    for (name, h) in &snap.hists {
        hists = hists.field(name, hist_json(h));
    }
    JsonValue::object()
        .field("enabled", telemetry::enabled())
        .field("counters", counters)
        .field("gauges", gauges)
        .field("hists", hists)
}

/// Session-lifetime ingestion rollup as JSON, with the conservation
/// identity's inputs spelled out.
pub fn totals_json(totals: &StreamTotals) -> JsonValue {
    totals.to_json()
}

/// Validates one emitted telemetry line: parses via `metrics::json` and
/// checks the schema tag plus required fields. Returns a description of
/// the first problem, if any. `lovm telemetry-check` runs this over a
/// whole file in CI.
pub fn validate_round_line(line: &str) -> Result<(), String> {
    let v = JsonValue::parse(line).map_err(|e| format!("unparseable JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("missing schema tag")?;
    if schema != ROUND_SCHEMA {
        return Err(format!("schema {schema:?}, expected {ROUND_SCHEMA:?}"));
    }
    for key in ["source", "round", "winners", "welfare", "spend"] {
        if v.get(key).is_none() {
            return Err(format!("missing field {key:?}"));
        }
    }
    let ingest = v.get("ingest").ok_or("missing field \"ingest\"")?;
    for key in ["arrivals", "admitted", "dropped", "shed", "buffer_peak"] {
        if ingest.get(key).and_then(|x| x.as_u64()).is_none() {
            return Err(format!("ingest missing numeric field {key:?}"));
        }
    }
    if v.get("timings").is_none() {
        return Err("missing field \"timings\"".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> IngestStats {
        IngestStats {
            round: 4,
            arrivals: 12,
            admitted: 9,
            admitted_late: 1,
            deferred_in: 0,
            dropped: 1,
            superseded: 0,
            shed: 1,
            blocked: 0,
            buffer_peak: 11,
            sealed: 10,
        }
    }

    #[test]
    fn round_record_round_trips_through_parser() {
        let stats = sample_stats();
        let timings = [("solve_ns", 12_345u64), ("round_ns", 99_999u64)];
        let obs = RoundObservation {
            source: "stream",
            session: None,
            round: 4,
            stats: &stats,
            winners: 3,
            welfare: 17.5,
            spend: 6.25,
            backlog: Some(1.5),
            timings: &timings,
        };
        let line = obs.to_json().to_string();
        validate_round_line(&line).expect("emitted record must validate");
        let v = JsonValue::parse(&line).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(ROUND_SCHEMA));
        assert_eq!(v.get("round").unwrap().as_u64(), Some(4));
        assert_eq!(
            v.get("ingest").unwrap().get("sealed").unwrap().as_u64(),
            Some(10)
        );
        assert_eq!(
            v.get("timings").unwrap().get("solve_ns").unwrap().as_u64(),
            Some(12_345)
        );
    }

    #[test]
    fn validate_rejects_wrong_schema_and_garbage() {
        assert!(validate_round_line("not json").is_err());
        let wrong = JsonValue::object()
            .field("schema", "lovm.other.v1")
            .to_string();
        let err = validate_round_line(&wrong).unwrap_err();
        assert!(err.contains("schema"), "unexpected error: {err}");
        let missing = JsonValue::object()
            .field("schema", ROUND_SCHEMA)
            .to_string();
        assert!(validate_round_line(&missing).is_err());
    }

    #[test]
    fn registry_json_has_the_contract_sections() {
        let v = registry_json();
        for key in ["enabled", "counters", "gauges", "hists"] {
            assert!(v.get(key).is_some(), "missing section {key}");
        }
        // The rendered registry itself parses back through the parser.
        let text = v.to_string();
        assert!(JsonValue::parse(&text).is_ok());
    }
}
