//! Economic bookkeeping across a whole run, with invariant checks.

use auction::outcome::AuctionOutcome;
use std::collections::BTreeMap;

/// Per-client cumulative account.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClientAccount {
    /// Rounds won.
    pub wins: usize,
    /// Total payments received.
    pub earned: f64,
    /// Total true cost incurred (training actually performed).
    pub cost_incurred: f64,
}

impl ClientAccount {
    /// Realized quasi-linear utility.
    pub fn utility(&self) -> f64 {
        self.earned - self.cost_incurred
    }
}

/// Aggregated economics of one simulated run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EconomicLedger {
    rounds: usize,
    total_value: f64,
    total_reported_cost: f64,
    total_true_cost: f64,
    total_payment: f64,
    accounts: BTreeMap<usize, ClientAccount>,
}

impl EconomicLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one round's outcome. `true_cost_of` maps a bidder id to its
    /// true (not reported) cost, so realized welfare is measured at truth.
    pub fn record<F>(&mut self, outcome: &AuctionOutcome, mut true_cost_of: F)
    where
        F: FnMut(usize) -> f64,
    {
        self.rounds += 1;
        for w in &outcome.winners {
            let true_cost = true_cost_of(w.bidder);
            self.total_value += w.value;
            self.total_reported_cost += w.cost;
            self.total_true_cost += true_cost;
            self.total_payment += w.payment;
            let acct = self.accounts.entry(w.bidder).or_default();
            acct.wins += 1;
            acct.earned += w.payment;
            acct.cost_incurred += true_cost;
        }
    }

    /// Rounds recorded.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total platform value accrued.
    pub fn total_value(&self) -> f64 {
        self.total_value
    }

    /// Total payments made (platform expenditure).
    pub fn total_payment(&self) -> f64 {
        self.total_payment
    }

    /// Total true cost incurred by clients.
    pub fn total_true_cost(&self) -> f64 {
        self.total_true_cost
    }

    /// Realized social welfare: value − true cost.
    pub fn social_welfare(&self) -> f64 {
        self.total_value - self.total_true_cost
    }

    /// Platform utility: value − expenditure.
    pub fn platform_utility(&self) -> f64 {
        self.total_value - self.total_payment
    }

    /// Aggregate client utility: payments − true costs.
    pub fn client_utility(&self) -> f64 {
        self.total_payment - self.total_true_cost
    }

    /// Per-client accounts (sorted by id).
    pub fn accounts(&self) -> &BTreeMap<usize, ClientAccount> {
        &self.accounts
    }

    /// Win counts indexed densely over `0..n` (clients that never won get
    /// 0); used for fairness metrics.
    pub fn win_counts(&self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|id| self.accounts.get(&id).map_or(0.0, |a| a.wins as f64))
            .collect()
    }

    /// Checks internal consistency: aggregates equal the sum of per-client
    /// accounts, and welfare identities hold.
    pub fn check_invariants(&self) -> Result<(), String> {
        let earned: f64 = self.accounts.values().map(|a| a.earned).sum();
        if (earned - self.total_payment).abs() > 1e-6 {
            return Err(format!(
                "payment mismatch: accounts {earned} vs total {}",
                self.total_payment
            ));
        }
        let cost: f64 = self.accounts.values().map(|a| a.cost_incurred).sum();
        if (cost - self.total_true_cost).abs() > 1e-6 {
            return Err(format!(
                "cost mismatch: accounts {cost} vs total {}",
                self.total_true_cost
            ));
        }
        let identity = self.social_welfare() - (self.platform_utility() + self.client_utility());
        if identity.abs() > 1e-6 {
            return Err(format!("welfare identity violated by {identity}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::outcome::Award;

    fn outcome(bidder: usize, cost: f64, value: f64, payment: f64) -> AuctionOutcome {
        AuctionOutcome::new(
            vec![Award {
                bidder,
                cost,
                value,
                payment,
            }],
            value - cost,
        )
    }

    #[test]
    fn record_accumulates() {
        let mut l = EconomicLedger::new();
        l.record(&outcome(0, 1.0, 5.0, 2.0), |_| 1.0);
        l.record(&outcome(1, 2.0, 6.0, 3.0), |_| 2.0);
        l.record(&AuctionOutcome::default(), |_| 0.0);
        assert_eq!(l.rounds(), 3);
        assert_eq!(l.total_value(), 11.0);
        assert_eq!(l.total_payment(), 5.0);
        assert_eq!(l.total_true_cost(), 3.0);
        assert_eq!(l.social_welfare(), 8.0);
        assert_eq!(l.platform_utility(), 6.0);
        assert_eq!(l.client_utility(), 2.0);
        l.check_invariants().unwrap();
    }

    #[test]
    fn misreport_separates_reported_and_true_cost() {
        let mut l = EconomicLedger::new();
        // Reported cost 3.0 but true cost 1.0.
        l.record(&outcome(0, 3.0, 5.0, 3.5), |_| 1.0);
        assert_eq!(l.total_true_cost(), 1.0);
        assert_eq!(l.social_welfare(), 4.0);
        let acct = l.accounts()[&0];
        assert_eq!(acct.utility(), 2.5);
    }

    #[test]
    fn win_counts_dense() {
        let mut l = EconomicLedger::new();
        l.record(&outcome(2, 1.0, 2.0, 1.0), |_| 1.0);
        l.record(&outcome(2, 1.0, 2.0, 1.0), |_| 1.0);
        assert_eq!(l.win_counts(4), vec![0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn welfare_identity_always_holds() {
        let mut l = EconomicLedger::new();
        for i in 0..10 {
            l.record(
                &outcome(i, i as f64, 2.0 * i as f64, 1.5 * i as f64),
                |id| id as f64 * 0.8,
            );
        }
        l.check_invariants().unwrap();
    }
}
