//! # baselines — comparator mechanisms
//!
//! Every mechanism LOVM is evaluated against, all implementing
//! [`lovm_core::mechanism::Mechanism`] so the harness can swap them in:
//!
//! * [`BudgetSplitGreedy`] — splits the remaining budget evenly over the
//!   remaining rounds and runs a greedy density auction with Myerson
//!   critical-value payments (truthful but myopic),
//! * [`MyopicVcg`] — per-round welfare-maximizing VCG with a hard
//!   per-round cost cap `B/R` (truthful, ignores the long-term structure),
//! * [`ProportionalShare`] — Singer's budget-feasible mechanism applied
//!   per round (truthful *and* payment-budget-feasible, still myopic),
//! * [`FixedPrice`] — posted-price recruiting (truthful, no adaptivity),
//! * [`RandomK`] — uniformly random winners paid their bid (the
//!   non-truthful strawman; shows why incentives matter),
//! * [`AllAvailable`] — recruits everyone and reimburses reported cost
//!   (incentive- and budget-agnostic FedAvg; the accuracy upper bound and
//!   budget-violation lower bound).

pub mod all_available;
pub mod budget_split;
pub mod fixed_price;
pub mod myopic;
pub mod proportional_share;
pub mod random_k;

pub use all_available::AllAvailable;
pub use budget_split::BudgetSplitGreedy;
pub use fixed_price::FixedPrice;
pub use myopic::MyopicVcg;
pub use proportional_share::ProportionalShare;
pub use random_k::RandomK;
