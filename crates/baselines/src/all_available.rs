//! Incentive- and budget-agnostic FedAvg.

use auction::bid::Bid;
use auction::outcome::{AuctionOutcome, Award};
use auction::valuation::Valuation;
use lovm_core::mechanism::{Mechanism, RoundInfo};

/// Recruits every present client and reimburses its reported cost.
///
/// This is plain FedAvg with cost reimbursement: the accuracy upper bound
/// (maximum participation) and the budget-violation worst case (expenditure
/// is whatever the clients ask). E2/E6 plot it as the "no mechanism"
/// reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllAvailable {
    valuation: Valuation,
}

impl AllAvailable {
    /// Creates the mechanism.
    pub fn new(valuation: Valuation) -> Self {
        AllAvailable { valuation }
    }
}

impl Mechanism for AllAvailable {
    fn name(&self) -> String {
        "AllAvailable".into()
    }

    fn select(&mut self, _info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome {
        let mut welfare = 0.0;
        let awards = bids
            .iter()
            .map(|b| {
                let value = self.valuation.client_value(b);
                welfare += value - b.cost;
                Award {
                    bidder: b.bidder,
                    cost: b.cost,
                    value,
                    payment: b.cost,
                }
            })
            .collect();
        AuctionOutcome::new(awards, welfare)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::valuation::ClientValue;

    fn val() -> Valuation {
        Valuation::Linear(ClientValue {
            value_per_unit: 1.0,
            base_value: 0.0,
        })
    }

    #[test]
    fn recruits_everyone() {
        let bids = vec![
            Bid::new(0, 1.0, 5, 1.0),
            Bid::new(1, 100.0, 5, 1.0), // even negative-welfare clients
        ];
        let mut m = AllAvailable::new(val());
        let info = RoundInfo {
            round: 0,
            horizon: 1,
            total_budget: 1.0,
            spent_so_far: 0.0,
        };
        let o = m.select(&info, &bids);
        assert_eq!(o.winners.len(), 2);
        assert_eq!(o.payment_of(1), Some(100.0)); // budget-agnostic
        assert_eq!(o.total_payment(), 101.0);
    }

    #[test]
    fn empty_round() {
        let mut m = AllAvailable::new(val());
        let info = RoundInfo {
            round: 0,
            horizon: 1,
            total_budget: 1.0,
            spent_so_far: 0.0,
        };
        assert!(m.select(&info, &[]).winners.is_empty());
    }
}
