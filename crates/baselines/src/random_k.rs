//! Random selection paid first-price — the non-truthful strawman.

use auction::bid::Bid;
use auction::outcome::{AuctionOutcome, Award};
use auction::valuation::Valuation;
use lovm_core::mechanism::{Mechanism, RoundInfo};
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

/// Selects `k` present clients uniformly at random each round and pays each
/// its *reported* cost (first-price).
///
/// Not truthful: a rational client inflates its report without affecting
/// its selection probability, so realized expenditure drifts upward under
/// strategic bidding. E4 uses this mechanism to show the probe detecting a
/// profitable misreport, and E1/E6 use it as the value-blind selection
/// baseline.
#[derive(Debug)]
pub struct RandomK {
    k: usize,
    valuation: Valuation,
    seed: u64,
    rng: StdRng,
}

impl RandomK {
    /// Creates the mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, valuation: Valuation, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        RandomK {
            k,
            valuation,
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Mechanism for RandomK {
    fn name(&self) -> String {
        format!("Random{}", self.k)
    }

    fn select(&mut self, _info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome {
        if bids.is_empty() {
            return AuctionOutcome::default();
        }
        let k = self.k.min(bids.len());
        // Partial Fisher–Yates over bid indices.
        let mut idx: Vec<usize> = (0..bids.len()).collect();
        for i in 0..k {
            let j = self.rng.random_range(i..idx.len());
            idx.swap(i, j);
        }
        let mut welfare = 0.0;
        let awards = idx[..k]
            .iter()
            .map(|&i| {
                let value = self.valuation.client_value(&bids[i]);
                welfare += value - bids[i].cost;
                Award {
                    bidder: bids[i].bidder,
                    cost: bids[i].cost,
                    value,
                    payment: bids[i].cost, // first-price
                }
            })
            .collect();
        AuctionOutcome::new(awards, welfare)
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::properties::{default_factor_grid, probe_truthfulness};
    use auction::valuation::ClientValue;

    fn val() -> Valuation {
        Valuation::Linear(ClientValue {
            value_per_unit: 1.0,
            base_value: 0.0,
        })
    }

    fn info() -> RoundInfo {
        RoundInfo {
            round: 0,
            horizon: 10,
            total_budget: 100.0,
            spent_so_far: 0.0,
        }
    }

    fn bids(n: usize) -> Vec<Bid> {
        (0..n)
            .map(|i| Bid::new(i, 1.0 + i as f64, 5, 1.0))
            .collect()
    }

    #[test]
    fn selects_exactly_k() {
        let mut m = RandomK::new(3, val(), 0);
        let o = m.select(&info(), &bids(10));
        assert_eq!(o.winners.len(), 3);
        // Distinct winners.
        let ids = o.winner_ids();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids, dedup);
    }

    #[test]
    fn clamps_k_to_population() {
        let mut m = RandomK::new(5, val(), 0);
        let o = m.select(&info(), &bids(2));
        assert_eq!(o.winners.len(), 2);
        assert!(m.select(&info(), &[]).winners.is_empty());
    }

    #[test]
    fn pays_first_price() {
        let mut m = RandomK::new(2, val(), 1);
        let o = m.select(&info(), &bids(4));
        for w in &o.winners {
            assert_eq!(w.payment, w.cost);
        }
    }

    #[test]
    fn selection_uniform_ish() {
        let mut counts = vec![0usize; 5];
        let mut m = RandomK::new(1, val(), 2);
        for _ in 0..5000 {
            let o = m.select(&info(), &bids(5));
            counts[o.winners[0].bidder] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 5000.0;
            assert!((frac - 0.2).abs() < 0.03, "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn probe_detects_profitable_overbidding() {
        // Overbidding raises the payment without affecting selection, so the
        // probe must find positive gain — this validates the E4 methodology
        // on a known-broken mechanism.
        let all = bids(4);
        // Average over many rounds by reusing one RNG stream inside the probe.
        let report = probe_truthfulness(&all, 0, &default_factor_grid(), |b| {
            let mut m = RandomK::new(4, val(), 3); // k = n → always selected
            m.select(&info(), b)
        });
        assert!(
            report.max_gain() > 0.5,
            "expected profitable misreport, gain {}",
            report.max_gain()
        );
        assert!(report.best_factor > 1.0);
    }

    #[test]
    fn reset_restores_stream() {
        let mut m = RandomK::new(2, val(), 7);
        let a = m.select(&info(), &bids(10)).winner_ids();
        m.reset();
        let b = m.select(&info(), &bids(10)).winner_ids();
        assert_eq!(a, b);
    }
}
