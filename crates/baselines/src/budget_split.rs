//! Budget-split greedy auction with critical-value payments.

use auction::bid::Bid;
use auction::critical::critical_value;
use auction::outcome::{AuctionOutcome, Award};
use auction::valuation::Valuation;
use lovm_core::mechanism::{Mechanism, RoundInfo};

/// Splits the *remaining* budget evenly across remaining rounds, then runs
/// a greedy value-per-cost auction within that per-round allowance, paying
/// Myerson critical values (the allocation is monotone in reported cost, so
/// this is truthful).
///
/// Myopia is the point: it cannot bank budget for rounds with better bids,
/// which is exactly what LOVM's virtual queue achieves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSplitGreedy {
    valuation: Valuation,
    /// Cap on winners per round.
    max_winners: Option<usize>,
}

impl BudgetSplitGreedy {
    /// Creates the mechanism.
    pub fn new(valuation: Valuation, max_winners: Option<usize>) -> Self {
        BudgetSplitGreedy {
            valuation,
            max_winners,
        }
    }

    /// The greedy allocation: winners under a per-round cost allowance.
    fn allocate(&self, allowance: f64, bids: &[Bid]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..bids.len())
            .filter(|&i| {
                let v = self.valuation.client_value(&bids[i]);
                v > bids[i].cost // positive welfare only
            })
            .collect();
        order.sort_by(|&a, &b| {
            let da = self.valuation.client_value(&bids[a]) / bids[a].cost.max(1e-9);
            let db = self.valuation.client_value(&bids[b]) / bids[b].cost.max(1e-9);
            db.partial_cmp(&da).expect("finite densities")
        });
        let k = self.max_winners.unwrap_or(bids.len());
        let mut winners = Vec::new();
        let mut spent = 0.0;
        for i in order {
            if winners.len() >= k {
                break;
            }
            if spent + bids[i].cost <= allowance + 1e-12 {
                spent += bids[i].cost;
                winners.push(i);
            }
        }
        winners
    }
}

impl Mechanism for BudgetSplitGreedy {
    fn name(&self) -> String {
        "BudgetSplitGreedy".into()
    }

    fn select(&mut self, info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome {
        let allowance = (info.remaining_budget() / info.rounds_remaining().max(1) as f64).max(0.0);
        let winner_indices = self.allocate(allowance, bids);
        let winner_set: std::collections::HashSet<usize> = winner_indices.iter().copied().collect();

        let mut awards = Vec::with_capacity(winner_indices.len());
        let mut welfare = 0.0;
        for &i in &winner_indices {
            let value = self.valuation.client_value(&bids[i]);
            // Critical value: the highest report at which i still wins.
            // Upper bound: its value (beyond that, welfare goes negative and
            // it is excluded regardless of budget).
            let upper = value.max(bids[i].cost) + 1e-6;
            let me = *self;
            let cv = critical_value(bids, i, upper, 1e-6, move |b| {
                me.allocate(allowance, b).contains(&i)
            })
            .unwrap_or(bids[i].cost);
            let payment = cv.max(bids[i].cost);
            welfare += value - bids[i].cost;
            awards.push(Award {
                bidder: bids[i].bidder,
                cost: bids[i].cost,
                value,
                payment,
            });
        }
        let _ = winner_set;
        AuctionOutcome::new(awards, welfare)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::properties::{default_factor_grid, individually_rational, probe_truthfulness};
    use auction::valuation::ClientValue;

    fn val() -> Valuation {
        Valuation::Linear(ClientValue {
            value_per_unit: 1.0,
            base_value: 0.0,
        })
    }

    fn info() -> RoundInfo {
        RoundInfo {
            round: 0,
            horizon: 10,
            total_budget: 50.0, // 5.0 per round
            spent_so_far: 0.0,
        }
    }

    fn bids() -> Vec<Bid> {
        vec![
            Bid::new(0, 1.0, 5, 1.0), // density 5
            Bid::new(1, 2.0, 6, 1.0), // density 3
            Bid::new(2, 3.0, 4, 1.0), // density 1.33
            Bid::new(3, 4.0, 2, 1.0), // negative welfare
        ]
    }

    #[test]
    fn greedy_respects_allowance() {
        let mut m = BudgetSplitGreedy::new(val(), None);
        let o = m.select(&info(), &bids());
        // Allowance 5.0: take bidder 0 (1.0), bidder 1 (2.0), skip 2? 1+2+3=6 > 5.
        assert_eq!(o.winner_ids(), vec![0, 1]);
        assert!(o.total_cost() <= 5.0 + 1e-9);
    }

    #[test]
    fn negative_welfare_excluded() {
        let mut m = BudgetSplitGreedy::new(val(), None);
        let o = m.select(&info(), &bids());
        assert!(!o.is_winner(3));
    }

    #[test]
    fn payments_are_ir() {
        let mut m = BudgetSplitGreedy::new(val(), None);
        let o = m.select(&info(), &bids());
        assert!(individually_rational(&o, 1e-6));
    }

    #[test]
    fn truthful_on_probe_grid() {
        let all = bids();
        for i in 0..3 {
            let report = probe_truthfulness(&all, i, &default_factor_grid(), |b| {
                let mut m = BudgetSplitGreedy::new(val(), None);
                m.select(&info(), b)
            });
            assert!(
                report.is_truthful(1e-3),
                "bidder {i} gains {} at factor {}",
                report.max_gain(),
                report.best_factor
            );
        }
    }

    #[test]
    fn max_winners_cap_applies() {
        let mut m = BudgetSplitGreedy::new(val(), Some(1));
        let o = m.select(&info(), &bids());
        assert_eq!(o.winners.len(), 1);
        assert_eq!(o.winner_ids(), vec![0]); // best density
    }

    #[test]
    fn allowance_tracks_remaining_budget() {
        let mut m = BudgetSplitGreedy::new(val(), None);
        let tight = RoundInfo {
            round: 9,
            horizon: 10,
            total_budget: 50.0,
            spent_so_far: 49.5, // only 0.5 left for the last round
        };
        let o = m.select(&tight, &bids());
        assert!(o.total_cost() <= 0.5 + 1e-9);
        assert!(o.winners.is_empty()); // cheapest bid costs 1.0
    }

    #[test]
    fn overspent_budget_yields_no_winners() {
        let mut m = BudgetSplitGreedy::new(val(), None);
        let broke = RoundInfo {
            round: 5,
            horizon: 10,
            total_budget: 10.0,
            spent_so_far: 12.0,
        };
        let o = m.select(&broke, &bids());
        assert!(o.winners.is_empty());
    }
}
