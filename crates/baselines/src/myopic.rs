//! Per-round welfare-maximizing auction with a hard per-round budget cap.

use auction::bid::Bid;
use auction::critical::critical_value;
use auction::outcome::{AuctionOutcome, Award};
use auction::valuation::Valuation;
use auction::wdp::{solve, SolverKind, WdpInstance, WdpItem};
use lovm_core::mechanism::{Mechanism, RoundInfo};

/// Maximizes per-round welfare `Σ (v_i − ĉ_i)` subject to the selected
/// set's *reported cost* staying within the equal-split cap `B/R`, with
/// **Myerson critical-value payments**.
///
/// Clarke (VCG) payments are *not* truthful here: the budget cap makes the
/// feasible set depend on reports, so underreporting can admit extra
/// winners and inflate the pivot (our unit tests demonstrate a profitable
/// 0.25× misreport under Clarke). The exact knapsack allocation *is*
/// monotone in each reported cost, so the critical value — the highest
/// report at which the bidder still wins, found by bisection — restores
/// dominant-strategy truthfulness (Myerson's lemma).
///
/// The mechanism remains myopic: it cannot bank budget across rounds,
/// which is LOVM's advantage in E1/E8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MyopicVcg {
    valuation: Valuation,
    max_winners: Option<usize>,
    /// Knapsack grid used when more than 12 bids are present.
    grid: usize,
}

impl MyopicVcg {
    /// Creates the mechanism with a default solver grid of 800 cells.
    pub fn new(valuation: Valuation, max_winners: Option<usize>) -> Self {
        MyopicVcg {
            valuation,
            max_winners,
            grid: 800,
        }
    }

    /// Overrides the knapsack grid resolution.
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    pub fn with_grid(mut self, grid: usize) -> Self {
        assert!(grid > 0, "grid must be positive");
        self.grid = grid;
        self
    }

    /// Exact welfare-maximizing allocation under the cost cap. Returns
    /// *positions* into `bids`.
    fn allocate(&self, cap: f64, bids: &[Bid]) -> Vec<usize> {
        let items: Vec<WdpItem> = bids
            .iter()
            .enumerate()
            .map(|(i, b)| WdpItem {
                bidder: i, // positions, so critical-value probes line up
                weight: self.valuation.client_value(b) - b.cost,
                cost: b.cost,
            })
            .collect();
        let mut inst = WdpInstance::new(items).with_budget(cap);
        if let Some(k) = self.max_winners {
            inst = inst.with_max_winners(k);
        }
        let solver = if bids.len() <= 12 {
            SolverKind::Exhaustive
        } else {
            SolverKind::Knapsack { grid: self.grid }
        };
        solve(&inst, solver).selected
    }
}

impl Mechanism for MyopicVcg {
    fn name(&self) -> String {
        "MyopicVCG".into()
    }

    fn select(&mut self, info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome {
        let cap = info.budget_per_round();
        let winners = self.allocate(cap, bids);
        let mut welfare = 0.0;
        let awards = winners
            .iter()
            .map(|&i| {
                let value = self.valuation.client_value(&bids[i]);
                // Critical report: cannot exceed the value (welfare must stay
                // positive) nor the cap (individual feasibility).
                let upper = value.min(cap).max(bids[i].cost) + 1e-6;
                let me = *self;
                let cv = critical_value(bids, i, upper, 1e-7, move |b| {
                    me.allocate(cap, b).contains(&i)
                })
                .unwrap_or(bids[i].cost);
                let payment = cv.max(bids[i].cost);
                welfare += value - bids[i].cost;
                Award {
                    bidder: bids[i].bidder,
                    cost: bids[i].cost,
                    value,
                    payment,
                }
            })
            .collect();
        AuctionOutcome::new(awards, welfare)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::properties::{
        default_factor_grid, individually_rational, probe_truthfulness, utility,
    };
    use auction::valuation::ClientValue;
    use auction::vcg::{VcgAuction, VcgConfig};

    fn val() -> Valuation {
        Valuation::Linear(ClientValue {
            value_per_unit: 1.0,
            base_value: 0.0,
        })
    }

    fn info() -> RoundInfo {
        RoundInfo {
            round: 0,
            horizon: 10,
            total_budget: 40.0, // cap 4.0 per round
            spent_so_far: 0.0,
        }
    }

    fn bids() -> Vec<Bid> {
        vec![
            Bid::new(0, 1.0, 6, 1.0),
            Bid::new(1, 2.0, 5, 1.0),
            Bid::new(2, 3.0, 9, 1.0),
        ]
    }

    #[test]
    fn respects_cost_cap() {
        let mut m = MyopicVcg::new(val(), None);
        let o = m.select(&info(), &bids());
        assert!(o.total_cost() <= 4.0 + 1e-9);
        assert!(!o.winners.is_empty());
    }

    #[test]
    fn maximizes_welfare_within_cap() {
        // Welfare: b0=5, b1=3, b2=6. Cap 4: {0, 2} costs 4 → welfare 11.
        let mut m = MyopicVcg::new(val(), None);
        let o = m.select(&info(), &bids());
        assert_eq!(o.winner_ids(), vec![0, 2]);
    }

    #[test]
    fn ir_and_truthful_small() {
        let all = bids();
        let mut m = MyopicVcg::new(val(), None);
        let o = m.select(&info(), &all);
        assert!(individually_rational(&o, 1e-6));
        for i in 0..all.len() {
            let report = probe_truthfulness(&all, i, &default_factor_grid(), |b| {
                let mut m = MyopicVcg::new(val(), None);
                m.select(&info(), b)
            });
            assert!(
                report.is_truthful(1e-3),
                "bidder {i} gains {}",
                report.max_gain()
            );
        }
    }

    /// Documents why critical values are required: budget-capped Clarke
    /// payments admit a profitable underreport (bidder 2 at 0.25× frees
    /// budget for bidder 1, inflating its own pivot).
    #[test]
    fn clarke_payments_would_not_be_truthful_here() {
        let all = bids();
        let clarke = |b: &[Bid]| {
            VcgAuction::new(VcgConfig {
                value_weight: 1.0,
                cost_weight: 1.0,
                max_winners: None,
                ..VcgConfig::default()
            })
            .run_with_budget(b, &val(), 4.0, SolverKind::Exhaustive)
        };
        let truthful = utility(&clarke(&all), 2, 3.0);
        let mut lying = all.clone();
        lying[2] = lying[2].with_cost(0.75);
        let lied = utility(&clarke(&lying), 2, 3.0);
        assert!(
            lied > truthful + 1.0,
            "expected the Clarke counterexample: truthful {truthful}, lied {lied}"
        );
    }

    #[test]
    fn large_instance_uses_knapsack_and_stays_capped() {
        let many: Vec<Bid> = (0..60)
            .map(|i| Bid::new(i, 0.5 + (i % 7) as f64 * 0.3, 2 + i % 10, 1.0))
            .collect();
        let mut m = MyopicVcg::new(val(), None).with_grid(400);
        let o = m.select(&info(), &many);
        assert!(o.total_cost() <= 4.0 + 1e-9);
        assert!(individually_rational(&o, 1e-6));
    }

    #[test]
    fn winner_cap_applies() {
        let mut m = MyopicVcg::new(val(), Some(1));
        let o = m.select(&info(), &bids());
        assert_eq!(o.winners.len(), 1);
        assert_eq!(o.winner_ids(), vec![2]); // highest welfare within cap
    }

    #[test]
    fn name_stable() {
        assert_eq!(MyopicVcg::new(val(), None).name(), "MyopicVCG");
    }
}
