//! Posted-price recruiting.

use auction::bid::Bid;
use auction::outcome::{AuctionOutcome, Award};
use auction::valuation::Valuation;
use lovm_core::mechanism::{Mechanism, RoundInfo};

/// Posts a fixed price `p̄`; every present client with reported cost
/// `ĉ_i ≤ p̄` is recruited (cheapest first, until the per-round budget
/// `B/R` runs out or the winner cap binds) and paid exactly `p̄`.
///
/// Trivially truthful (the payment never depends on the report; reporting
/// above your cost only loses you profitable rounds) and extremely simple —
/// but value-blind and unable to adapt to bid quality, which E1/E6 expose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPrice {
    price: f64,
    valuation: Valuation,
    max_winners: Option<usize>,
}

impl FixedPrice {
    /// Creates the mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `price` is negative or non-finite.
    pub fn new(price: f64, valuation: Valuation, max_winners: Option<usize>) -> Self {
        assert!(
            price.is_finite() && price >= 0.0,
            "price must be finite and >= 0"
        );
        FixedPrice {
            price,
            valuation,
            max_winners,
        }
    }

    /// The posted price.
    pub fn price(&self) -> f64 {
        self.price
    }
}

impl Mechanism for FixedPrice {
    fn name(&self) -> String {
        format!("FixedPrice({})", self.price)
    }

    fn select(&mut self, info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome {
        let allowance = info.budget_per_round();
        let mut accepters: Vec<usize> = (0..bids.len())
            .filter(|&i| bids[i].cost <= self.price)
            .collect();
        // Cheapest first so the budget recruits as many as possible.
        accepters.sort_by(|&a, &b| {
            bids[a]
                .cost
                .partial_cmp(&bids[b].cost)
                .expect("finite costs")
        });
        let k = self.max_winners.unwrap_or(bids.len());
        let mut awards = Vec::new();
        let mut spent = 0.0;
        let mut welfare = 0.0;
        for i in accepters {
            if awards.len() >= k || spent + self.price > allowance + 1e-12 {
                break;
            }
            let value = self.valuation.client_value(&bids[i]);
            spent += self.price;
            welfare += value - bids[i].cost;
            awards.push(Award {
                bidder: bids[i].bidder,
                cost: bids[i].cost,
                value,
                payment: self.price,
            });
        }
        AuctionOutcome::new(awards, welfare)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::properties::{default_factor_grid, probe_truthfulness};
    use auction::valuation::ClientValue;

    fn val() -> Valuation {
        Valuation::Linear(ClientValue {
            value_per_unit: 1.0,
            base_value: 0.0,
        })
    }

    fn info() -> RoundInfo {
        RoundInfo {
            round: 0,
            horizon: 10,
            total_budget: 30.0, // 3.0 per round
            spent_so_far: 0.0,
        }
    }

    #[test]
    fn recruits_below_price_cheapest_first() {
        let bids = vec![
            Bid::new(0, 2.0, 5, 1.0),
            Bid::new(1, 0.5, 5, 1.0),
            Bid::new(2, 1.2, 5, 1.0),
            Bid::new(3, 3.0, 5, 1.0), // above price
        ];
        let mut m = FixedPrice::new(1.5, val(), None);
        let o = m.select(&info(), &bids);
        // Price 1.5, allowance 3.0 → at most 2 winners: the two cheapest.
        assert_eq!(o.winner_ids(), vec![1, 2]);
        for w in &o.winners {
            assert_eq!(w.payment, 1.5);
        }
    }

    #[test]
    fn budget_caps_recruitment() {
        let bids: Vec<Bid> = (0..10).map(|i| Bid::new(i, 0.1, 5, 1.0)).collect();
        let mut m = FixedPrice::new(1.0, val(), None);
        let o = m.select(&info(), &bids);
        assert_eq!(o.winners.len(), 3); // 3.0 allowance / 1.0 price
        assert!((o.total_payment() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn winner_cap_applies() {
        let bids: Vec<Bid> = (0..10).map(|i| Bid::new(i, 0.1, 5, 1.0)).collect();
        let mut m = FixedPrice::new(0.2, val(), Some(2));
        let o = m.select(&info(), &bids);
        assert_eq!(o.winners.len(), 2);
    }

    #[test]
    fn truthful_probe() {
        let bids = vec![
            Bid::new(0, 1.0, 5, 1.0),
            Bid::new(1, 0.8, 4, 1.0),
            Bid::new(2, 2.5, 6, 1.0),
        ];
        for i in 0..bids.len() {
            let report = probe_truthfulness(&bids, i, &default_factor_grid(), |b| {
                let mut m = FixedPrice::new(1.5, val(), None);
                m.select(&info(), b)
            });
            assert!(
                report.is_truthful(1e-9),
                "bidder {i} gains {}",
                report.max_gain()
            );
        }
    }

    #[test]
    fn ir_holds_at_reported_cost() {
        // Winners are paid price ≥ their report by construction.
        let bids = vec![Bid::new(0, 1.0, 5, 1.0)];
        let mut m = FixedPrice::new(1.5, val(), None);
        let o = m.select(&info(), &bids);
        assert!(o.payment_of(0).unwrap() >= 1.0);
    }

    #[test]
    fn nobody_below_price_no_winners() {
        let bids = vec![Bid::new(0, 5.0, 5, 1.0)];
        let mut m = FixedPrice::new(1.0, val(), None);
        let o = m.select(&info(), &bids);
        assert!(o.winners.is_empty());
    }
}
