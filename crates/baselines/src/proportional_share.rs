//! Singer-style proportional-share budget-feasible mechanism.

use auction::bid::Bid;
use auction::critical::critical_value;
use auction::outcome::{AuctionOutcome, Award};
use auction::valuation::Valuation;
use lovm_core::mechanism::{Mechanism, RoundInfo};

/// The proportional-share budget-feasible mechanism (Singer, FOCS 2010),
/// applied per round with the equal-split allowance `B/R`.
///
/// Allocation: sort bids by value density `v_i / ĉ_i` descending and admit
/// greedily while the *proportional-share condition*
/// `ĉ_i ≤ v_i · B_r / Σ_{j admitted so far incl. i} v_j` holds. The rule is
/// monotone, and paying each winner its critical value (bisection) makes it
/// truthful; Singer's analysis further guarantees the critical values sum
/// to at most the budget — unlike critical payments for plain greedy, which
/// only cap *costs*, not payments.
///
/// This is the strongest known truthful *per-round budget-feasible*
/// comparator; its gap to LOVM in E1/E8 measures the value of long-term
/// (cross-round) budget reallocation specifically, with payment feasibility
/// held equal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionalShare {
    valuation: Valuation,
}

impl ProportionalShare {
    /// Creates the mechanism.
    pub fn new(valuation: Valuation) -> Self {
        ProportionalShare { valuation }
    }

    /// The proportional-share allocation. Returns positions into `bids` in
    /// admission (density) order.
    fn allocate(&self, allowance: f64, bids: &[Bid]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..bids.len())
            .filter(|&i| {
                let v = self.valuation.client_value(&bids[i]);
                v > 0.0 && bids[i].cost >= 0.0
            })
            .collect();
        order.sort_by(|&a, &b| {
            let da = self.valuation.client_value(&bids[a]) / bids[a].cost.max(1e-12);
            let db = self.valuation.client_value(&bids[b]) / bids[b].cost.max(1e-12);
            db.partial_cmp(&da).expect("finite densities")
        });
        let mut winners = Vec::new();
        let mut value_sum = 0.0;
        for i in order {
            let v = self.valuation.client_value(&bids[i]);
            // Admit iff the proportional share covers the reported cost.
            if bids[i].cost <= v * allowance / (value_sum + v) {
                value_sum += v;
                winners.push(i);
            } else {
                // Classic greedy stopping rule: stop at the first rejection
                // (continuing would break the monotonicity analysis).
                break;
            }
        }
        winners
    }
}

impl Mechanism for ProportionalShare {
    fn name(&self) -> String {
        "ProportionalShare".into()
    }

    fn select(&mut self, info: &RoundInfo, bids: &[Bid]) -> AuctionOutcome {
        let allowance = info.budget_per_round();
        if allowance <= 0.0 {
            return AuctionOutcome::default();
        }
        let winners = self.allocate(allowance, bids);
        let mut welfare = 0.0;
        let awards = winners
            .iter()
            .map(|&i| {
                let value = self.valuation.client_value(&bids[i]);
                // Critical value never exceeds v_i·B_r/(Σv over the winner
                // alone) = allowance, nor the value itself.
                let upper = allowance.min(value).max(bids[i].cost) + 1e-6;
                let me = *self;
                let cv = critical_value(bids, i, upper, 1e-7, move |b| {
                    me.allocate(allowance, b).contains(&i)
                })
                .unwrap_or(bids[i].cost);
                welfare += value - bids[i].cost;
                Award {
                    bidder: bids[i].bidder,
                    cost: bids[i].cost,
                    value,
                    payment: cv.max(bids[i].cost),
                }
            })
            .collect();
        AuctionOutcome::new(awards, welfare)
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use auction::properties::{default_factor_grid, individually_rational, probe_truthfulness};
    use auction::valuation::ClientValue;

    fn val() -> Valuation {
        Valuation::Linear(ClientValue {
            value_per_unit: 1.0,
            base_value: 0.0,
        })
    }

    fn info(budget_per_round: f64) -> RoundInfo {
        RoundInfo {
            round: 0,
            horizon: 10,
            total_budget: budget_per_round * 10.0,
            spent_so_far: 0.0,
        }
    }

    fn bids() -> Vec<Bid> {
        vec![
            Bid::new(0, 1.0, 8, 1.0),  // density 8
            Bid::new(1, 2.0, 10, 1.0), // density 5
            Bid::new(2, 1.5, 4, 1.0),  // density 2.67
            Bid::new(3, 4.0, 6, 1.0),  // density 1.5
        ]
    }

    #[test]
    fn admits_while_proportional_share_covers_cost() {
        let mut m = ProportionalShare::new(val());
        let o = m.select(&info(6.0), &bids());
        // i=0: cost 1.0 ≤ 8·6/8 = 6 → in (value_sum 8).
        // i=1: cost 2.0 ≤ 10·6/18 = 3.33 → in (value_sum 18).
        // i=2: cost 1.5 ≤ 4·6/22 = 1.09? no → stop.
        assert_eq!(o.winner_ids(), vec![0, 1]);
    }

    #[test]
    fn payments_within_budget() {
        // Singer's guarantee: total critical payments ≤ allowance.
        let mut m = ProportionalShare::new(val());
        for allowance in [2.0, 4.0, 6.0, 10.0, 20.0] {
            let o = m.select(&info(allowance), &bids());
            assert!(
                o.total_payment() <= allowance + 1e-4,
                "allowance {allowance}: paid {}",
                o.total_payment()
            );
        }
    }

    #[test]
    fn ir_and_truthful() {
        let all = bids();
        let mut m = ProportionalShare::new(val());
        let o = m.select(&info(6.0), &all);
        assert!(individually_rational(&o, 1e-6));
        for i in 0..all.len() {
            let report = probe_truthfulness(&all, i, &default_factor_grid(), |b| {
                let mut m = ProportionalShare::new(val());
                m.select(&info(6.0), b)
            });
            assert!(
                report.is_truthful(1e-3),
                "bidder {i} gains {}",
                report.max_gain()
            );
        }
    }

    #[test]
    fn empty_and_zero_budget() {
        let mut m = ProportionalShare::new(val());
        assert!(m.select(&info(6.0), &[]).winners.is_empty());
        let broke = RoundInfo {
            round: 0,
            horizon: 10,
            total_budget: 0.0,
            spent_so_far: 0.0,
        };
        assert!(m.select(&broke, &bids()).winners.is_empty());
    }

    #[test]
    fn large_budget_admits_all_positive_density() {
        let mut m = ProportionalShare::new(val());
        let o = m.select(&info(1000.0), &bids());
        assert_eq!(o.winners.len(), 4);
    }

    /// Property: budget feasibility of payments holds on random instances
    /// (seeded).
    #[test]
    fn payments_never_exceed_allowance() {
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5A1E);
        for _ in 0..300 {
            let n = rng.random_range(1..12usize);
            let bids: Vec<Bid> = (0..n)
                .map(|i| {
                    Bid::new(
                        i,
                        rng.random_range(0.1..5.0),
                        rng.random_range(1..20usize),
                        1.0,
                    )
                })
                .collect();
            let allowance = rng.random_range(1.0..30.0f64);
            let mut m = ProportionalShare::new(val());
            let o = m.select(&info(allowance), &bids);
            assert!(
                o.total_payment() <= allowance + 1e-3,
                "paid {} over allowance {allowance}",
                o.total_payment()
            );
            assert!(individually_rational(&o, 1e-6));
        }
    }
}
