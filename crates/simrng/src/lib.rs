//! # simrng — zero-dependency deterministic randomness
//!
//! A small, self-contained replacement for the parts of the `rand` crate this
//! workspace uses, so the whole tree builds offline with no external
//! dependencies. Everything is deterministic given a seed:
//!
//! * [`SplitMix64`] — seed expansion and [`derive_seed`] stream splitting.
//! * [`Xoshiro256pp`] — the default generator behind [`rngs::StdRng`].
//! * [`Pcg32`] — a compact 32-bit-output alternative core.
//! * [`Rng`] / [`RngExt`] — the core trait plus extension methods
//!   (`random`, `random_range`, `random_bool`, `gaussian`, `shuffle`).
//!
//! The API mirrors the subset of `rand` 0.9 idiom used across the workspace,
//! so porting a module is a one-line import change:
//!
//! ```
//! use simrng::rngs::StdRng;
//! use simrng::{RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let u: f64 = rng.random();
//! let k = rng.random_range(0..10usize);
//! assert!((0.0..1.0).contains(&u));
//! assert!(k < 10);
//! ```

/// Generators, named to mirror `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator (xoshiro256++).
    pub type StdRng = super::Xoshiro256pp;
}

/// A seedable generator. Mirrors `rand::SeedableRng`'s `seed_from_u64` entry
/// point; all workspace code seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it through
    /// [`SplitMix64`] so that nearby seeds give unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core randomness source: everything derives from `next_u64`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    ///
    /// Default takes the high half of [`next_u64`](Self::next_u64); cores
    /// with a natural 32-bit output (PCG32) override it.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

// ---------------------------------------------------------------------------
// SplitMix64
// ---------------------------------------------------------------------------

/// SplitMix64: a tiny, fast generator with excellent avalanche behaviour.
///
/// Used for seed expansion (per Blackman & Vigna's recommendation for
/// seeding xoshiro state) and available as a generator in its own right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream starting from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives an independent child seed from a base seed and a stream index.
///
/// One SplitMix64 avalanche step over the combined value; gives each
/// client/process its own stream while keeping the experiment reproducible
/// from a single root seed.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// xoshiro256++
// ---------------------------------------------------------------------------

/// xoshiro256++ (Blackman & Vigna): 256-bit state, 64-bit output, period
/// 2^256 − 1. The workspace default behind [`rngs::StdRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // All-zero state is the one fixed point; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway for safety.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

// ---------------------------------------------------------------------------
// PCG32
// ---------------------------------------------------------------------------

/// PCG32 (XSH-RR 64/32): 64-bit LCG state, 32-bit permuted output.
///
/// A compact alternative core; `next_u64` concatenates two 32-bit draws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a PCG32 generator from a state seed and a stream selector.
    pub fn new(seed: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = Self { state: 0, inc };
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(inc);
        rng.state = rng.state.wrapping_add(seed);
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(inc);
        rng
    }
}

impl SeedableRng for Pcg32 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let state_seed = sm.next_u64();
        let stream = sm.next_u64();
        Self::new(state_seed, stream)
    }
}

impl Rng for Pcg32 {
    fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

// ---------------------------------------------------------------------------
// Sampling: `random::<T>()`
// ---------------------------------------------------------------------------

/// Types that can be drawn uniformly from a generator's full output range
/// (unit interval for floats). Backs [`RngExt::random`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use the top bit: the high bits of every core here are the
        // best-mixed ones.
        rng.next_u64() >> 63 == 1
    }
}

// ---------------------------------------------------------------------------
// Sampling: `random_range(lo..hi)` / `random_range(lo..=hi)`
// ---------------------------------------------------------------------------

/// Returns a uniform value in `[0, n)` without modulo bias
/// (Lemire's multiply-shift with rejection). `n` must be non-zero.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types with uniform sampling over arbitrary sub-ranges.
/// Backs [`RngExt::random_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                lo + uniform_below(rng, (hi - lo) as u64) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let u: $t = StandardSample::sample(rng);
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let u: $t = StandardSample::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range expressions accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

// ---------------------------------------------------------------------------
// RngExt
// ---------------------------------------------------------------------------

/// Extension methods available on every [`Rng`]. Mirrors the `rand 0.9`
/// method names (`random`, `random_range`, `random_bool`) used across the
/// workspace, plus Gaussian and shuffle helpers.
pub trait RngExt: Rng {
    /// Draws a value of type `T` from its standard distribution
    /// (full integer range; `[0, 1)` for floats; fair coin for `bool`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `lo..hi` or `lo..=hi`.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }

    /// Standard normal draw via the Box–Muller transform.
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.random::<f64>();
        let u2: f64 = self.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.gaussian()
    }

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_identical_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut p = Pcg32::seed_from_u64(42);
        let mut q = Pcg32::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(p.next_u32(), q.next_u32());
        }
        let mut s = SplitMix64::seed_from_u64(7);
        let mut t = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(s.next_u64(), t.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 should give unrelated streams");
    }

    #[test]
    fn derive_seed_streams_are_independent() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        assert_ne!(s0, s1);
        // Deterministic.
        assert_eq!(derive_seed(42, 1), s1);
        // Streams seeded from derived seeds should not collide pointwise.
        let mut a = StdRng::seed_from_u64(s0);
        let mut b = StdRng::seed_from_u64(s1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let k = rng.random_range(10..20usize);
            assert!((10..20).contains(&k));
            let j = rng.random_range(0..=4u64);
            assert!(j <= 4);
            let x = rng.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&x));
            let s = rng.random_range(-8..8i64);
            assert!((-8..8).contains(&s));
        }
    }

    #[test]
    fn random_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.125).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn gaussian_mean_and_variance_sanity() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.03, "variance {var} too far from 1");
        let shifted: f64 = (0..n).map(|_| rng.gaussian_with(5.0, 0.5)).sum::<f64>() / n as f64;
        assert!((shifted - 5.0).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // A 100-element shuffle leaving everything fixed has probability
        // 1/100!; treat that as a failure.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(19);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!((0..1000).all(|_| !rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn pcg32_matches_reference_vector() {
        // Reference values for PCG32 XSH-RR with seed 42, stream 54, as
        // produced by the canonical pcg32_srandom_r/pcg32_random_r pair.
        let mut rng = Pcg32::new(42, 54);
        let expect: [u32; 6] = [
            0xa15c_02b7,
            0x7b47_f409,
            0xba1d_3330,
            0x83d2_f293,
            0xbfa4_784b,
            0xcbed_606e,
        ];
        for &e in &expect {
            assert_eq!(rng.next_u32(), e);
        }
    }

    #[test]
    fn trait_objects_and_mut_refs_work() {
        // `R: Rng + ?Sized` call sites pass `&mut rng` through generic fns.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(23);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
