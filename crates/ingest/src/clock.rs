//! Virtual time: the monotone clock and the round/deadline schedule.
//!
//! All streaming simulation runs on a continuous virtual clock measured in
//! *rounds*: round `r` spans `[r·len, (r+1)·len)` with `len =`
//! [`RoundSchedule::round_len`]. The schedule answers the three questions
//! the collector asks about any timestamp: which round span does it fall
//! in, did it beat that round's deadline, and (under a grace-window
//! policy) did it at least land inside the grace extension.

/// A monotone virtual clock.
///
/// Purely bookkeeping — time only advances when the ingestion loop
/// processes a seal — but centralizing it gives every component the same
/// notion of "now" and catches time-travel bugs early.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock { now: 0.0 }
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is non-finite or would move time backwards.
    pub fn advance_to(&mut self, t: f64) {
        assert!(
            t.is_finite() && t >= self.now,
            "virtual clock cannot move from {} to {t}",
            self.now
        );
        self.now = t;
    }
}

/// The round/deadline geometry shared by the collector and the drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSchedule {
    round_len: f64,
    deadline: f64,
    grace: f64,
}

impl RoundSchedule {
    /// Builds a schedule. `deadline` and `grace` are fractions of
    /// `round_len`; the round seals at `deadline + grace` into its span.
    ///
    /// # Panics
    ///
    /// Panics unless `round_len > 0`, `0 < deadline ≤ 1`, `grace ≥ 0`, and
    /// `deadline + grace ≤ 1` (a round must seal before the next one
    /// would).
    pub fn new(round_len: f64, deadline: f64, grace: f64) -> Self {
        assert!(
            round_len.is_finite() && round_len > 0.0,
            "round_len must be positive"
        );
        assert!(
            deadline > 0.0 && deadline <= 1.0,
            "deadline must be in (0, 1], got {deadline}"
        );
        assert!(grace >= 0.0 && grace.is_finite(), "grace must be >= 0");
        assert!(
            deadline + grace <= 1.0,
            "deadline {deadline} + grace {grace} must not exceed the round"
        );
        RoundSchedule {
            round_len,
            deadline,
            grace,
        }
    }

    /// Length of one round in virtual time.
    pub fn round_len(&self) -> f64 {
        self.round_len
    }

    /// Deadline fraction of the round.
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// Grace fraction (0 unless the late policy is a grace window).
    pub fn grace(&self) -> f64 {
        self.grace
    }

    /// The instant round `round` seals: `(round + deadline + grace)·len`.
    pub fn seal_time(&self, round: usize) -> f64 {
        (round as f64 + self.deadline + self.grace) * self.round_len
    }

    /// The round span a timestamp falls into (spans are right-open, so a
    /// timestamp exactly on a boundary belongs to the *next* round).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite timestamps.
    pub fn span_of(&self, t: f64) -> usize {
        assert!(t.is_finite() && t >= 0.0, "timestamp {t} out of domain");
        (t / self.round_len) as usize
    }

    /// Offset of a timestamp within its round span, in `[0, round_len)`.
    pub fn offset_of(&self, t: f64) -> f64 {
        t - self.span_of(t) as f64 * self.round_len
    }

    /// Did this arrival beat its round's deadline?
    pub fn on_time(&self, t: f64) -> bool {
        self.offset_of(t) <= self.deadline * self.round_len
    }

    /// Did this arrival miss the deadline but land inside the grace
    /// window? (Always false when `grace == 0`.)
    pub fn in_grace(&self, t: f64) -> bool {
        let offset = self.offset_of(t);
        offset > self.deadline * self.round_len
            && offset <= (self.deadline + self.grace) * self.round_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance_to(1.5);
        c.advance_to(1.5); // staying put is fine
        c.advance_to(2.0);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    #[should_panic(expected = "cannot move")]
    fn clock_rejects_time_travel() {
        let mut c = VirtualClock::new();
        c.advance_to(3.0);
        c.advance_to(2.0);
    }

    #[test]
    fn schedule_geometry() {
        let s = RoundSchedule::new(1.0, 0.6, 0.2);
        assert!((s.seal_time(0) - 0.8).abs() < 1e-12);
        assert!((s.seal_time(3) - 3.8).abs() < 1e-12);
        assert_eq!(s.span_of(2.99), 2);
        assert_eq!(s.span_of(3.0), 3); // right-open spans
        assert!((s.offset_of(2.75) - 0.75).abs() < 1e-12);
        // Comparisons stay clear of the deadline/grace boundaries: exact
        // boundary behaviour is float-representation-dependent and no
        // arrival process produces exact boundary instants.
        assert!(s.on_time(2.59));
        assert!(s.on_time(2.0));
        assert!(!s.on_time(2.61));
        assert!(s.in_grace(2.7));
        assert!(s.in_grace(2.79));
        assert!(!s.in_grace(2.81));
        assert!(!s.in_grace(2.5));
    }

    #[test]
    fn full_deadline_admits_the_whole_span() {
        let s = RoundSchedule::new(1.0, 1.0, 0.0);
        assert!(s.on_time(4.999_999));
        assert!(s.on_time(5.0)); // boundary belongs to round 5, on time there
        assert_eq!(s.seal_time(4), 5.0);
    }

    #[test]
    fn scaled_round_len() {
        let s = RoundSchedule::new(4.0, 0.5, 0.0);
        assert_eq!(s.seal_time(2), 10.0);
        assert_eq!(s.span_of(9.9), 2);
        assert!(s.on_time(9.9));
        assert!(!s.on_time(10.5));
    }

    #[test]
    #[should_panic(expected = "must not exceed the round")]
    fn rejects_overlong_grace() {
        let _ = RoundSchedule::new(1.0, 0.9, 0.2);
    }

    #[test]
    #[should_panic(expected = "deadline must be in (0, 1]")]
    fn rejects_zero_deadline() {
        let _ = RoundSchedule::new(1.0, 0.0, 0.0);
    }
}
