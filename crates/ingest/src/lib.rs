//! # ingest — event-driven streaming bid ingestion
//!
//! LOVM is an *online* mechanism, but the batch entry points hand it a
//! complete bid vector at round start. This crate is the missing layer for
//! live traffic: it turns a stream of timestamped bid arrivals into the
//! sealed per-round bid vectors the existing (topology-aware) VCG path
//! consumes, deterministically.
//!
//! * [`clock`] — the virtual clock and the round/deadline/grace schedule,
//! * [`events`] — a binary-heap event queue with total `(time, seq)`
//!   order, the root of the determinism guarantee,
//! * [`buffer`] — the bounded arrival buffer with
//!   [`buffer::Backpressure::Block`] / [`buffer::Backpressure::Shed`]
//!   admission control,
//! * [`collector`] — the round collector: per-round deadlines,
//!   [`collector::LateBidPolicy`], sealing into canonical
//!   [`auction::sealed::SealedRound`]s with per-round [`stats::IngestStats`],
//! * [`driver`] — how arrivals reach the collector: the deterministic
//!   [`driver::VirtualTimeDriver`] (the tested default) and the
//!   [`driver::ThreadedDriver`] (real `std::sync::mpsc` producers sized by
//!   a [`par::Pool`], bit-identical to virtual in lossless mode),
//! * [`stats`] — per-round and whole-stream ingestion telemetry.
//!
//! Arrival streams come from [`workload::arrivals`] (Poisson / bursty /
//! diurnal) or from the market-coupled streaming loop in `lovm-core`
//! (`Lovm::run_stream`), which timestamps a persistent population's
//! per-round bids.
//!
//! # Example: seal a Poisson stream into rounds
//!
//! ```
//! use ingest::driver::{StreamDriver, VirtualTimeDriver};
//! use ingest::{IngestConfig, LateBidPolicy};
//! use workload::arrivals::{ArrivalKind, ArrivalProcess, TimedBid};
//!
//! let arrivals: Vec<TimedBid> =
//!     ArrivalProcess::new(ArrivalKind::Poisson { rate: 30.0 }, 42)
//!         .take(300)
//!         .collect();
//! let cfg = IngestConfig {
//!     deadline: 0.8,
//!     late_policy: LateBidPolicy::DeferToNext,
//!     ..IngestConfig::default()
//! };
//! let run = VirtualTimeDriver.drive(&arrivals, 8, &cfg);
//! assert_eq!(run.rounds.len(), 8);
//! // Sealed rounds arrive in canonical ascending-bidder order.
//! for round in &run.rounds {
//!     let bids = round.sealed.bids();
//!     assert!(bids.windows(2).all(|w| w[0].bidder < w[1].bidder));
//! }
//! ```

pub mod buffer;
pub mod clock;
pub mod collector;
pub mod driver;
pub mod events;
pub mod stats;

pub use buffer::{Admission, ArrivalBuffer, Backpressure};
pub use clock::{RoundSchedule, VirtualClock};
pub use collector::{AdmitClass, CollectedRound, CollectorState, LateBidPolicy, RoundCollector};
pub use driver::{IngestObserver, StreamDriver, StreamRun, ThreadedDriver, VirtualTimeDriver};
pub use stats::{IngestStats, StreamTotals};

/// Name of the environment variable setting the per-round deadline
/// fraction (`LOVM_DEADLINE=0.8`).
pub const DEADLINE_ENV: &str = "LOVM_DEADLINE";

/// Name of the environment variable selecting the late-bid policy
/// (`LOVM_LATE_POLICY=drop|defer|grace:<frac>`).
pub const LATE_POLICY_ENV: &str = "LOVM_LATE_POLICY";

/// Name of the environment variable sizing the arrival buffer
/// (`LOVM_BUFFER=<capacity>`, `block:<capacity>`, or
/// `shed:<capacity>:<watermark>`).
pub const BUFFER_ENV: &str = "LOVM_BUFFER";

/// Complete configuration of the ingestion loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Virtual-time length of one round (> 0). The market-coupled
    /// streaming loop and the arrival generators both measure time in
    /// rounds, so 1.0 is the natural unit.
    pub round_len: f64,
    /// Deadline as a fraction of the round, in `(0, 1]`. Bids arriving at
    /// offset ≤ deadline are admitted; 1.0 admits the whole span (the
    /// batch-equivalent configuration).
    pub deadline: f64,
    /// What happens to bids that miss the deadline.
    pub late_policy: LateBidPolicy,
    /// Overflow behaviour of the bounded arrival buffer.
    pub backpressure: Backpressure,
    /// Hard capacity of the arrival buffer (the threaded driver sizes its
    /// channel with it).
    pub capacity: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            round_len: 1.0,
            deadline: 1.0,
            late_policy: LateBidPolicy::Drop,
            backpressure: Backpressure::Block,
            capacity: 65_536,
        }
    }
}

impl IngestConfig {
    /// Configuration from the environment: `LOVM_DEADLINE`,
    /// `LOVM_LATE_POLICY`, `LOVM_BUFFER` override the defaults.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when a variable is set to an
    /// unparseable or out-of-domain value — a silently ignored override is
    /// worse than a crash at startup.
    pub fn from_env() -> Self {
        Self::from_env_values(
            std::env::var(DEADLINE_ENV).ok().as_deref(),
            std::env::var(LATE_POLICY_ENV).ok().as_deref(),
            std::env::var(BUFFER_ENV).ok().as_deref(),
        )
    }

    /// The parsing behind [`IngestConfig::from_env`], with the raw
    /// variable values injected — unit-testable without touching the
    /// process environment. `None` means "variable unset, keep the
    /// default"; panic messages name the variable and the accepted
    /// grammar (see [`IngestConfig::from_env`]).
    pub fn from_env_values(
        deadline: Option<&str>,
        late_policy: Option<&str>,
        buffer: Option<&str>,
    ) -> Self {
        let mut cfg = IngestConfig::default();
        if let Some(raw) = deadline {
            let d = raw
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|d| *d > 0.0 && *d <= 1.0);
            cfg.deadline = d.unwrap_or_else(|| {
                panic!("{DEADLINE_ENV} must be a fraction in (0, 1], got `{raw}`")
            });
        }
        if let Some(raw) = late_policy {
            cfg.late_policy = Self::parse_late_policy(raw).unwrap_or_else(|| {
                panic!("{LATE_POLICY_ENV} must be `drop`, `defer`, or `grace:<frac>`, got `{raw}`")
            });
        }
        if let Some(raw) = buffer {
            let parsed = Self::parse_buffer(raw).unwrap_or_else(|| {
                panic!(
                    "{BUFFER_ENV} must be `<capacity>`, `block:<capacity>`, or \
                     `shed:<capacity>:<watermark>`, got `{raw}`"
                )
            });
            (cfg.capacity, cfg.backpressure) = parsed;
        }
        cfg.validate();
        cfg
    }

    fn parse_late_policy(raw: &str) -> Option<LateBidPolicy> {
        let raw = raw.trim();
        match raw {
            "drop" => Some(LateBidPolicy::Drop),
            "defer" => Some(LateBidPolicy::DeferToNext),
            _ => {
                let grace = raw.strip_prefix("grace:")?.parse::<f64>().ok()?;
                (grace > 0.0 && grace < 1.0).then_some(LateBidPolicy::GraceWindow { grace })
            }
        }
    }

    fn parse_buffer(raw: &str) -> Option<(usize, Backpressure)> {
        let raw = raw.trim();
        if let Ok(capacity) = raw.parse::<usize>() {
            return (capacity > 0).then_some((capacity, Backpressure::Block));
        }
        if let Some(rest) = raw.strip_prefix("block:") {
            let capacity = rest.parse::<usize>().ok()?;
            return (capacity > 0).then_some((capacity, Backpressure::Block));
        }
        let rest = raw.strip_prefix("shed:")?;
        let (cap, mark) = rest.split_once(':')?;
        let capacity = cap.parse::<usize>().ok()?;
        let watermark = mark.parse::<f64>().ok()?;
        (capacity > 0 && watermark > 0.0 && watermark <= 1.0)
            .then_some((capacity, Backpressure::Shed { watermark }))
    }

    /// Checks the cross-field invariants.
    ///
    /// # Panics
    ///
    /// Panics when `deadline + grace > 1` (a round must seal before the
    /// next one would) or any field is out of domain; the constructors of
    /// the underlying components re-check their own pieces.
    pub fn validate(&self) {
        assert!(
            self.round_len.is_finite() && self.round_len > 0.0,
            "round_len must be positive"
        );
        assert!(
            self.deadline > 0.0 && self.deadline <= 1.0,
            "deadline must be in (0, 1], got {}",
            self.deadline
        );
        assert!(self.capacity > 0, "buffer capacity must be positive");
        assert!(
            self.deadline + self.late_policy.grace() <= 1.0,
            "deadline {} + grace {} must not exceed the round",
            self.deadline,
            self.late_policy.grace()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_batch_equivalent() {
        let cfg = IngestConfig::default();
        cfg.validate();
        assert_eq!(cfg.deadline, 1.0);
        assert_eq!(cfg.late_policy, LateBidPolicy::Drop);
        assert_eq!(cfg.backpressure, Backpressure::Block);
    }

    #[test]
    fn late_policy_parsing() {
        assert_eq!(
            IngestConfig::parse_late_policy("drop"),
            Some(LateBidPolicy::Drop)
        );
        assert_eq!(
            IngestConfig::parse_late_policy(" defer "),
            Some(LateBidPolicy::DeferToNext)
        );
        assert_eq!(
            IngestConfig::parse_late_policy("grace:0.25"),
            Some(LateBidPolicy::GraceWindow { grace: 0.25 })
        );
        assert_eq!(IngestConfig::parse_late_policy("grace:1.5"), None);
        assert_eq!(IngestConfig::parse_late_policy("nonsense"), None);
    }

    #[test]
    fn buffer_parsing() {
        assert_eq!(
            IngestConfig::parse_buffer("1024"),
            Some((1024, Backpressure::Block))
        );
        assert_eq!(
            IngestConfig::parse_buffer("block:64"),
            Some((64, Backpressure::Block))
        );
        assert_eq!(
            IngestConfig::parse_buffer("shed:256:0.9"),
            Some((256, Backpressure::Shed { watermark: 0.9 }))
        );
        assert_eq!(IngestConfig::parse_buffer("shed:0:0.9"), None);
        assert_eq!(IngestConfig::parse_buffer("shed:256:2.0"), None);
        assert_eq!(IngestConfig::parse_buffer("whatever"), None);
    }

    /// The env-value grammar, valid side: every variable alone and all
    /// three together, whitespace tolerated, defaults kept when unset.
    #[test]
    fn from_env_values_parses_each_variable() {
        assert_eq!(
            IngestConfig::from_env_values(None, None, None),
            IngestConfig::default()
        );
        let d = IngestConfig::from_env_values(Some(" 0.75 "), None, None);
        assert_eq!(d.deadline, 0.75);
        assert_eq!(d.late_policy, LateBidPolicy::Drop);
        let p = IngestConfig::from_env_values(None, Some("defer"), None);
        assert_eq!(p.late_policy, LateBidPolicy::DeferToNext);
        let b = IngestConfig::from_env_values(None, None, Some("shed:256:0.9"));
        assert_eq!(b.capacity, 256);
        assert_eq!(b.backpressure, Backpressure::Shed { watermark: 0.9 });
        let all = IngestConfig::from_env_values(Some("0.6"), Some("grace:0.2"), Some("block:1024"));
        assert_eq!(all.deadline, 0.6);
        assert_eq!(all.late_policy, LateBidPolicy::GraceWindow { grace: 0.2 });
        assert_eq!(all.capacity, 1024);
        assert_eq!(all.backpressure, Backpressure::Block);
    }

    /// Malformed values panic with a message that names the variable and
    /// the accepted grammar — never a raw `ParseFloatError`.
    #[test]
    fn from_env_values_panics_with_named_variable() {
        let message = |case: Box<dyn Fn() + std::panic::UnwindSafe>| -> String {
            let err = std::panic::catch_unwind(case).expect_err("must panic");
            err.downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        };
        for bad in ["abc", "0", "-0.5", "1.5", ""] {
            let msg = message(Box::new(move || {
                IngestConfig::from_env_values(Some(bad), None, None);
            }));
            assert!(msg.contains(DEADLINE_ENV), "deadline `{bad}`: {msg}");
            assert!(msg.contains("(0, 1]"), "deadline `{bad}`: {msg}");
        }
        for bad in ["sometimes", "grace:2", "grace:", ""] {
            let msg = message(Box::new(move || {
                IngestConfig::from_env_values(None, Some(bad), None);
            }));
            assert!(msg.contains(LATE_POLICY_ENV), "policy `{bad}`: {msg}");
            assert!(msg.contains("grace:<frac>"), "policy `{bad}`: {msg}");
        }
        for bad in ["lots", "-5", "0", "shed:256", "shed:256:2", ""] {
            let msg = message(Box::new(move || {
                IngestConfig::from_env_values(None, None, Some(bad));
            }));
            assert!(msg.contains(BUFFER_ENV), "buffer `{bad}`: {msg}");
            assert!(msg.contains("shed:<capacity>"), "buffer `{bad}`: {msg}");
        }
        // Per-variable values can be fine while violating a cross-field
        // invariant; validate() still catches that at the end.
        let msg = message(Box::new(|| {
            IngestConfig::from_env_values(Some("0.9"), Some("grace:0.3"), None);
        }));
        assert!(msg.contains("must not exceed the round"), "{msg}");
    }

    /// Smoke: the real env-reading wrapper stays wired to the testable
    /// core (no env mutation here — reading whatever the harness set is
    /// enough to cover the delegation).
    #[test]
    fn from_env_smoke() {
        let _ = IngestConfig::from_env();
    }

    #[test]
    #[should_panic(expected = "must not exceed the round")]
    fn validate_rejects_deadline_plus_grace_overflow() {
        IngestConfig {
            deadline: 0.9,
            late_policy: LateBidPolicy::GraceWindow { grace: 0.3 },
            ..IngestConfig::default()
        }
        .validate();
    }
}
