//! Per-round and whole-stream ingestion telemetry.

use metrics::json::{JsonValue, ToJson};

/// What one round's ingestion looked like, emitted at its seal.
///
/// Counters are attributed to the **seal that processed the event**: a late
/// bid from round `r`'s span is only classified when round `r + 1` seals
/// (its timestamp lies past round `r`'s seal instant), so it shows up in
/// round `r + 1`'s `deferred_in` / `dropped`. Totals over a run conserve:
/// every offered arrival ends in exactly one of `admitted`,
/// `admitted_late`, `deferred_in`, `dropped`, `superseded`, `shed`, or is
/// still outstanding when the stream stops.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IngestStats {
    /// The sealed round index.
    pub round: usize,
    /// Events processed at this seal (drained from the queue) plus
    /// arrivals shed at admission since the previous seal.
    pub arrivals: usize,
    /// Bids sealed into this round that beat the deadline.
    pub admitted: usize,
    /// Bids sealed into this round inside the grace window.
    pub admitted_late: usize,
    /// Bids sealed into this round after being deferred from the previous
    /// round's span (`LateBidPolicy::DeferToNext`).
    pub deferred_in: usize,
    /// Late bids discarded at this seal.
    pub dropped: usize,
    /// Stale bids discarded at sealing because the same bidder had a
    /// fresher bid in the round (a deferred bid superseded by a new one).
    pub superseded: usize,
    /// Arrivals shed by the backpressure watermark since the last seal.
    pub shed: usize,
    /// Arrivals that hit a full buffer under `Backpressure::Block` since
    /// the last seal (they were parked and re-offered at this seal).
    pub blocked: usize,
    /// Highest buffer occupancy observed since the last seal.
    pub buffer_peak: usize,
    /// Bids in the sealed round handed to the auction.
    pub sealed: usize,
}

impl ToJson for IngestStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("round", self.round)
            .field("arrivals", self.arrivals)
            .field("admitted", self.admitted)
            .field("admitted_late", self.admitted_late)
            .field("deferred_in", self.deferred_in)
            .field("dropped", self.dropped)
            .field("superseded", self.superseded)
            .field("shed", self.shed)
            .field("blocked", self.blocked)
            .field("buffer_peak", self.buffer_peak)
            .field("sealed", self.sealed)
    }
}

/// Whole-stream aggregates over the per-round stats.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamTotals {
    /// Rounds sealed.
    pub rounds: usize,
    /// Sum of per-round `arrivals`.
    pub arrivals: usize,
    /// Sum of `admitted + admitted_late + deferred_in` (bids that reached
    /// an auction).
    pub sealed: usize,
    /// Sum of per-round `admitted_late`.
    pub admitted_late: usize,
    /// Sum of per-round `deferred_in`.
    pub deferred: usize,
    /// Sum of per-round `dropped`.
    pub dropped: usize,
    /// Sum of per-round `superseded`.
    pub superseded: usize,
    /// Sum of per-round `shed`.
    pub shed: usize,
    /// Sum of per-round `blocked`.
    pub blocked: usize,
    /// Maximum per-round `buffer_peak`.
    pub buffer_peak: usize,
}

impl StreamTotals {
    /// Aggregates a run's per-round stats.
    pub fn from_rounds(rounds: &[IngestStats]) -> Self {
        let mut t = StreamTotals::default();
        for s in rounds {
            t.absorb(s);
        }
        t
    }

    /// Folds one sealed round into the running rollup. A session that
    /// absorbs every seal maintains the same totals `from_rounds` would
    /// compute over the full history — without retaining it — which is
    /// what the `stats` wire command reports for a live `lovm serve`.
    pub fn absorb(&mut self, s: &IngestStats) {
        self.rounds += 1;
        self.arrivals += s.arrivals;
        self.sealed += s.admitted + s.admitted_late + s.deferred_in;
        self.admitted_late += s.admitted_late;
        self.deferred += s.deferred_in;
        self.dropped += s.dropped;
        self.superseded += s.superseded;
        self.shed += s.shed;
        self.blocked += s.blocked;
        self.buffer_peak = self.buffer_peak.max(s.buffer_peak);
    }
}

impl ToJson for StreamTotals {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("rounds", self.rounds)
            .field("arrivals", self.arrivals)
            .field("sealed", self.sealed)
            .field("admitted_late", self.admitted_late)
            .field("deferred", self.deferred)
            .field("dropped", self.dropped)
            .field("superseded", self.superseded)
            .field("shed", self.shed)
            .field("blocked", self.blocked)
            .field("buffer_peak", self.buffer_peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate() {
        let rounds = vec![
            IngestStats {
                round: 0,
                arrivals: 10,
                admitted: 8,
                dropped: 2,
                buffer_peak: 10,
                sealed: 8,
                ..IngestStats::default()
            },
            IngestStats {
                round: 1,
                arrivals: 12,
                admitted: 9,
                admitted_late: 1,
                deferred_in: 2,
                buffer_peak: 12,
                sealed: 12,
                ..IngestStats::default()
            },
        ];
        let t = StreamTotals::from_rounds(&rounds);
        assert_eq!(t.rounds, 2);
        assert_eq!(t.arrivals, 22);
        assert_eq!(t.sealed, 20);
        assert_eq!(t.deferred, 2);
        assert_eq!(t.dropped, 2);
        assert_eq!(t.buffer_peak, 12);
    }

    #[test]
    fn absorb_matches_from_rounds() {
        let rounds = vec![
            IngestStats {
                round: 0,
                arrivals: 7,
                admitted: 5,
                shed: 2,
                buffer_peak: 9,
                sealed: 5,
                ..IngestStats::default()
            },
            IngestStats {
                round: 1,
                arrivals: 3,
                admitted: 2,
                dropped: 1,
                buffer_peak: 4,
                sealed: 2,
                ..IngestStats::default()
            },
        ];
        let mut incremental = StreamTotals::default();
        for s in &rounds {
            incremental.absorb(s);
        }
        assert_eq!(incremental, StreamTotals::from_rounds(&rounds));
    }

    #[test]
    fn json_has_the_contract_fields() {
        let line = IngestStats::default().to_json().to_string();
        for key in [
            "\"round\"",
            "\"admitted\"",
            "\"dropped\"",
            "\"shed\"",
            "\"buffer_peak\"",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        let totals = StreamTotals::default().to_json().to_string();
        assert!(totals.contains("\"rounds\""));
    }
}
