//! The round collector: deadlines, late-bid policy, and sealing.
//!
//! A [`RoundCollector`] consumes timestamped bid arrivals (via
//! [`RoundCollector::offer`]) and, at each round's seal instant, freezes
//! the admitted set into an [`auction::sealed::SealedRound`]
//! ([`RoundCollector::seal_next`]). Everything is classified by the
//! arrival *timestamp* against the [`RoundSchedule`]:
//!
//! * on time (offset ≤ deadline) — admitted to the arrival's round span;
//! * late, policy [`LateBidPolicy::GraceWindow`] — admitted to the span if
//!   within the grace extension, otherwise dropped;
//! * late, policy [`LateBidPolicy::DeferToNext`] — carried into the next
//!   round (a fresher bid from the same bidder supersedes it at sealing);
//! * late, policy [`LateBidPolicy::Drop`] — discarded.
//!
//! Admission control in front of the queue is the bounded
//! [`ArrivalBuffer`]: shed arrivals vanish (counted), blocked arrivals are
//! parked and re-offered when the seal's drain frees space — stamped just
//! after the seal instant. With a deadline below 1.0 that is strictly
//! *late* for the span they waited out (the producer unblocked after the
//! deadline passed), so the late policy decides whether they defer
//! forward or drop; with deadline 1.0 the seal coincides with the next
//! round's start, so an unblocked arrival simply rolls into the next
//! round on time — blocking delays, it never invents lateness where no
//! late region exists.
//!
//! Determinism: the queue drains in `(time, seq)` order, sealed bids are
//! sorted by bidder, and every count derives from timestamps — so a given
//! offered sequence produces bit-identical sealed rounds and stats no
//! matter which driver (virtual-time or threaded) delivered it.

use crate::buffer::{Admission, ArrivalBuffer};
use crate::clock::{RoundSchedule, VirtualClock};
use crate::events::{Event, EventQueue};
use crate::stats::IngestStats;
use crate::IngestConfig;
use auction::sealed::SealedRound;
use std::collections::{BTreeMap, VecDeque};
use workload::arrivals::TimedBid;

/// What happens to a bid that misses its round's deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LateBidPolicy {
    /// Late bids are discarded.
    Drop,
    /// Late bids carry over into the next round's sealed set (superseded
    /// by a fresher bid from the same bidder, if one arrives).
    DeferToNext,
    /// The round seals `grace` (fraction of a round) after its deadline;
    /// bids landing inside the window are admitted late, anything beyond
    /// is dropped. Requires `deadline + grace ≤ 1`.
    GraceWindow {
        /// Width of the window as a fraction of the round.
        grace: f64,
    },
}

impl LateBidPolicy {
    /// The grace fraction this policy extends the seal by (0 for
    /// non-grace policies).
    pub fn grace(&self) -> f64 {
        match *self {
            LateBidPolicy::GraceWindow { grace } => grace,
            _ => 0.0,
        }
    }
}

/// How an admitted bid reached its sealed round. Public because a
/// [`CollectorState`] snapshot carries the classification of banked
/// future-round bids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitClass {
    /// Beat the deadline of its own round span.
    OnTime,
    /// Landed inside the grace window.
    Grace,
    /// Carried into the next round by [`LateBidPolicy::DeferToNext`].
    Deferred,
}

/// A [`RoundCollector`]'s complete carried-over state at a seal boundary:
/// everything a restored collector needs to continue *bit-identically*
/// with the original. Exported by [`RoundCollector::export_state`] right
/// after a seal (when parked arrivals and since-seal counters are
/// provably empty) and rebuilt by [`RoundCollector::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct CollectorState {
    /// The round the restored collector will seal next.
    pub next_round: usize,
    /// Next stream sequence number to assign.
    pub next_seq: u64,
    /// Lifetime arrivals accepted.
    pub offered: u64,
    /// Events still in the queue (future-banked or deferred re-entries),
    /// in `(time, seq)` order.
    pub queued: Vec<Event>,
    /// Already-classified bids banked for future rounds, flattened from
    /// the per-round map in `(target round, classification order)`.
    pub pending: Vec<(usize, Event, AdmitClass)>,
}

/// One sealed round plus its ingestion telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedRound {
    /// The canonical per-round bid vector for the auction.
    pub sealed: SealedRound,
    /// What ingestion saw while assembling it.
    pub stats: IngestStats,
}

/// The event-driven round assembler (see module docs).
#[derive(Debug)]
pub struct RoundCollector {
    schedule: RoundSchedule,
    policy: LateBidPolicy,
    clock: VirtualClock,
    queue: EventQueue,
    buffer: ArrivalBuffer,
    /// Blocked arrivals awaiting re-offer at the next seal, in seq order.
    parked: VecDeque<Event>,
    /// Classified admits per target round (bids can bank for future
    /// rounds, e.g. a deadline-1.0 boundary arrival).
    pending: BTreeMap<usize, Vec<(Event, AdmitClass)>>,
    next_round: usize,
    next_seq: u64,
    offered: u64,
    /// Offers since the last seal flushed them to the global
    /// `ingest.offers` counter — one plain field bump per arrival beats
    /// one atomic per arrival on the admission hot path.
    offers_since_flush: u64,
    shed_since_seal: usize,
    blocked_since_seal: usize,
}

impl RoundCollector {
    /// Builds a collector from the ingestion configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-domain configuration (see [`IngestConfig`]).
    pub fn new(cfg: &IngestConfig) -> Self {
        Self::with_capacity(cfg, cfg.capacity)
    }

    /// [`RoundCollector::new`] with an explicit buffer capacity — the
    /// threaded driver passes `usize::MAX` because its bounded channel
    /// already is the buffer.
    pub fn with_capacity(cfg: &IngestConfig, capacity: usize) -> Self {
        let schedule = RoundSchedule::new(cfg.round_len, cfg.deadline, cfg.late_policy.grace());
        RoundCollector {
            schedule,
            policy: cfg.late_policy,
            clock: VirtualClock::new(),
            queue: EventQueue::new(),
            buffer: ArrivalBuffer::new(capacity, cfg.backpressure),
            parked: VecDeque::new(),
            pending: BTreeMap::new(),
            next_round: 0,
            next_seq: 0,
            offered: 0,
            offers_since_flush: 0,
            shed_since_seal: 0,
            blocked_since_seal: 0,
        }
    }

    /// The round/deadline geometry in force.
    pub fn schedule(&self) -> RoundSchedule {
        self.schedule
    }

    /// The next round [`RoundCollector::seal_next`] will seal.
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// Current virtual time (the last seal instant).
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Arrivals accepted so far (stored, parked, or shed).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Bids currently held (queued, parked, or classified for future
    /// rounds) — what a graceful shutdown would flush.
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.parked.len() + self.pending.values().map(Vec::len).sum::<usize>()
    }

    /// Offers one arrival, assigning the next stream sequence number.
    pub fn offer(&mut self, tb: TimedBid) -> Admission {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.offer_at(seq, tb)
    }

    /// Offers one arrival under an explicit sequence number (the threaded
    /// driver passes each arrival's original stream index so interleaved
    /// producers reproduce the virtual driver's tie-breaking exactly).
    /// Mixing `offer_at` with [`RoundCollector::offer`] on one collector
    /// is a caller bug; pick one.
    pub fn offer_at(&mut self, seq: u64, tb: TimedBid) -> Admission {
        self.offers_since_flush += 1;
        self.offered += 1;
        self.next_seq = self.next_seq.max(seq + 1);
        let event = Event {
            time: tb.at,
            seq,
            bid: tb.bid,
        };
        let admission = self.buffer.offer();
        match admission {
            Admission::Stored => self.queue.push(event),
            Admission::Shed => self.shed_since_seal += 1,
            Admission::Blocked => {
                self.blocked_since_seal += 1;
                self.parked.push_back(event);
            }
        }
        admission
    }

    /// Exports the collector's carried-over state for a snapshot.
    ///
    /// Only valid at a seal boundary (i.e. after [`seal_next`] and before
    /// any admission refused an arrival): there, parked arrivals are
    /// empty, the since-seal counters are zero, and buffer occupancy
    /// equals the queue length — so the state is fully described by the
    /// held events plus three counters.
    ///
    /// [`seal_next`]: RoundCollector::seal_next
    ///
    /// # Panics
    ///
    /// Panics when called away from a seal boundary (parked arrivals or
    /// nonzero since-seal counters would be lost).
    pub fn export_state(&self) -> CollectorState {
        assert!(
            self.parked.is_empty() && self.shed_since_seal == 0 && self.blocked_since_seal == 0,
            "collector state export only at a seal boundary"
        );
        let pending = self
            .pending
            .iter()
            .flat_map(|(&target, events)| {
                events.iter().map(move |&(ev, class)| (target, ev, class))
            })
            .collect();
        CollectorState {
            next_round: self.next_round,
            next_seq: self.next_seq,
            offered: self.offered,
            queued: self.queue.to_sorted_vec(),
            pending,
        }
    }

    /// Rebuilds a collector from an exported [`CollectorState`] so it
    /// continues *bit-identically* with the original: same sealed rounds,
    /// same stats, same sequence numbering. `capacity` must match the one
    /// the exporting collector was built with.
    pub fn restore(cfg: &IngestConfig, capacity: usize, state: &CollectorState) -> Self {
        let mut c = Self::with_capacity(cfg, capacity);
        c.next_round = state.next_round;
        c.next_seq = state.next_seq;
        c.offered = state.offered;
        c.clock.advance_to(if state.next_round == 0 {
            0.0
        } else {
            c.schedule.seal_time(state.next_round - 1)
        });
        c.buffer.preload(state.queued.len());
        for ev in &state.queued {
            c.queue.push(*ev);
        }
        for &(target, ev, class) in &state.pending {
            c.pending.entry(target).or_default().push((ev, class));
        }
        c
    }

    /// Seals the next round: advances the clock to its seal instant,
    /// drains and classifies every due event, and freezes the round's
    /// admitted set.
    pub fn seal_next(&mut self) -> CollectedRound {
        let _seal_span = telemetry::hist!("ingest.seal_ns").span();
        telemetry::counter!("ingest.offers").add(self.offers_since_flush);
        self.offers_since_flush = 0;
        let round = self.next_round;
        self.next_round += 1;
        let seal = self.schedule.seal_time(round);
        self.clock.advance_to(seal);

        // Unblock parked arrivals: the drain below frees their space. They
        // waited out this round's deadline, so they re-enter stamped just
        // *after* the seal instant (strictly late for this span — the late
        // policy decides their fate at the next seal; original seq keeps
        // the tie-break deterministic).
        while let Some(mut ev) = self.parked.pop_front() {
            ev.time = seal.next_up();
            self.buffer.force_store();
            self.queue.push(ev);
        }

        let due = self.queue.drain_due(seal);
        self.buffer.drain(due.len());
        let mut dropped = 0usize;
        for ev in due.iter().copied() {
            let span = self.schedule.span_of(ev.time);
            // An event's *target* round: its own span when it beat the
            // deadline (or grace window), the next one when deferred.
            let (target, class) = if self.schedule.on_time(ev.time) {
                (span, Some(AdmitClass::OnTime))
            } else if self.schedule.in_grace(ev.time) {
                (span, Some(AdmitClass::Grace))
            } else {
                match self.policy {
                    LateBidPolicy::Drop | LateBidPolicy::GraceWindow { .. } => (span, None),
                    LateBidPolicy::DeferToNext => (span + 1, Some(AdmitClass::Deferred)),
                }
            };
            match class {
                // A target round that already sealed is only reachable
                // when a source violates time order badly enough to offer
                // into a sealed span; the bid can no longer be admitted.
                Some(class) if target >= round => {
                    self.pending.entry(target).or_default().push((ev, class));
                }
                _ => dropped += 1,
            }
        }

        // Freeze this round's set: the freshest bid per bidder wins (a
        // deferred bid is superseded by a newer one from the same bidder).
        let mine = self.pending.remove(&round).unwrap_or_default();
        let candidates = mine.len();
        let mut by_bidder: BTreeMap<usize, (Event, AdmitClass)> = BTreeMap::new();
        for (ev, class) in mine {
            match by_bidder.entry(ev.bid.bidder) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert((ev, class));
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let held = slot.get().0;
                    if (ev.time, ev.seq) > (held.time, held.seq) {
                        slot.insert((ev, class));
                    }
                }
            }
        }
        let (mut admitted, mut admitted_late, mut deferred_in) = (0usize, 0usize, 0usize);
        let mut bids = Vec::with_capacity(by_bidder.len());
        for (ev, class) in by_bidder.into_values() {
            match class {
                AdmitClass::OnTime => admitted += 1,
                AdmitClass::Grace => admitted_late += 1,
                AdmitClass::Deferred => deferred_in += 1,
            }
            bids.push(ev.bid);
        }
        let superseded = candidates - bids.len();

        let stats = IngestStats {
            round,
            arrivals: due.len() + self.shed_since_seal,
            admitted,
            admitted_late,
            deferred_in,
            dropped,
            superseded,
            shed: self.shed_since_seal,
            blocked: self.blocked_since_seal,
            buffer_peak: self.buffer.take_peak(),
            sealed: bids.len(),
        };
        self.shed_since_seal = 0;
        self.blocked_since_seal = 0;

        CollectedRound {
            sealed: SealedRound::new(round, bids),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Backpressure;
    use auction::bid::Bid;

    fn cfg(deadline: f64, policy: LateBidPolicy) -> IngestConfig {
        IngestConfig {
            deadline,
            late_policy: policy,
            ..IngestConfig::default()
        }
    }

    fn tb(at: f64, bidder: usize) -> TimedBid {
        TimedBid {
            at,
            bid: Bid::new(bidder, 1.0 + bidder as f64 * 0.1, 100, 0.9),
        }
    }

    #[test]
    fn on_time_bids_seal_into_their_round() {
        let mut c = RoundCollector::new(&cfg(1.0, LateBidPolicy::Drop));
        for (at, id) in [(0.2, 3), (0.5, 1), (0.9, 2)] {
            assert_eq!(c.offer(tb(at, id)), Admission::Stored);
        }
        let r = c.seal_next();
        assert_eq!(r.sealed.round(), 0);
        let ids: Vec<usize> = r.sealed.bids().iter().map(|b| b.bidder).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(r.stats.admitted, 3);
        assert_eq!(r.stats.sealed, 3);
        assert_eq!(r.stats.dropped, 0);
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn drop_policy_discards_late_bids_at_the_next_seal() {
        let mut c = RoundCollector::new(&cfg(0.5, LateBidPolicy::Drop));
        c.offer(tb(0.3, 0)); // on time for round 0
        c.offer(tb(0.7, 1)); // late for round 0
        c.offer(tb(1.2, 2)); // on time for round 1
        let r0 = c.seal_next();
        assert_eq!(r0.stats.admitted, 1);
        assert_eq!(r0.stats.dropped, 0); // the late bid pops at seal 1
        let r1 = c.seal_next();
        assert_eq!(r1.stats.admitted, 1);
        assert_eq!(r1.stats.dropped, 1);
        assert_eq!(r1.sealed.bids()[0].bidder, 2);
    }

    #[test]
    fn defer_policy_carries_late_bids_forward() {
        let mut c = RoundCollector::new(&cfg(0.5, LateBidPolicy::DeferToNext));
        c.offer(tb(0.8, 7)); // late for round 0 → defers to round 1
        c.offer(tb(1.1, 4)); // on time for round 1
        let r0 = c.seal_next();
        assert_eq!(r0.stats.sealed, 0);
        let r1 = c.seal_next();
        assert_eq!(r1.stats.deferred_in, 1);
        assert_eq!(r1.stats.admitted, 1);
        let ids: Vec<usize> = r1.sealed.bids().iter().map(|b| b.bidder).collect();
        assert_eq!(ids, vec![4, 7]);
    }

    #[test]
    fn fresher_bid_supersedes_a_deferred_one() {
        let mut c = RoundCollector::new(&cfg(0.5, LateBidPolicy::DeferToNext));
        c.offer(tb(0.9, 7)); // deferred into round 1 with cost 1.7
        let fresh = TimedBid {
            at: 1.2,
            bid: Bid::new(7, 2.5, 50, 0.8),
        };
        c.offer(fresh); // round 1's own bid from the same bidder
        c.seal_next();
        let r1 = c.seal_next();
        assert_eq!(r1.stats.sealed, 1);
        assert_eq!(r1.stats.superseded, 1);
        assert_eq!(r1.sealed.bids()[0].cost, 2.5, "the fresh bid must win");
    }

    #[test]
    fn grace_window_admits_late_within_and_drops_beyond() {
        let mut c = RoundCollector::new(&cfg(0.5, LateBidPolicy::GraceWindow { grace: 0.2 }));
        c.offer(tb(0.4, 0)); // on time
        c.offer(tb(0.65, 1)); // inside grace
        c.offer(tb(0.8, 2)); // beyond grace → dropped at seal 1
        let r0 = c.seal_next();
        assert_eq!(r0.stats.admitted, 1);
        assert_eq!(r0.stats.admitted_late, 1);
        assert_eq!(r0.stats.sealed, 2);
        let r1 = c.seal_next();
        assert_eq!(r1.stats.dropped, 1);
    }

    #[test]
    fn early_arrivals_bank_for_future_rounds() {
        let mut c = RoundCollector::new(&cfg(1.0, LateBidPolicy::Drop));
        c.offer(tb(0.5, 0));
        c.offer(tb(1.5, 1)); // next round's bid, offered early
        let r0 = c.seal_next();
        assert_eq!(r0.stats.sealed, 1);
        assert_eq!(c.outstanding(), 1);
        let r1 = c.seal_next();
        assert_eq!(r1.stats.sealed, 1);
        assert_eq!(r1.sealed.bids()[0].bidder, 1);
    }

    #[test]
    fn shed_backpressure_bounds_the_buffer() {
        let cfg = IngestConfig {
            deadline: 1.0,
            capacity: 4,
            backpressure: Backpressure::Shed { watermark: 1.0 },
            ..IngestConfig::default()
        };
        let mut c = RoundCollector::new(&cfg);
        let mut shed = 0;
        for i in 0..10 {
            if c.offer(tb(0.05 + 0.01 * i as f64, i)) == Admission::Shed {
                shed += 1;
            }
        }
        assert_eq!(shed, 6);
        let r = c.seal_next();
        assert_eq!(r.stats.sealed, 4);
        assert_eq!(r.stats.shed, 6);
        assert_eq!(r.stats.buffer_peak, 4);
        assert_eq!(r.stats.arrivals, 10);
    }

    #[test]
    fn blocked_arrivals_reenter_late_and_follow_the_late_policy() {
        let cfg = IngestConfig {
            deadline: 0.5,
            late_policy: LateBidPolicy::DeferToNext,
            capacity: 2,
            backpressure: Backpressure::Block,
            ..IngestConfig::default()
        };
        let mut c = RoundCollector::new(&cfg);
        assert_eq!(c.offer(tb(0.1, 0)), Admission::Stored);
        assert_eq!(c.offer(tb(0.2, 1)), Admission::Stored);
        assert_eq!(c.offer(tb(0.3, 2)), Admission::Blocked);
        let r0 = c.seal_next();
        // The blocked bid waited out round 0's deadline; it re-entered
        // strictly late, so the defer policy carries it into round 1.
        assert_eq!(r0.stats.blocked, 1);
        assert_eq!(r0.stats.sealed, 2);
        let r1 = c.seal_next();
        assert_eq!(r1.stats.deferred_in, 1);
        assert!(r1.sealed.bids().iter().any(|b| b.bidder == 2));

        // Under Drop, the same blocked bid is discarded at the next seal.
        let mut c = RoundCollector::new(&IngestConfig {
            late_policy: LateBidPolicy::Drop,
            ..cfg
        });
        c.offer(tb(0.1, 0));
        c.offer(tb(0.2, 1));
        c.offer(tb(0.3, 2));
        let r0 = c.seal_next();
        assert_eq!((r0.stats.blocked, r0.stats.sealed), (1, 2));
        let r1 = c.seal_next();
        assert_eq!(r1.stats.dropped, 1);
        assert_eq!(r1.stats.sealed, 0);
    }

    #[test]
    fn blocked_arrivals_roll_into_the_next_round_at_full_deadline() {
        // With deadline 1.0 there is no late region: the seal coincides
        // with the next round's start, so an unblocked arrival re-enters
        // on time for the next round — even under the Drop policy.
        let cfg = IngestConfig {
            deadline: 1.0,
            late_policy: LateBidPolicy::Drop,
            capacity: 2,
            backpressure: Backpressure::Block,
            ..IngestConfig::default()
        };
        let mut c = RoundCollector::new(&cfg);
        c.offer(tb(0.1, 0));
        c.offer(tb(0.2, 1));
        assert_eq!(c.offer(tb(0.3, 2)), Admission::Blocked);
        let r0 = c.seal_next();
        assert_eq!((r0.stats.blocked, r0.stats.sealed), (1, 2));
        let r1 = c.seal_next();
        assert_eq!(r1.stats.admitted, 1);
        assert_eq!(r1.stats.dropped, 0);
        assert_eq!(r1.sealed.bids()[0].bidder, 2);
    }

    #[test]
    fn export_restore_continues_bit_identically() {
        // Sweep policies and snapshot points: after any sealed round, a
        // restored collector must produce exactly the same remaining
        // rounds — sealed sets and stats — as the original continuing
        // uninterrupted. Late/deferred/banked bids exercise every field
        // of the carried-over state.
        let policies = [
            LateBidPolicy::Drop,
            LateBidPolicy::DeferToNext,
            LateBidPolicy::GraceWindow { grace: 0.2 },
        ];
        for policy in policies {
            let config = cfg(0.6, policy);
            for snapshot_after in 1..6usize {
                let mut original = RoundCollector::new(&config);
                let offer_round = |c: &mut RoundCollector, r: usize| {
                    // A mix of on-time, late, and next-round-banked bids.
                    c.offer(tb(r as f64 + 0.2, 0));
                    c.offer(tb(r as f64 + 0.5, 1));
                    c.offer(tb(r as f64 + 0.8, 2)); // late for r
                    c.offer(tb(r as f64 + 1.1, 3)); // banks for r + 1
                };
                for r in 0..snapshot_after {
                    offer_round(&mut original, r);
                    original.seal_next();
                }
                let state = original.export_state();
                let mut restored = RoundCollector::restore(&config, config.capacity, &state);
                assert_eq!(restored.export_state(), state, "round-trip export");
                assert_eq!(restored.next_round(), original.next_round());
                assert_eq!(restored.now(), original.now());
                for r in snapshot_after..snapshot_after + 4 {
                    offer_round(&mut original, r);
                    offer_round(&mut restored, r);
                    let a = original.seal_next();
                    let b = restored.seal_next();
                    assert_eq!(a, b, "policy {policy:?}, snapshot after {snapshot_after}");
                }
                assert_eq!(original.offered(), restored.offered());
                assert_eq!(original.outstanding(), restored.outstanding());
            }
        }
    }

    #[test]
    #[should_panic(expected = "seal boundary")]
    fn export_away_from_a_boundary_panics() {
        let cfg = IngestConfig {
            deadline: 0.5,
            capacity: 1,
            backpressure: Backpressure::Block,
            ..IngestConfig::default()
        };
        let mut c = RoundCollector::new(&cfg);
        c.offer(tb(0.1, 0));
        c.offer(tb(0.2, 1)); // blocked → parked: state not exportable
        let _ = c.export_state();
    }

    /// Property: conservation holds under `Backpressure::Shed` *combined*
    /// with a `GraceWindow` late policy — every seeded arrival is accounted
    /// for as admitted, admitted-late, deferred, dropped, superseded, or
    /// shed, checked after *every* round seal (not just at the end), with
    /// random offsets spanning on-time, in-grace, beyond-grace, and
    /// next-round-banked arrivals (seeded rounds).
    #[test]
    fn stats_conserve_under_shed_plus_grace_every_round() {
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        for seed in 0..5u64 {
            let cfg = IngestConfig {
                deadline: 0.6,
                late_policy: LateBidPolicy::GraceWindow { grace: 0.2 },
                capacity: 8,
                backpressure: Backpressure::Shed { watermark: 1.0 },
                ..IngestConfig::default()
            };
            let mut c = RoundCollector::new(&cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut offered = 0usize;
            let mut accounted = 0usize;
            let mut shed_total = 0usize;
            for r in 0..30usize {
                let mut batch: Vec<TimedBid> = (0..12usize)
                    .map(|k| {
                        // Offsets across the whole span plus a slice into
                        // the next round: exercises on-time (< 0.6),
                        // in-grace (0.6..0.8), beyond-grace (0.8..1.0),
                        // and early-banked (>= 1.0) classification.
                        tb(r as f64 + rng.random_range(0.0..1.2), k)
                    })
                    .collect();
                batch.sort_by(|a, b| a.at.partial_cmp(&b.at).unwrap());
                for arrival in batch {
                    c.offer(arrival);
                    offered += 1;
                }
                let stats = c.seal_next().stats;
                accounted += stats.admitted
                    + stats.admitted_late
                    + stats.deferred_in
                    + stats.dropped
                    + stats.superseded
                    + stats.shed;
                shed_total += stats.shed;
                assert_eq!(stats.deferred_in, 0, "grace policy never defers");
                assert!(stats.buffer_peak <= cfg.capacity);
                assert_eq!(
                    accounted + c.outstanding(),
                    offered,
                    "seed {seed}: conservation broke after round {r}"
                );
            }
            assert_eq!(offered as u64, c.offered());
            assert!(
                shed_total > 0,
                "seed {seed}: capacity 8 < 12/round must shed"
            );
        }
    }

    #[test]
    fn stats_conserve_every_offered_bid() {
        let cfg = IngestConfig {
            deadline: 0.6,
            late_policy: LateBidPolicy::DeferToNext,
            capacity: 8,
            backpressure: Backpressure::Shed { watermark: 1.0 },
            ..IngestConfig::default()
        };
        let mut c = RoundCollector::new(&cfg);
        let mut offered = 0u64;
        let mut rounds = Vec::new();
        for r in 0..20usize {
            for k in 0..12usize {
                let at = r as f64 + (k as f64 + 0.5) / 13.0;
                c.offer(tb(at, k));
                offered += 1;
            }
            rounds.push(c.seal_next().stats);
        }
        let accounted: usize = rounds
            .iter()
            .map(|s| {
                s.admitted + s.admitted_late + s.deferred_in + s.dropped + s.superseded + s.shed
            })
            .sum();
        assert_eq!(offered, c.offered());
        assert_eq!(
            accounted + c.outstanding(),
            offered as usize,
            "ingestion stats must conserve arrivals"
        );
    }
}
