//! Stream drivers: who moves arrivals into the collector.
//!
//! The collector is driver-agnostic; a [`StreamDriver`] owns the question
//! of *how* a stream of [`TimedBid`]s reaches it:
//!
//! * [`VirtualTimeDriver`] — single-threaded, virtual time. Arrivals are
//!   offered exactly when due and every backpressure decision is modeled
//!   deterministically. This is the tested default: a seeded stream is a
//!   pure function of its inputs, bit-identical everywhere.
//! * [`ThreadedDriver`] — real producer threads and a bounded
//!   `std::sync::mpsc` channel ([`std::sync::mpsc::sync_channel`]), sized
//!   by the configured buffer capacity. Producers are sized from a
//!   [`par::Pool`]; the stream is partitioned round-robin and the consumer
//!   re-merges by `(time, seq)` through the collector's event queue, so
//!   with `Backpressure::Block` the sealed output is **bit-identical to
//!   the virtual driver at any producer count, as long as the buffer
//!   itself never fills** — the same index-order guarantee `crates/par`
//!   gives the batch layers. At saturation the two Block models
//!   legitimately differ: the virtual driver *re-times* a blocked arrival
//!   (it re-enters late, and the late policy decides it), while a blocked
//!   producer thread delivers the arrival with its original timestamp
//!   once the channel frees. With `Backpressure::Shed` the channel drops
//!   arrivals under real-time pressure (counted, but timing-dependent):
//!   honest lossy mode, not for golden tests.

use crate::collector::{CollectedRound, RoundCollector};
use crate::stats::StreamTotals;
use crate::IngestConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use workload::arrivals::TimedBid;

/// A completed streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRun {
    /// Every sealed round, in order.
    pub rounds: Vec<CollectedRound>,
    /// Aggregates over the per-round stats (plus channel-level shed for
    /// the threaded driver).
    pub totals: StreamTotals,
    /// Arrivals from the input that never reached the collector (their
    /// timestamps lie beyond the final seal).
    pub leftover: usize,
}

/// Observes an ingestion stream as a driver moves it: every arrival the
/// collector accepted (with its stream sequence number) and every sealed
/// round, in collector order. This is the journaling hook for the
/// event-sourced server — an observer that appends each callback to an
/// append-only log captures exactly the information needed to replay the
/// run bit-identically.
///
/// Callbacks always come from the consumer side (single-threaded even
/// under the threaded driver), so an observer needs no synchronization.
pub trait IngestObserver {
    /// An arrival was offered to the collector under sequence number
    /// `seq`.
    fn on_arrival(&mut self, seq: u64, tb: &TimedBid) {
        let _ = (seq, tb);
    }

    /// A round was sealed.
    fn on_seal(&mut self, round: &CollectedRound) {
        let _ = round;
    }
}

/// The no-op observer behind [`StreamDriver::drive`].
impl IngestObserver for () {}

/// Drives a finite arrival stream through `rounds` sealed rounds.
pub trait StreamDriver {
    /// [`StreamDriver::drive`] with an [`IngestObserver`] watching every
    /// offer and seal — the journaling entry point.
    fn drive_observed(
        &self,
        arrivals: &[TimedBid],
        rounds: usize,
        cfg: &IngestConfig,
        observer: &mut dyn IngestObserver,
    ) -> StreamRun;

    /// Runs the stream to completion. `arrivals` must be sorted by
    /// non-decreasing timestamp (the [`workload::arrivals`] generators
    /// guarantee this).
    fn drive(&self, arrivals: &[TimedBid], rounds: usize, cfg: &IngestConfig) -> StreamRun {
        self.drive_observed(arrivals, rounds, cfg, &mut ())
    }
}

/// The deterministic single-threaded virtual-time driver (see module
/// docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualTimeDriver;

impl StreamDriver for VirtualTimeDriver {
    fn drive_observed(
        &self,
        arrivals: &[TimedBid],
        rounds: usize,
        cfg: &IngestConfig,
        observer: &mut dyn IngestObserver,
    ) -> StreamRun {
        let mut collector = RoundCollector::new(cfg);
        let mut collected = Vec::with_capacity(rounds);
        let mut i = 0usize;
        for round in 0..rounds {
            let seal = collector.schedule().seal_time(round);
            while i < arrivals.len() && arrivals[i].at <= seal {
                observer.on_arrival(i as u64, &arrivals[i]);
                collector.offer(arrivals[i]);
                i += 1;
            }
            let round = collector.seal_next();
            observer.on_seal(&round);
            collected.push(round);
        }
        let totals =
            StreamTotals::from_rounds(&collected.iter().map(|c| c.stats).collect::<Vec<_>>());
        StreamRun {
            rounds: collected,
            totals,
            leftover: arrivals.len() - i,
        }
    }
}

/// A message from a producer thread to the sealing consumer.
enum Msg {
    Arrival {
        producer: usize,
        seq: u64,
        tb: TimedBid,
    },
    Done {
        producer: usize,
    },
}

/// Producer loop body: feeds `arrivals[p], arrivals[p + producers], …`
/// into the channel in slice order, then announces completion. A send on
/// a disconnected channel — the consumer dropped its receiver, e.g. a
/// serve session that failed mid-stream — is a *stop signal*, not a
/// panic: the producer returns quietly so one dead session can't cascade
/// into a panic storm across its producer threads.
fn produce(
    p: usize,
    producers: usize,
    arrivals: &[TimedBid],
    tx: &mpsc::SyncSender<Msg>,
    lossless: bool,
    channel_shed: &AtomicU64,
) {
    for i in (p..arrivals.len()).step_by(producers) {
        let msg = Msg::Arrival {
            producer: p,
            seq: i as u64,
            tb: arrivals[i],
        };
        if lossless {
            if tx.send(msg).is_err() {
                return;
            }
        } else {
            match tx.try_send(msg) {
                Ok(()) => {}
                Err(mpsc::TrySendError::Full(_)) => {
                    channel_shed.fetch_add(1, Ordering::Relaxed);
                }
                Err(mpsc::TrySendError::Disconnected(_)) => return,
            }
        }
    }
    let _ = tx.send(Msg::Done { producer: p });
}

/// The real-thread driver (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct ThreadedDriver {
    producers: usize,
}

impl ThreadedDriver {
    /// Sizes the producer side from a worker pool (at least one
    /// producer).
    pub fn new(pool: &par::Pool) -> Self {
        ThreadedDriver {
            producers: pool.threads().max(1),
        }
    }

    /// Number of producer threads this driver spawns.
    pub fn producers(&self) -> usize {
        self.producers
    }
}

impl StreamDriver for ThreadedDriver {
    fn drive_observed(
        &self,
        arrivals: &[TimedBid],
        rounds: usize,
        cfg: &IngestConfig,
        observer: &mut dyn IngestObserver,
    ) -> StreamRun {
        use crate::buffer::Backpressure;

        let producers = self.producers.min(arrivals.len()).max(1);
        let (tx, rx) = mpsc::sync_channel::<Msg>(cfg.capacity.max(1));
        let channel_shed = AtomicU64::new(0);
        let lossless = matches!(cfg.backpressure, Backpressure::Block);

        // The channel is the physical buffer, so the collector's own
        // admission control steps aside.
        let mut collector = RoundCollector::with_capacity(cfg, usize::MAX);
        let mut collected = Vec::with_capacity(rounds);
        let mut offered = 0usize;
        let mut discarded_after_final_seal = 0usize;

        std::thread::scope(|scope| {
            for p in 0..producers {
                let tx = tx.clone();
                let channel_shed = &channel_shed;
                // Round-robin slice: index i goes to producer i mod P,
                // preserving each producer's time order.
                scope.spawn(move || produce(p, producers, arrivals, &tx, lossless, channel_shed));
            }
            drop(tx);

            // Consumer (this thread): a producer's sub-stream is
            // time-ordered, so once every frontier has passed a seal
            // instant, no arrival at or before it can still show up.
            let mut frontier = vec![0.0f64; producers];
            let mut live = producers;
            for round in 0..rounds {
                let seal = collector.schedule().seal_time(round);
                while live > 0 && frontier.iter().cloned().fold(f64::INFINITY, f64::min) <= seal {
                    match rx.recv().expect("live producers hold senders") {
                        Msg::Arrival { producer, seq, tb } => {
                            frontier[producer] = tb.at;
                            observer.on_arrival(seq, &tb);
                            collector.offer_at(seq, tb);
                            offered += 1;
                        }
                        Msg::Done { producer } => {
                            frontier[producer] = f64::INFINITY;
                            live -= 1;
                        }
                    }
                }
                let round = collector.seal_next();
                observer.on_seal(&round);
                collected.push(round);
            }
            // Horizon reached: let the remaining producers finish.
            for msg in rx.iter() {
                if let Msg::Arrival { .. } = msg {
                    discarded_after_final_seal += 1;
                }
            }
        });

        let mut totals =
            StreamTotals::from_rounds(&collected.iter().map(|c| c.stats).collect::<Vec<_>>());
        let shed_in_channel = channel_shed.load(Ordering::Relaxed) as usize;
        totals.shed += shed_in_channel;
        debug_assert_eq!(
            offered + shed_in_channel + discarded_after_final_seal,
            arrivals.len(),
            "every arrival is offered, channel-shed, or past the final seal"
        );
        StreamRun {
            rounds: collected,
            totals,
            leftover: discarded_after_final_seal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::LateBidPolicy;
    use workload::arrivals::{ArrivalKind, ArrivalProcess};

    fn stream(n: usize, rate: f64, seed: u64) -> Vec<TimedBid> {
        ArrivalProcess::new(ArrivalKind::Poisson { rate }, seed)
            .take(n)
            .collect()
    }

    fn cfg() -> IngestConfig {
        IngestConfig {
            deadline: 0.7,
            late_policy: LateBidPolicy::DeferToNext,
            capacity: 4096,
            ..IngestConfig::default()
        }
    }

    #[test]
    fn virtual_driver_seals_every_round() {
        let arrivals = stream(500, 25.0, 3);
        let run = VirtualTimeDriver.drive(&arrivals, 12, &cfg());
        assert_eq!(run.rounds.len(), 12);
        assert_eq!(run.totals.rounds, 12);
        let sealed: usize = run.rounds.iter().map(|r| r.stats.sealed).sum();
        assert!(sealed > 0);
        assert_eq!(sealed, run.totals.sealed);
        // Conservation: every arrival seals, drops, is superseded, stays
        // queued past the final seal inside the collector, or was never
        // offered at all (timestamped beyond the final seal).
        assert!(
            sealed + run.totals.dropped + run.totals.superseded + run.leftover <= arrivals.len()
        );
        // A 25/round Poisson stream over 12 rounds of deadline 0.7 defers
        // roughly 30% of bids; most of everything must still have sealed.
        assert!(sealed > arrivals.len() / 2, "only {sealed} sealed");
    }

    #[test]
    fn threaded_block_matches_virtual_bit_for_bit() {
        let arrivals = stream(2000, 40.0, 9);
        let rounds = 30;
        let reference = VirtualTimeDriver.drive(&arrivals, rounds, &cfg());
        for workers in [1usize, 4] {
            let pool = par::Pool::with_threads(workers);
            let run = ThreadedDriver::new(&pool).drive(&arrivals, rounds, &cfg());
            assert_eq!(
                run.rounds.len(),
                reference.rounds.len(),
                "workers={workers}"
            );
            for (a, b) in run.rounds.iter().zip(&reference.rounds) {
                assert_eq!(a.sealed, b.sealed, "workers={workers}");
                // Buffer telemetry differs by construction (channel vs
                // modeled buffer); the admission outcome may not.
                assert_eq!(a.stats.admitted, b.stats.admitted, "workers={workers}");
                assert_eq!(a.stats.admitted_late, b.stats.admitted_late);
                assert_eq!(a.stats.deferred_in, b.stats.deferred_in);
                assert_eq!(a.stats.dropped, b.stats.dropped);
                assert_eq!(a.stats.superseded, b.stats.superseded);
            }
        }
    }

    #[test]
    fn threaded_done_before_horizon_still_seals_all_rounds() {
        // A short stream: producers finish long before the horizon; the
        // consumer must keep sealing empty rounds.
        let arrivals = stream(20, 10.0, 1);
        let pool = par::Pool::with_threads(2);
        let run = ThreadedDriver::new(&pool).drive(&arrivals, 50, &cfg());
        assert_eq!(run.rounds.len(), 50);
        assert_eq!(run.leftover, 0);
        let sealed: usize = run.rounds.iter().map(|r| r.stats.sealed).sum();
        assert!(sealed <= 20);
    }

    /// Records every observer callback for comparison across drivers.
    #[derive(Default, PartialEq, Debug)]
    struct Recorder {
        arrivals: Vec<(u64, TimedBid)>,
        seals: Vec<CollectedRound>,
    }

    impl IngestObserver for Recorder {
        fn on_arrival(&mut self, seq: u64, tb: &TimedBid) {
            self.arrivals.push((seq, *tb));
        }
        fn on_seal(&mut self, round: &CollectedRound) {
            self.seals.push(round.clone());
        }
    }

    #[test]
    fn observer_sees_every_offer_and_seal() {
        let arrivals = stream(400, 20.0, 7);
        let rounds = 15;
        let mut rec = Recorder::default();
        let run = VirtualTimeDriver.drive_observed(&arrivals, rounds, &cfg(), &mut rec);
        assert_eq!(rec.seals, run.rounds);
        assert_eq!(rec.arrivals.len() + run.leftover, arrivals.len());
        // The virtual driver offers in stream order under stream seqs.
        for (i, (seq, tb)) in rec.arrivals.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(*tb, arrivals[i]);
        }
        // Replaying the journaled arrivals through a fresh collector
        // reproduces the sealed rounds bit-for-bit — the event-sourcing
        // contract the serve journal depends on.
        let mut replay = RoundCollector::with_capacity(&cfg(), usize::MAX);
        let mut i = 0usize;
        for (round, original) in rec.seals.iter().enumerate() {
            let seal = replay.schedule().seal_time(round);
            while i < rec.arrivals.len() && rec.arrivals[i].1.at <= seal {
                let (seq, tb) = rec.arrivals[i];
                replay.offer_at(seq, tb);
                i += 1;
            }
            let replayed = replay.seal_next();
            assert_eq!(replayed.sealed, original.sealed, "round {round}");
        }
    }

    #[test]
    fn threaded_observer_matches_virtual_sealed_output() {
        let arrivals = stream(600, 25.0, 13);
        let rounds = 18;
        let mut virt = Recorder::default();
        VirtualTimeDriver.drive_observed(&arrivals, rounds, &cfg(), &mut virt);
        let pool = par::Pool::with_threads(4);
        let mut thr = Recorder::default();
        ThreadedDriver::new(&pool).drive_observed(&arrivals, rounds, &cfg(), &mut thr);
        // Arrival callback *order* is scheduling-dependent under real
        // threads; the sealed output is not.
        let sealed_v: Vec<_> = virt.seals.iter().map(|r| r.sealed.clone()).collect();
        let sealed_t: Vec<_> = thr.seals.iter().map(|r| r.sealed.clone()).collect();
        assert_eq!(sealed_v, sealed_t);
    }

    #[test]
    fn producers_stop_gracefully_when_consumer_drops() {
        // The consumer dies mid-run (receiver dropped with producers
        // still blocked on a tiny channel): every producer must treat the
        // failed send as a stop signal and return — a panic would abort
        // the whole scope.
        let arrivals = stream(5000, 40.0, 11);
        for lossless in [true, false] {
            let (tx, rx) = mpsc::sync_channel::<Msg>(8);
            let shed = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for p in 0..3usize {
                    let tx = tx.clone();
                    let (shed, arrivals) = (&shed, &arrivals);
                    scope.spawn(move || produce(p, 3, arrivals, &tx, lossless, shed));
                }
                drop(tx);
                // Take a few messages, then walk away. Scope exit joins
                // the producers; any panic would propagate here.
                for _ in 0..10 {
                    let _ = rx.recv();
                }
                drop(rx);
            });
        }
    }

    #[test]
    fn virtual_driver_is_a_pure_function() {
        let arrivals = stream(800, 30.0, 5);
        let a = VirtualTimeDriver.drive(&arrivals, 20, &cfg());
        let b = VirtualTimeDriver.drive(&arrivals, 20, &cfg());
        assert_eq!(a, b);
    }
}
