//! The bounded arrival buffer and its backpressure policies.
//!
//! Between two seals, arrivals queue in the collector's event queue; this
//! module is the *admission controller* in front of it. A buffer has a hard
//! `capacity` and one of two overflow behaviours:
//!
//! * [`Backpressure::Block`] — the producer stalls. In virtual time a
//!   blocked arrival is parked and re-offered at the next seal (when the
//!   queue drains); in the threaded driver the producer thread really
//!   blocks on the bounded channel.
//! * [`Backpressure::Shed { watermark }`] — load shedding: once occupancy
//!   reaches `watermark · capacity`, new arrivals are dropped on the floor
//!   and counted. Memory stays bounded no matter how fast bids arrive; the
//!   cost is visible in the `shed` statistic instead of in resident set
//!   size.

/// Overflow behaviour of the bounded arrival buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backpressure {
    /// Stall the producer until the buffer drains (lossless, unbounded
    /// delay).
    Block,
    /// Drop arrivals once occupancy reaches `watermark · capacity`
    /// (lossy, bounded delay). `watermark ∈ (0, 1]`.
    Shed {
        /// Fraction of capacity at which shedding starts.
        watermark: f64,
    },
}

/// What happened to an offered arrival at admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Space available: the arrival entered the buffer.
    Stored,
    /// Shed by the watermark policy; the bid is gone.
    Shed,
    /// Buffer full under [`Backpressure::Block`]: the caller must park the
    /// arrival and re-offer it after the next drain.
    Blocked,
}

/// Occupancy accounting for the bounded buffer.
///
/// The buffer does not own the bids (the event queue does); it owns the
/// *count* and the admission decision, so the same component serves the
/// virtual-time driver (modeled occupancy) and the threaded driver
/// (channel-backed occupancy).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalBuffer {
    capacity: usize,
    policy: Backpressure,
    /// Refusal threshold, precomputed from `capacity` and `policy` (both
    /// immutable) so the per-arrival hot path is an integer compare.
    threshold: usize,
    occupancy: usize,
    peak: usize,
    shed: u64,
    blocked: u64,
}

impl ArrivalBuffer {
    /// Creates a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or a shed watermark is outside `(0, 1]`.
    pub fn new(capacity: usize, policy: Backpressure) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        if let Backpressure::Shed { watermark } = policy {
            assert!(
                watermark > 0.0 && watermark <= 1.0,
                "shed watermark must be in (0, 1], got {watermark}"
            );
        }
        let threshold = match policy {
            Backpressure::Block => capacity,
            Backpressure::Shed { watermark } => {
                (((capacity as f64) * watermark).floor() as usize).clamp(1, capacity)
            }
        };
        ArrivalBuffer {
            capacity,
            policy,
            threshold,
            occupancy: 0,
            peak: 0,
            shed: 0,
            blocked: 0,
        }
    }

    /// The hard capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured overflow behaviour.
    pub fn policy(&self) -> Backpressure {
        self.policy
    }

    /// Occupancy at which admission starts refusing arrivals.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Admission control for one arrival: stores it (occupancy + 1) or
    /// refuses per the policy.
    pub fn offer(&mut self) -> Admission {
        if self.occupancy >= self.threshold {
            match self.policy {
                Backpressure::Block => {
                    self.blocked += 1;
                    Admission::Blocked
                }
                Backpressure::Shed { .. } => {
                    self.shed += 1;
                    Admission::Shed
                }
            }
        } else {
            self.occupancy += 1;
            self.peak = self.peak.max(self.occupancy);
            Admission::Stored
        }
    }

    /// Stores an item bypassing admission control — used when a parked
    /// (blocked) arrival re-enters at a seal, the instant the drain frees
    /// its space. Occupancy may transiently exceed the threshold; the peak
    /// statistic records it honestly.
    pub fn force_store(&mut self) {
        self.occupancy += 1;
        self.peak = self.peak.max(self.occupancy);
    }

    /// Marks `n` items as already stored — the snapshot-restore path,
    /// where a rebuilt collector re-enters its queued events without
    /// re-running admission. Peak restarts at the restored occupancy,
    /// exactly where [`ArrivalBuffer::take_peak`] left it at the seal the
    /// snapshot was taken.
    ///
    /// # Panics
    ///
    /// Panics if the buffer has been offered anything already.
    pub fn preload(&mut self, n: usize) {
        assert!(
            self.occupancy == 0 && self.peak == 0,
            "preload only on a fresh buffer"
        );
        self.occupancy = n;
        self.peak = n;
    }

    /// Records `n` items leaving the buffer (a seal drained them).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the current occupancy.
    pub fn drain(&mut self, n: usize) {
        assert!(n <= self.occupancy, "drained {n} of {}", self.occupancy);
        self.occupancy -= n;
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Highest occupancy since the last [`ArrivalBuffer::take_peak`],
    /// resetting the marker to the current occupancy.
    pub fn take_peak(&mut self) -> usize {
        let p = self.peak;
        self.peak = self.occupancy;
        p
    }

    /// Arrivals shed so far (lifetime).
    pub fn total_shed(&self) -> u64 {
        self.shed
    }

    /// Arrivals refused with `Blocked` so far (lifetime). Re-offers that
    /// succeed later do not subtract.
    pub fn total_blocked(&self) -> u64 {
        self.blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_until_capacity_then_blocks() {
        let mut b = ArrivalBuffer::new(3, Backpressure::Block);
        assert_eq!(b.offer(), Admission::Stored);
        assert_eq!(b.offer(), Admission::Stored);
        assert_eq!(b.offer(), Admission::Stored);
        assert_eq!(b.offer(), Admission::Blocked);
        assert_eq!(b.occupancy(), 3);
        b.drain(2);
        assert_eq!(b.occupancy(), 1);
        assert_eq!(b.offer(), Admission::Stored);
        assert_eq!(b.total_blocked(), 1);
        assert_eq!(b.total_shed(), 0);
    }

    #[test]
    fn shed_watermark_kicks_in_early() {
        let mut b = ArrivalBuffer::new(10, Backpressure::Shed { watermark: 0.5 });
        assert_eq!(b.threshold(), 5);
        for _ in 0..5 {
            assert_eq!(b.offer(), Admission::Stored);
        }
        assert_eq!(b.offer(), Admission::Shed);
        assert_eq!(b.offer(), Admission::Shed);
        assert_eq!(b.occupancy(), 5);
        assert_eq!(b.total_shed(), 2);
    }

    #[test]
    fn peak_tracks_and_resets() {
        let mut b = ArrivalBuffer::new(10, Backpressure::Block);
        for _ in 0..4 {
            b.offer();
        }
        b.drain(3);
        assert_eq!(b.take_peak(), 4);
        // After the reset the peak restarts from current occupancy (1).
        b.offer();
        assert_eq!(b.take_peak(), 2);
    }

    #[test]
    fn full_watermark_sheds_only_at_capacity() {
        let mut b = ArrivalBuffer::new(4, Backpressure::Shed { watermark: 1.0 });
        assert_eq!(b.threshold(), 4);
        for _ in 0..4 {
            assert_eq!(b.offer(), Admission::Stored);
        }
        assert_eq!(b.offer(), Admission::Shed);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = ArrivalBuffer::new(0, Backpressure::Block);
    }

    #[test]
    #[should_panic(expected = "watermark must be in (0, 1]")]
    fn rejects_bad_watermark() {
        let _ = ArrivalBuffer::new(8, Backpressure::Shed { watermark: 1.5 });
    }
}
