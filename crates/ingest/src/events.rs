//! The deterministic event queue: a binary heap ordered by `(time, seq)`.
//!
//! Every arrival entering the ingestion loop becomes an [`Event`] carrying
//! its virtual timestamp and a *sequence number* — the arrival's position
//! in the offered stream. The heap pops events in `(time, seq)` order:
//! time first (`f64::total_cmp`, so the order is total even though times
//! are floats), sequence number as the tie-breaker. Because the sequence
//! number is assigned from the stream position — not from thread scheduling
//! — two arrivals at the same instant always drain in the same order, which
//! is what makes sealed rounds bit-identical across drivers and worker
//! counts.

use auction::bid::Bid;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One timestamped arrival inside the ingestion loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual arrival instant.
    pub time: f64,
    /// Position in the offered stream (ties on `time` drain in `seq`
    /// order).
    pub seq: u64,
    /// The bid that arrived.
    pub bid: Bid,
}

/// Min-heap wrapper giving [`Event`] the `(time, seq)` order.
#[derive(Debug, Clone)]
struct HeapEntry(Event);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .0
            .time
            .total_cmp(&self.0.time)
            .then(other.0.seq.cmp(&self.0.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Enqueues an event.
    ///
    /// # Panics
    ///
    /// Panics on non-finite timestamps (they would poison the order).
    pub fn push(&mut self, event: Event) {
        assert!(event.time.is_finite(), "event time must be finite");
        self.heap.push(HeapEntry(event));
    }

    /// Timestamp of the earliest queued event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.0.time)
    }

    /// Pops the earliest event if its time is at most `t`.
    pub fn pop_if_due(&mut self, t: f64) -> Option<Event> {
        if self.peek_time()? <= t {
            Some(self.heap.pop().expect("peeked above").0)
        } else {
            None
        }
    }

    /// Drains every event with `time ≤ t`, earliest first.
    pub fn drain_due(&mut self, t: f64) -> Vec<Event> {
        let mut out = Vec::new();
        while let Some(e) = self.pop_if_due(t) {
            out.push(e);
        }
        out
    }

    /// Every queued event in `(time, seq)` order, without draining — the
    /// deterministic serialization order for snapshots.
    pub fn to_sorted_vec(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self.heap.iter().map(|e| e.0).collect();
        events.sort_by(|a, b| a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq)));
        events
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, seq: u64) -> Event {
        Event {
            time,
            seq,
            bid: Bid::new(seq as usize, 1.0, 100, 0.9),
        }
    }

    #[test]
    fn pops_in_time_order_regardless_of_push_order() {
        let mut q = EventQueue::new();
        for (t, s) in [(2.5, 0), (0.5, 1), (1.5, 2), (0.25, 3)] {
            q.push(ev(t, s));
        }
        let times: Vec<f64> = q.drain_due(10.0).iter().map(|e| e.time).collect();
        assert_eq!(times, vec![0.25, 0.5, 1.5, 2.5]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_break_ties_by_seq() {
        let mut q = EventQueue::new();
        for s in [3u64, 0, 2, 1] {
            q.push(ev(1.0, s));
        }
        let seqs: Vec<u64> = q.drain_due(1.0).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn drain_due_respects_the_cutoff() {
        let mut q = EventQueue::new();
        for (t, s) in [(0.1, 0), (0.6, 1), (0.6, 2), (0.9, 3)] {
            q.push(ev(t, s));
        }
        let drained = q.drain_due(0.6);
        assert_eq!(drained.len(), 3);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(0.9));
        assert!(q.pop_if_due(0.8).is_none());
        assert!(q.pop_if_due(0.9).is_some());
    }

    #[test]
    #[should_panic(expected = "event time must be finite")]
    fn rejects_nan_times() {
        let mut q = EventQueue::new();
        q.push(ev(f64::NAN, 0));
    }
}
