//! Terminal line charts for the experiment harness.
//!
//! The paper's evaluation is figures; the harness regenerates each one as
//! an ASCII chart (plus the numeric checkpoint table) so the *shape* —
//! crossings, saturation, divergence — is visible directly in the output
//! that EXPERIMENTS.md quotes.

/// Renders one or more named series as an ASCII line chart.
///
/// Each series is downsampled to `width` columns by block-averaging and
/// drawn with its own glyph; a shared y-axis is scaled to the global
/// min/max. Returns the chart followed by a legend.
///
/// # Panics
///
/// Panics if `width` or `height` is zero or no series is given.
pub fn ascii_chart(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "chart dimensions must be positive");
    assert!(!series.is_empty(), "at least one series required");
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

    // Downsample all series to `width` columns.
    let cols: Vec<Vec<Option<f64>>> = series.iter().map(|(_, s)| downsample(s, width)).collect();

    // Global bounds over present values.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for col in &cols {
        for v in col.iter().flatten() {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        lo = 0.0;
        hi = 1.0;
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }

    // Paint the grid top-down.
    let mut grid = vec![vec![' '; width]; height];
    for (si, col) in cols.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, v) in col.iter().enumerate() {
            if let Some(v) = v {
                let frac = (v - lo) / (hi - lo);
                let y = ((1.0 - frac) * (height - 1) as f64).round() as usize;
                grid[y.min(height - 1)][x] = glyph;
            }
        }
    }

    let label_width = 10;
    let mut out = String::new();
    for (y, row) in grid.iter().enumerate() {
        let value = hi - (hi - lo) * y as f64 / (height - 1) as f64;
        let label = if y == 0 || y == height - 1 || y == height / 2 {
            format!("{value:>label_width$.2}")
        } else {
            " ".repeat(label_width)
        };
        out.push_str(&label);
        out.push_str(" |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(label_width));
    out.push_str(" +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    // Legend.
    out.push_str(&" ".repeat(label_width + 2));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("{} {}   ", GLYPHS[si % GLYPHS.len()], name));
    }
    out.push('\n');
    out
}

/// Block-averages a series into exactly `width` columns (None for columns
/// beyond the series length).
fn downsample(s: &[f64], width: usize) -> Vec<Option<f64>> {
    if s.is_empty() {
        return vec![None; width];
    }
    if s.len() <= width {
        let mut out: Vec<Option<f64>> = Vec::with_capacity(width);
        // Stretch: repeat-index mapping keeps the shape.
        for x in 0..width {
            let idx = x * s.len() / width;
            out.push(Some(s[idx]));
        }
        return out;
    }
    let block = s.len() as f64 / width as f64;
    (0..width)
        .map(|x| {
            let a = (x as f64 * block) as usize;
            let b = (((x + 1) as f64 * block) as usize).min(s.len()).max(a + 1);
            Some(s[a..b].iter().sum::<f64>() / (b - a) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expected_dimensions() {
        let s1: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let chart = ascii_chart(&[("up", &s1)], 40, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 12); // height + axis + legend
                                     // Top label is the max of the block-averaged series (≈ 98).
        assert!(
            lines[0].contains("98.00") || lines[0].contains("99.00"),
            "top label missing: {:?}",
            lines[0]
        );
        assert!(lines.last().unwrap().contains("up"));
    }

    #[test]
    fn increasing_series_paints_bottom_left_top_right() {
        let s: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let chart = ascii_chart(&[("x", &s)], 20, 8);
        let lines: Vec<&str> = chart.lines().collect();
        // Top row has a glyph near the right edge, bottom row near the left.
        let top = lines[0];
        let bottom = lines[7];
        assert!(top.trim_end().ends_with('*'), "top: {top:?}");
        let bottom_glyph = bottom.find('*').unwrap();
        let top_glyph = top.rfind('*').unwrap();
        assert!(bottom_glyph < top_glyph);
    }

    #[test]
    fn multiple_series_distinct_glyphs() {
        let up: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let down: Vec<f64> = (0..50).map(|i| 49.0 - i as f64).collect();
        let chart = ascii_chart(&[("up", &up), ("down", &down)], 30, 9);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("up"));
        assert!(chart.contains("down"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = vec![5.0; 10];
        let chart = ascii_chart(&[("flat", &s)], 10, 5);
        assert!(chart.contains('*'));
    }

    #[test]
    fn short_series_stretched() {
        let s = vec![1.0, 2.0];
        let chart = ascii_chart(&[("short", &s)], 20, 5);
        assert!(chart.matches('*').count() >= 10);
    }

    #[test]
    fn empty_series_blank_chart() {
        let chart = ascii_chart(&[("none", &[])], 10, 4);
        assert!(!chart.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn requires_series() {
        let _ = ascii_chart(&[], 10, 10);
    }
}
