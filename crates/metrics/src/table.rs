//! Markdown table rendering for harness output.

/// A simple column-aligned markdown table builder.
///
/// # Example
///
/// ```
/// use metrics::table::Table;
/// let mut t = Table::new(vec!["mechanism".into(), "welfare".into()]);
/// t.row(vec!["LOVM".into(), "123.4".into()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| LOVM"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table requires at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of `f64` values after a string label.
    pub fn row_labeled(&mut self, label: &str, values: &[f64], precision: usize) -> &mut Self {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_string());
        for v in values {
            cells.push(format!("{v:.precision$}"));
        }
        self.row(cells)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders as a column-aligned markdown table.
    pub fn to_markdown(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for c in 0..cols {
                line.push(' ');
                line.push_str(&format!("{:width$}", cells[c], width = widths[c]));
                line.push_str(" |");
            }
            line.push('\n');
            line
        };
        let mut out = render_row(&self.headers);
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22.5".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name"));
        assert!(lines[1].starts_with("|---"));
        // All lines equal width (aligned).
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn row_labeled_formats_precision() {
        let mut t = Table::new(vec!["m".into(), "a".into(), "b".into()]);
        t.row_labeled("x", &[1.23456, 2.0], 2);
        assert!(t.to_markdown().contains("1.23"));
        assert!(t.to_markdown().contains("2.00"));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_row() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_empty_headers() {
        let _ = Table::new(vec![]);
    }
}
