//! # metrics — measurement and reporting substrate
//!
//! Shared instrumentation for the experiment harness:
//!
//! * [`stats`] — summary statistics, percentiles, Jain's fairness index,
//! * [`series`] — named time-series recording with CSV export and
//!   downsampling for terminal-width plots,
//! * [`table`] — markdown table rendering (the harness prints the same
//!   rows EXPERIMENTS.md quotes),
//! * [`plot`] — ASCII line charts so the harness regenerates figure
//!   *shapes*, not just numbers,
//! * [`json`] — a write-only JSON layer (the zero-dependency stand-in for
//!   `serde_json` used by the experiment and bench binaries).

pub mod json;
pub mod plot;
pub mod series;
pub mod stats;
pub mod table;

pub use json::{JsonValue, ToJson};
pub use plot::ascii_chart;
pub use series::SeriesSet;
pub use stats::{jain_fairness, Summary};
pub use table::Table;
