//! Named time-series recording.

use std::collections::BTreeMap;

/// A set of aligned, named time series (one value per series per step).
///
/// # Example
///
/// ```
/// use metrics::series::SeriesSet;
/// let mut s = SeriesSet::new();
/// s.push("welfare", 1.0);
/// s.push("welfare", 2.0);
/// s.push("spend", 0.5);
/// assert_eq!(s.get("welfare"), Some(&[1.0, 2.0][..]));
/// assert!(s.to_csv().starts_with("step,spend,welfare"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesSet {
    series: BTreeMap<String, Vec<f64>>,
}

impl SeriesSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a value to the named series (creating it on first use).
    pub fn push(&mut self, name: &str, value: f64) {
        self.series.entry(name.to_string()).or_default().push(value);
    }

    /// Borrow of one series.
    pub fn get(&self, name: &str) -> Option<&[f64]> {
        self.series.get(name).map(|v| v.as_slice())
    }

    /// Names of all series, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// Length of the longest series.
    pub fn len(&self) -> usize {
        self.series.values().map(|v| v.len()).max().unwrap_or(0)
    }

    /// Whether no values have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative-sum transform of one series, if present.
    pub fn cumulative(&self, name: &str) -> Option<Vec<f64>> {
        self.get(name).map(|v| {
            let mut acc = 0.0;
            v.iter()
                .map(|x| {
                    acc += x;
                    acc
                })
                .collect()
        })
    }

    /// Renders all series as CSV with a leading `step` column; shorter
    /// series are padded with empty cells.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("step");
        for name in self.names() {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        let n = self.len();
        for i in 0..n {
            out.push_str(&i.to_string());
            for name in self.names() {
                out.push(',');
                if let Some(v) = self.series[name].get(i) {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Downsamples one series to at most `points` values by block-averaging
    /// (for printing figure series at terminal width). Returns
    /// `(step_indices, values)`.
    pub fn downsample(&self, name: &str, points: usize) -> Option<(Vec<usize>, Vec<f64>)> {
        let v = self.get(name)?;
        if v.is_empty() || points == 0 {
            return Some((Vec::new(), Vec::new()));
        }
        if v.len() <= points {
            return Some(((0..v.len()).collect(), v.to_vec()));
        }
        let block = v.len() as f64 / points as f64;
        let mut idx = Vec::with_capacity(points);
        let mut out = Vec::with_capacity(points);
        for b in 0..points {
            let lo = (b as f64 * block) as usize;
            let hi = (((b + 1) as f64 * block) as usize).min(v.len()).max(lo + 1);
            let mean = v[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            idx.push(hi - 1);
            out.push(mean);
        }
        Some((idx, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut s = SeriesSet::new();
        assert!(s.is_empty());
        s.push("a", 1.0);
        s.push("a", 2.0);
        assert_eq!(s.get("a"), Some(&[1.0, 2.0][..]));
        assert_eq!(s.get("b"), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.names(), vec!["a"]);
    }

    #[test]
    fn cumulative_sums() {
        let mut s = SeriesSet::new();
        for v in [1.0, 2.0, 3.0] {
            s.push("x", v);
        }
        assert_eq!(s.cumulative("x"), Some(vec![1.0, 3.0, 6.0]));
        assert_eq!(s.cumulative("missing"), None);
    }

    #[test]
    fn csv_pads_ragged_series() {
        let mut s = SeriesSet::new();
        s.push("a", 1.0);
        s.push("a", 2.0);
        s.push("b", 9.0);
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "step,a,b");
        assert_eq!(lines[1], "0,1,9");
        assert_eq!(lines[2], "1,2,");
    }

    #[test]
    fn downsample_block_average() {
        let mut s = SeriesSet::new();
        for i in 0..100 {
            s.push("x", i as f64);
        }
        let (idx, vals) = s.downsample("x", 10).unwrap();
        assert_eq!(vals.len(), 10);
        assert_eq!(idx.len(), 10);
        // First block = mean of 0..10 = 4.5.
        assert!((vals[0] - 4.5).abs() < 1e-12);
        assert!((vals[9] - 94.5).abs() < 1e-12);
        assert_eq!(idx[9], 99);
    }

    #[test]
    fn downsample_short_series_identity() {
        let mut s = SeriesSet::new();
        s.push("x", 5.0);
        let (idx, vals) = s.downsample("x", 10).unwrap();
        assert_eq!(idx, vec![0]);
        assert_eq!(vals, vec![5.0]);
    }

    #[test]
    fn downsample_missing_none() {
        let s = SeriesSet::new();
        assert!(s.downsample("x", 10).is_none());
    }
}
