//! Minimal JSON output layer.
//!
//! The workspace builds offline with zero external dependencies, so the
//! experiment and benchmark binaries emit machine-readable output through
//! this module instead of `serde`/`serde_json`. It is write-only by design:
//! nothing in the repo parses JSON back, it only logs result lines.
//!
//! # Example
//!
//! ```
//! use metrics::json::JsonValue;
//!
//! let line = JsonValue::object()
//!     .field("bench", "vcg_round/100")
//!     .field("median_ns", 1250.0)
//!     .field("ok", true)
//!     .to_string();
//! assert_eq!(line, r#"{"bench":"vcg_round/100","median_ns":1250,"ok":true}"#);
//! ```

use std::fmt;

/// A JSON value tree. Construct with [`JsonValue::object`],
/// [`JsonValue::array`], or the `From` impls; render with `Display`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite or non-finite f64 (non-finite renders as `null`, like
    /// `serde_json`'s default behaviour).
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Starts an empty object; chain [`field`](Self::field) to fill it.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Starts an empty array; chain [`item`](Self::item) to fill it.
    pub fn array() -> JsonValue {
        JsonValue::Array(Vec::new())
    }

    /// Adds/overwrites a key on an object (panics on non-objects: that is a
    /// programming error, not a data error).
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            _ => panic!("JsonValue::field on a non-object"),
        }
        self
    }

    /// Appends an element to an array (panics on non-arrays).
    pub fn item(mut self, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Array(items) => items.push(value.into()),
            _ => panic!("JsonValue::item on a non-array"),
        }
        self
    }
}

/// Types that can render themselves as a [`JsonValue`]. The in-repo
/// stand-in for `serde::Serialize`.
pub trait ToJson {
    /// Converts to a JSON tree.
    fn to_json(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for JsonValue {
            fn from(v: $t) -> Self {
                JsonValue::Number(v as f64)
            }
        }
    )*};
}

impl_from_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<JsonValue> + Clone> From<&[T]> for JsonValue {
    fn from(v: &[T]) -> Self {
        JsonValue::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        v.map_or(JsonValue::Null, Into::into)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            // Remaining C0 controls (mandatory), DEL and the C1 block
            // (legal raw, but control characters have no business
            // unescaped in a log line), and the U+2028/U+2029 line
            // separators (valid JSON that breaks JavaScript consumers).
            c if (c as u32) < 0x20
                || (0x7f..=0x9f).contains(&(c as u32))
                || c == '\u{2028}'
                || c == '\u{2029}' =>
            {
                write!(f, "\\u{:04x}", c as u32)?
            }
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_number(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if !v.is_finite() {
        // JSON has no NaN/Inf; `serde_json` emits null here too.
        return f.write_str("null");
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        // Render integral values without a fraction part so ids and
        // counters round-trip as integers.
        write!(f, "{}", v as i64)
    } else {
        write!(f, "{v}")
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(v) => write_number(f, *v),
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl ToJson for crate::stats::Summary {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("n", self.n)
            .field("mean", self.mean)
            .field("std", self.std)
            .field("min", self.min)
            .field("max", self.max)
            .field("median", self.median)
    }
}

impl ToJson for crate::series::SeriesSet {
    fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        for name in self.names() {
            let series = self.get(name).unwrap_or(&[]);
            obj = obj.field(name, series.to_vec());
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::from(true).to_string(), "true");
        assert_eq!(JsonValue::from(3usize).to_string(), "3");
        assert_eq!(JsonValue::from(2.5).to_string(), "2.5");
        assert_eq!(JsonValue::from(-7i64).to_string(), "-7");
        assert_eq!(JsonValue::from(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        let s = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn control_characters_all_escape() {
        // Backspace and form feed get their shorthands; every other C0
        // control, DEL, and the C1 block become \uXXXX — no raw control
        // byte can reach a log line.
        assert_eq!(
            JsonValue::from("a\u{8}b\u{c}c").to_string(),
            "\"a\\bb\\fc\""
        );
        for code in (0u32..0x20).chain(0x7f..=0x9f) {
            let c = char::from_u32(code).unwrap();
            let rendered = JsonValue::from(c.to_string()).to_string();
            assert!(
                rendered.chars().all(|ch| ch as u32 >= 0x20),
                "control {code:#x} leaked into {rendered:?}"
            );
        }
        // A round-trippable spot check for a C1 control and DEL.
        assert_eq!(JsonValue::from("\u{7f}").to_string(), "\"\\u007f\"");
        assert_eq!(JsonValue::from("\u{85}").to_string(), "\"\\u0085\"");
    }

    #[test]
    fn js_line_separators_escape() {
        assert_eq!(
            JsonValue::from("a\u{2028}b\u{2029}c").to_string(),
            "\"a\\u2028b\\u2029c\""
        );
        // Ordinary non-ASCII text passes through untouched.
        assert_eq!(JsonValue::from("µs — ok").to_string(), "\"µs — ok\"");
    }

    #[test]
    fn non_finite_floats_render_null_everywhere() {
        assert_eq!(JsonValue::from(f64::INFINITY).to_string(), "null");
        assert_eq!(JsonValue::from(f64::NEG_INFINITY).to_string(), "null");
        assert_eq!(JsonValue::from(f32::NAN).to_string(), "null");
        // Inside containers too — the guard lives at render time, so no
        // construction path can smuggle an `inf` token into the output.
        let o = JsonValue::object()
            .field("bad", f64::NAN)
            .field("v", vec![1.0, f64::INFINITY]);
        assert_eq!(o.to_string(), r#"{"bad":null,"v":[1,null]}"#);
        // Values near the integer-rendering cutoff stay finite and exact.
        assert_eq!(JsonValue::from(9.0e15).to_string(), "9000000000000000");
        assert_eq!(JsonValue::from(9.1e15).to_string(), "9100000000000000");
    }

    #[test]
    fn objects_keep_order_and_overwrite() {
        let o = JsonValue::object()
            .field("b", 1)
            .field("a", 2)
            .field("b", 3);
        assert_eq!(o.to_string(), r#"{"b":3,"a":2}"#);
    }

    #[test]
    fn arrays_nest() {
        let a = JsonValue::array()
            .item(1)
            .item(JsonValue::object().field("k", "v"))
            .item(vec![1.0, 2.0]);
        assert_eq!(a.to_string(), r#"[1,{"k":"v"},[1,2]]"#);
    }

    #[test]
    fn summary_to_json_line() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).to_json().to_string();
        assert!(s.starts_with(r#"{"n":3,"mean":2,"#), "{s}");
        assert!(s.contains(r#""median":2"#));
    }

    #[test]
    fn seriesset_to_json() {
        let mut s = crate::series::SeriesSet::new();
        s.push("welfare", 1.0);
        s.push("welfare", 2.5);
        assert_eq!(s.to_json().to_string(), r#"{"welfare":[1,2.5]}"#);
    }
}
